//! Max-min fair fluid flow allocation.
//!
//! Bulk transfers are modeled as fluid flows over capacitated links, the
//! standard abstraction for TCP-like bandwidth sharing: rates are solved by
//! progressive filling (water-filling), giving every flow the largest rate
//! such that no link is oversubscribed and no flow can gain without an
//! equally-or-less-served flow losing. Flows may also carry an intrinsic
//! rate cap — how the per-stream protocol ceiling of the paper's loopback
//! path is expressed.
//!
//! Two solvers share that definition:
//!
//! * [`max_min_rates`] — the **reference** solver: a pure function taking
//!   the whole flow set, allocating fresh buffers per call. It is the
//!   oracle the property tests check against and the engine the fabric's
//!   [`crate::config::FluidEngine::Reference`] mode runs on.
//! * [`MaxMinSolver`] — the **production** solver: identical progressive
//!   filling over reusable scratch buffers, fed one *connected component*
//!   of the link/flow sharing graph at a time. The fabric re-solves only
//!   the component touched by a change (flows on disjoint node pairs never
//!   pay for each other), and a same-instant burst of flow starts is
//!   coalesced into a single solve (see `net::fabric`).
//!
//! ## Invariants
//!
//! Both solvers guarantee, for any input: every rate is `>= 0` and
//! `<= cap`; no link's summed rates exceed its capacity (within float
//! epsilon); and the allocation is max-min fair — a flow's rate can only
//! be raised by lowering that of a flow with an equal or smaller rate.
//! Because a connected component of the sharing graph cannot influence
//! rates outside itself, solving components independently yields the same
//! allocation as one global solve; `solver_matches_reference_on_random_
//! topologies` asserts agreement within 1e-9 on randomized instances.

/// Index of a link inside a [`LinkTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// Capacitated links.
#[derive(Debug, Default)]
pub struct LinkTable {
    caps: Vec<f64>,
}

impl LinkTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link with `bytes_per_sec` capacity, returning its id.
    pub fn add(&mut self, bytes_per_sec: f64) -> LinkId {
        assert!(bytes_per_sec > 0.0, "link capacity must be positive");
        self.caps.push(bytes_per_sec);
        LinkId(self.caps.len() - 1)
    }

    /// Capacity of `link`.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.caps[link.0]
    }

    /// Re-prices `link` to `bytes_per_sec`. Unlike [`LinkTable::add`],
    /// zero is allowed: both solvers freeze a zero-capacity link's flows
    /// at rate 0 (progressive filling saturates instantly), which is the
    /// fabric's partition state — transfers stall rather than abort, and
    /// resume when capacity is restored. Takes effect at the next solve;
    /// callers re-price the affected component themselves.
    pub fn set_capacity(&mut self, link: LinkId, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec >= 0.0 && bytes_per_sec.is_finite(),
            "link capacity must be finite and non-negative"
        );
        self.caps[link.0] = bytes_per_sec;
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// `true` when no links exist.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// One flow's demand description for the solver.
#[derive(Clone, Debug)]
pub struct FlowDemand {
    /// Links the flow traverses (1-3 in this fabric).
    pub links: Vec<LinkId>,
    /// Intrinsic rate ceiling, bytes/second (`f64::INFINITY` when unlimited).
    pub cap: f64,
}

/// Computes max-min fair rates for `flows` over `links`.
///
/// Returns one rate per flow, in input order. Runs in
/// O(iterations × flows × links-per-flow); each iteration freezes at least
/// one flow, so it terminates in ≤ `flows.len()` rounds.
pub fn max_min_rates(links: &LinkTable, flows: &[FlowDemand]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut remaining_cap: Vec<f64> = links.caps.clone();

    loop {
        // Count unfrozen flows per link.
        let mut unfrozen_on_link = vec![0usize; links.len()];
        let mut any_unfrozen = false;
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            any_unfrozen = true;
            for l in &demand.links {
                unfrozen_on_link[l.0] += 1;
            }
        }
        if !any_unfrozen {
            break;
        }

        // The next increment every unfrozen flow can take uniformly.
        let mut delta = f64::INFINITY;
        for (l, &cnt) in unfrozen_on_link.iter().enumerate() {
            if cnt > 0 {
                delta = delta.min(remaining_cap[l] / cnt as f64);
            }
        }
        for (f, demand) in flows.iter().enumerate() {
            if !frozen[f] {
                delta = delta.min(demand.cap - rates[f]);
            }
        }
        // Flows with no links and no finite cap would make delta infinite;
        // treat that as "unlimited" and freeze them at an arbitrary high
        // rate (callers always provide at least one link or a cap).
        if !delta.is_finite() {
            for f in 0..n {
                if !frozen[f] {
                    rates[f] = f64::MAX / 4.0;
                    frozen[f] = true;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Apply the increment.
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            rates[f] += delta;
            for l in &demand.links {
                remaining_cap[l.0] -= delta;
            }
        }

        // Freeze: flows at their cap, and flows crossing a saturated link.
        const EPS: f64 = 1e-6;
        let mut frozen_any = false;
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let at_cap = rates[f] >= demand.cap - EPS;
            let on_saturated = demand
                .links
                .iter()
                .any(|l| remaining_cap[l.0] <= EPS * links.caps[l.0].max(1.0));
            if at_cap || on_saturated {
                frozen[f] = true;
                frozen_any = true;
            }
        }
        if !frozen_any {
            // Numerical guard: freeze everything to guarantee progress.
            for f in frozen.iter_mut() {
                *f = true;
            }
        }
    }
    rates
}

/// The links a fabric flow traverses, stored inline.
///
/// Every flow in this fabric crosses either one link (loopback) or two
/// (source tx + destination rx), so routes are a fixed `[LinkId; 2]` plus
/// a length — no per-flow heap allocation, and cloning a route during a
/// re-solve is a copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    links: [LinkId; 2],
    len: u8,
}

impl Route {
    /// A single-link route (loopback).
    pub fn single(link: LinkId) -> Self {
        Route {
            links: [link, link],
            len: 1,
        }
    }

    /// A two-link route (source uplink, destination downlink).
    pub fn pair(a: LinkId, b: LinkId) -> Self {
        Route {
            links: [a, b],
            len: 2,
        }
    }

    /// The traversed links.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }
}

/// Progressive-filling max-min solver with reusable scratch state.
///
/// Semantically identical to [`max_min_rates`] but built for the hot path:
/// all working buffers (per-link residual capacity, per-link unfrozen
/// counts, per-flow freeze flags, output rates) are retained across calls,
/// so a steady-state re-solve performs **zero heap allocations**. The
/// caller describes one connected component per solve: first the
/// component's links via [`MaxMinSolver::add_link`] (which returns dense
/// component-local indices), then its flows via [`MaxMinSolver::add_flow`]
/// with routes expressed in those local indices.
#[derive(Debug, Default)]
pub struct MaxMinSolver {
    // Per component-local link.
    caps: Vec<f64>,
    remaining_cap: Vec<f64>,
    unfrozen_on_link: Vec<u32>,
    // Per flow: route in component-local link indices + intrinsic cap.
    flow_links: Vec<[u32; 2]>,
    flow_len: Vec<u8>,
    flow_cap: Vec<f64>,
    frozen: Vec<bool>,
    rates: Vec<f64>,
    /// Lifetime count of [`MaxMinSolver::solve`] calls (perf telemetry).
    solves: u64,
    /// Lifetime count of progressive-filling rounds (perf telemetry).
    rounds: u64,
}

impl MaxMinSolver {
    /// Fresh solver; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts describing a new component, retaining buffer capacity.
    pub fn begin(&mut self) {
        self.caps.clear();
        self.remaining_cap.clear();
        self.unfrozen_on_link.clear();
        self.flow_links.clear();
        self.flow_len.clear();
        self.flow_cap.clear();
        self.frozen.clear();
        self.rates.clear();
    }

    /// Adds a link with capacity `bytes_per_sec`; returns its
    /// component-local index.
    pub fn add_link(&mut self, bytes_per_sec: f64) -> u32 {
        self.caps.push(bytes_per_sec);
        self.remaining_cap.push(bytes_per_sec);
        self.unfrozen_on_link.push(0);
        (self.caps.len() - 1) as u32
    }

    /// Adds a flow crossing `links` (1-2 component-local link indices, from
    /// [`MaxMinSolver::add_link`]) with intrinsic rate ceiling `cap`.
    pub fn add_flow(&mut self, links: &[u32], cap: f64) {
        debug_assert!(matches!(links.len(), 1 | 2), "fabric routes are 1-2 links");
        let mut pair = [0u32; 2];
        pair[..links.len()].copy_from_slice(links);
        if links.len() == 1 {
            pair[1] = pair[0];
        }
        self.flow_links.push(pair);
        self.flow_len.push(links.len() as u8);
        self.flow_cap.push(cap);
        self.frozen.push(false);
        self.rates.push(0.0);
    }

    /// Number of solves performed over the solver's lifetime.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Number of progressive-filling rounds over the solver's lifetime.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs progressive filling over the staged component; returns one rate
    /// per flow in [`MaxMinSolver::add_flow`] order. Allocation-free once
    /// the buffers have warmed up.
    pub fn solve(&mut self) -> &[f64] {
        self.solves += 1;
        let n = self.rates.len();
        if n == 0 {
            return &self.rates;
        }
        loop {
            self.rounds += 1;
            // Count unfrozen flows per link.
            for c in self.unfrozen_on_link.iter_mut() {
                *c = 0;
            }
            let mut any_unfrozen = false;
            for f in 0..n {
                if self.frozen[f] {
                    continue;
                }
                any_unfrozen = true;
                for &l in &self.flow_links[f][..self.flow_len[f] as usize] {
                    self.unfrozen_on_link[l as usize] += 1;
                }
            }
            if !any_unfrozen {
                break;
            }

            // Uniform increment every unfrozen flow can take.
            let mut delta = f64::INFINITY;
            for (l, &cnt) in self.unfrozen_on_link.iter().enumerate() {
                if cnt > 0 {
                    delta = delta.min(self.remaining_cap[l] / cnt as f64);
                }
            }
            for f in 0..n {
                if !self.frozen[f] {
                    delta = delta.min(self.flow_cap[f] - self.rates[f]);
                }
            }
            // Fabric flows always cross >= 1 finite-capacity link, so delta
            // is finite; guard anyway to mirror the reference solver.
            if !delta.is_finite() {
                for f in 0..n {
                    if !self.frozen[f] {
                        self.rates[f] = f64::MAX / 4.0;
                        self.frozen[f] = true;
                    }
                }
                break;
            }
            let delta = delta.max(0.0);

            // Apply the increment.
            for f in 0..n {
                if self.frozen[f] {
                    continue;
                }
                self.rates[f] += delta;
                for &l in &self.flow_links[f][..self.flow_len[f] as usize] {
                    self.remaining_cap[l as usize] -= delta;
                }
            }

            // Freeze: flows at their cap, and flows crossing a saturated
            // link. Same epsilon as the reference solver.
            const EPS: f64 = 1e-6;
            let mut frozen_any = false;
            for f in 0..n {
                if self.frozen[f] {
                    continue;
                }
                let at_cap = self.rates[f] >= self.flow_cap[f] - EPS;
                let on_saturated =
                    self.flow_links[f][..self.flow_len[f] as usize]
                        .iter()
                        .any(|&l| {
                            self.remaining_cap[l as usize] <= EPS * self.caps[l as usize].max(1.0)
                        });
                if at_cap || on_saturated {
                    self.frozen[f] = true;
                    frozen_any = true;
                }
            }
            if !frozen_any {
                // Numerical guard: freeze everything to guarantee progress.
                for f in self.frozen.iter_mut() {
                    *f = true;
                }
            }
        }
        &self.rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(caps: &[f64]) -> LinkTable {
        let mut t = LinkTable::new();
        for &c in caps {
            t.add(c);
        }
        t
    }

    fn demand(links: &[usize], cap: f64) -> FlowDemand {
        FlowDemand {
            links: links.iter().map(|&l| LinkId(l)).collect(),
            cap,
        }
    }

    #[test]
    fn single_flow_gets_link_capacity() {
        let links = table(&[100.0]);
        let r = max_min_rates(&links, &[demand(&[0], f64::INFINITY)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn equal_flows_share_equally() {
        let links = table(&[120.0]);
        let flows = vec![demand(&[0], f64::INFINITY); 3];
        let r = max_min_rates(&links, &flows);
        for rate in r {
            assert!((rate - 40.0).abs() < 1e-6);
        }
    }

    #[test]
    fn capped_flow_releases_capacity() {
        let links = table(&[100.0]);
        let flows = vec![demand(&[0], 10.0), demand(&[0], f64::INFINITY)];
        let r = max_min_rates(&links, &flows);
        assert!((r[0] - 10.0).abs() < 1e-6);
        assert!((r[1] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_is_respected_across_links() {
        // Flow 0: links 0,1. Flow 1: link 1 only. Link 1 is the bottleneck.
        let links = table(&[100.0, 50.0]);
        let flows = vec![demand(&[0, 1], f64::INFINITY), demand(&[1], f64::INFINITY)];
        let r = max_min_rates(&links, &flows);
        assert!((r[0] - 25.0).abs() < 1e-6);
        assert!((r[1] - 25.0).abs() < 1e-6);
    }

    #[test]
    fn classic_max_min_example() {
        // Three links: A=10, B=10, C=6. Flows: f0 over A,B; f1 over B,C;
        // f2 over C. Water-filling: f1=f2=3 (C saturates), then f0 grows to
        // 7 (B saturates at f0+f1=10).
        let links = table(&[10.0, 10.0, 6.0]);
        let flows = vec![
            demand(&[0, 1], f64::INFINITY),
            demand(&[1, 2], f64::INFINITY),
            demand(&[2], f64::INFINITY),
        ];
        let r = max_min_rates(&links, &flows);
        assert!((r[1] - 3.0).abs() < 1e-6, "{r:?}");
        assert!((r[2] - 3.0).abs() < 1e-6, "{r:?}");
        assert!((r[0] - 7.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn no_link_is_oversubscribed_property() {
        // Randomized-ish deterministic sweep.
        let links = table(&[100.0, 80.0, 60.0, 40.0]);
        let mut flows = Vec::new();
        for i in 0..20usize {
            let l1 = i % 4;
            let l2 = (i * 7 + 1) % 4;
            let cap = if i % 3 == 0 { 15.0 } else { f64::INFINITY };
            let ls = if l1 == l2 { vec![l1] } else { vec![l1, l2] };
            flows.push(demand(&ls, cap));
        }
        let rates = max_min_rates(&links, &flows);
        let mut used = vec![0.0f64; links.len()];
        for (f, d) in flows.iter().enumerate() {
            assert!(rates[f] >= 0.0);
            assert!(rates[f] <= d.cap + 1e-6);
            for l in &d.links {
                used[l.0] += rates[f];
            }
        }
        for (l, u) in used.iter().enumerate() {
            assert!(*u <= links.caps[l] + 1e-3, "link {l} over: {u}");
        }
    }

    #[test]
    fn zero_capacity_link_stalls_flows_at_rate_zero() {
        // A partitioned link: flows crossing it freeze at rate 0 (both
        // solvers terminate), flows elsewhere are unaffected.
        let mut links = table(&[100.0, 50.0]);
        links.set_capacity(LinkId(0), 0.0);
        let flows = vec![demand(&[0], f64::INFINITY), demand(&[1], f64::INFINITY)];
        let r = max_min_rates(&links, &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 50.0).abs() < 1e-6);
        // The production solver agrees (add_link accepts the zero the
        // fabric writes through set_capacity).
        let mut s = MaxMinSolver::new();
        s.begin();
        s.add_link(0.0);
        s.add_link(50.0);
        s.add_flow(&[0], f64::INFINITY);
        s.add_flow(&[1], f64::INFINITY);
        let got = s.solve();
        assert_eq!(got[0], 0.0);
        assert!((got[1] - 50.0).abs() < 1e-6);
        // Restoring capacity re-prices at the next solve.
        links.set_capacity(LinkId(0), 25.0);
        let r = max_min_rates(&links, &flows);
        assert!((r[0] - 25.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        let links = table(&[10.0]);
        assert!(max_min_rates(&links, &[]).is_empty());
    }

    #[test]
    fn cap_only_flow_without_links() {
        let links = table(&[10.0]);
        let r = max_min_rates(&links, &[demand(&[], 42.0)]);
        assert!((r[0] - 42.0).abs() < 1e-6);
    }

    /// Feeds the same instance to both solvers and compares.
    fn solver_vs_reference(caps: &[f64], flows: &[FlowDemand], solver: &mut MaxMinSolver) {
        let links = table(caps);
        let reference = max_min_rates(&links, flows);
        solver.begin();
        for &c in caps {
            solver.add_link(c);
        }
        for f in flows {
            let local: Vec<u32> = f.links.iter().map(|l| l.0 as u32).collect();
            solver.add_flow(&local, f.cap);
        }
        let got = solver.solve();
        assert_eq!(got.len(), reference.len());
        let mut used = vec![0.0f64; caps.len()];
        for (i, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
            assert!(
                (g - r).abs() <= 1e-9 * r.abs().max(1.0),
                "flow {i}: solver={g} reference={r}"
            );
            assert!(*g >= 0.0 && *g <= flows[i].cap + 1e-6);
            for l in &flows[i].links {
                used[l.0] += g;
            }
        }
        for (l, u) in used.iter().enumerate() {
            assert!(
                *u <= caps[l] + 1e-3 * caps[l].max(1.0),
                "link {l} over: {u}"
            );
        }
    }

    #[test]
    fn solver_matches_reference_on_canonical_cases() {
        let mut s = MaxMinSolver::new();
        solver_vs_reference(&[100.0], &[demand(&[0], f64::INFINITY)], &mut s);
        solver_vs_reference(&[120.0], &vec![demand(&[0], f64::INFINITY); 3], &mut s);
        solver_vs_reference(
            &[100.0],
            &[demand(&[0], 10.0), demand(&[0], f64::INFINITY)],
            &mut s,
        );
        solver_vs_reference(
            &[100.0, 50.0],
            &[demand(&[0, 1], f64::INFINITY), demand(&[1], f64::INFINITY)],
            &mut s,
        );
        solver_vs_reference(
            &[10.0, 10.0, 6.0],
            &[
                demand(&[0, 1], f64::INFINITY),
                demand(&[1, 2], f64::INFINITY),
                demand(&[2], f64::INFINITY),
            ],
            &mut s,
        );
    }

    /// Satellite property test: randomized topologies, caps, and bursts.
    /// One `MaxMinSolver` is reused across all instances — also checks that
    /// scratch state never leaks between solves.
    #[test]
    fn solver_matches_reference_on_random_topologies() {
        use accelmr_des::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(0x05EE_DF10);
        let mut solver = MaxMinSolver::new();
        for _ in 0..200 {
            let n_links = rng.range_inclusive(1, 24) as usize;
            let caps: Vec<f64> = (0..n_links)
                .map(|_| 1.0e6 * (1.0 + 249.0 * rng.next_f64()))
                .collect();
            let n_flows = rng.range_inclusive(0, 64) as usize;
            let flows: Vec<FlowDemand> = (0..n_flows)
                .map(|_| {
                    let a = rng.next_below(n_links as u64) as usize;
                    let b = rng.next_below(n_links as u64) as usize;
                    let links = if a == b || rng.next_below(4) == 0 {
                        vec![LinkId(a)]
                    } else {
                        vec![LinkId(a), LinkId(b)]
                    };
                    let cap = if rng.next_below(3) == 0 {
                        1.0e5 * (1.0 + 99.0 * rng.next_f64())
                    } else {
                        f64::INFINITY
                    };
                    FlowDemand { links, cap }
                })
                .collect();
            solver_vs_reference(&caps, &flows, &mut solver);
        }
        assert_eq!(solver.solves(), 200, "one solve per instance");
    }

    #[test]
    fn route_is_inline_and_exposes_links() {
        let single = Route::single(LinkId(3));
        assert_eq!(single.links(), &[LinkId(3)]);
        let pair = Route::pair(LinkId(1), LinkId(2));
        assert_eq!(pair.links(), &[LinkId(1), LinkId(2)]);
        assert!(std::mem::size_of::<Route>() <= 3 * std::mem::size_of::<usize>());
    }
}
