//! Max-min fair fluid flow allocation.
//!
//! Bulk transfers are modeled as fluid flows over capacitated links, the
//! standard abstraction for TCP-like bandwidth sharing: whenever the flow
//! set changes, rates are re-solved by progressive filling (water-filling),
//! giving every flow the largest rate such that no link is oversubscribed
//! and no flow can gain without an equally-or-less-served flow losing.
//! Flows may also carry an intrinsic rate cap — how the per-stream protocol
//! ceiling of the paper's loopback path is expressed.

/// Index of a link inside a [`LinkTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// Capacitated links.
#[derive(Debug, Default)]
pub struct LinkTable {
    caps: Vec<f64>,
}

impl LinkTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link with `bytes_per_sec` capacity, returning its id.
    pub fn add(&mut self, bytes_per_sec: f64) -> LinkId {
        assert!(bytes_per_sec > 0.0, "link capacity must be positive");
        self.caps.push(bytes_per_sec);
        LinkId(self.caps.len() - 1)
    }

    /// Capacity of `link`.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.caps[link.0]
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// `true` when no links exist.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// One flow's demand description for the solver.
#[derive(Clone, Debug)]
pub struct FlowDemand {
    /// Links the flow traverses (1-3 in this fabric).
    pub links: Vec<LinkId>,
    /// Intrinsic rate ceiling, bytes/second (`f64::INFINITY` when unlimited).
    pub cap: f64,
}

/// Computes max-min fair rates for `flows` over `links`.
///
/// Returns one rate per flow, in input order. Runs in
/// O(iterations × flows × links-per-flow); each iteration freezes at least
/// one flow, so it terminates in ≤ `flows.len()` rounds.
pub fn max_min_rates(links: &LinkTable, flows: &[FlowDemand]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut remaining_cap: Vec<f64> = links.caps.clone();

    loop {
        // Count unfrozen flows per link.
        let mut unfrozen_on_link = vec![0usize; links.len()];
        let mut any_unfrozen = false;
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            any_unfrozen = true;
            for l in &demand.links {
                unfrozen_on_link[l.0] += 1;
            }
        }
        if !any_unfrozen {
            break;
        }

        // The next increment every unfrozen flow can take uniformly.
        let mut delta = f64::INFINITY;
        for (l, &cnt) in unfrozen_on_link.iter().enumerate() {
            if cnt > 0 {
                delta = delta.min(remaining_cap[l] / cnt as f64);
            }
        }
        for (f, demand) in flows.iter().enumerate() {
            if !frozen[f] {
                delta = delta.min(demand.cap - rates[f]);
            }
        }
        // Flows with no links and no finite cap would make delta infinite;
        // treat that as "unlimited" and freeze them at an arbitrary high
        // rate (callers always provide at least one link or a cap).
        if !delta.is_finite() {
            for f in 0..n {
                if !frozen[f] {
                    rates[f] = f64::MAX / 4.0;
                    frozen[f] = true;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Apply the increment.
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            rates[f] += delta;
            for l in &demand.links {
                remaining_cap[l.0] -= delta;
            }
        }

        // Freeze: flows at their cap, and flows crossing a saturated link.
        const EPS: f64 = 1e-6;
        let mut frozen_any = false;
        for (f, demand) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let at_cap = rates[f] >= demand.cap - EPS;
            let on_saturated = demand
                .links
                .iter()
                .any(|l| remaining_cap[l.0] <= EPS * links.caps[l.0].max(1.0));
            if at_cap || on_saturated {
                frozen[f] = true;
                frozen_any = true;
            }
        }
        if !frozen_any {
            // Numerical guard: freeze everything to guarantee progress.
            for f in frozen.iter_mut() {
                *f = true;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(caps: &[f64]) -> LinkTable {
        let mut t = LinkTable::new();
        for &c in caps {
            t.add(c);
        }
        t
    }

    fn demand(links: &[usize], cap: f64) -> FlowDemand {
        FlowDemand {
            links: links.iter().map(|&l| LinkId(l)).collect(),
            cap,
        }
    }

    #[test]
    fn single_flow_gets_link_capacity() {
        let links = table(&[100.0]);
        let r = max_min_rates(&links, &[demand(&[0], f64::INFINITY)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn equal_flows_share_equally() {
        let links = table(&[120.0]);
        let flows = vec![demand(&[0], f64::INFINITY); 3];
        let r = max_min_rates(&links, &flows);
        for rate in r {
            assert!((rate - 40.0).abs() < 1e-6);
        }
    }

    #[test]
    fn capped_flow_releases_capacity() {
        let links = table(&[100.0]);
        let flows = vec![demand(&[0], 10.0), demand(&[0], f64::INFINITY)];
        let r = max_min_rates(&links, &flows);
        assert!((r[0] - 10.0).abs() < 1e-6);
        assert!((r[1] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_is_respected_across_links() {
        // Flow 0: links 0,1. Flow 1: link 1 only. Link 1 is the bottleneck.
        let links = table(&[100.0, 50.0]);
        let flows = vec![demand(&[0, 1], f64::INFINITY), demand(&[1], f64::INFINITY)];
        let r = max_min_rates(&links, &flows);
        assert!((r[0] - 25.0).abs() < 1e-6);
        assert!((r[1] - 25.0).abs() < 1e-6);
    }

    #[test]
    fn classic_max_min_example() {
        // Three links: A=10, B=10, C=6. Flows: f0 over A,B; f1 over B,C;
        // f2 over C. Water-filling: f1=f2=3 (C saturates), then f0 grows to
        // 7 (B saturates at f0+f1=10).
        let links = table(&[10.0, 10.0, 6.0]);
        let flows = vec![
            demand(&[0, 1], f64::INFINITY),
            demand(&[1, 2], f64::INFINITY),
            demand(&[2], f64::INFINITY),
        ];
        let r = max_min_rates(&links, &flows);
        assert!((r[1] - 3.0).abs() < 1e-6, "{r:?}");
        assert!((r[2] - 3.0).abs() < 1e-6, "{r:?}");
        assert!((r[0] - 7.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn no_link_is_oversubscribed_property() {
        // Randomized-ish deterministic sweep.
        let links = table(&[100.0, 80.0, 60.0, 40.0]);
        let mut flows = Vec::new();
        for i in 0..20usize {
            let l1 = i % 4;
            let l2 = (i * 7 + 1) % 4;
            let cap = if i % 3 == 0 { 15.0 } else { f64::INFINITY };
            let ls = if l1 == l2 { vec![l1] } else { vec![l1, l2] };
            flows.push(demand(&ls, cap));
        }
        let rates = max_min_rates(&links, &flows);
        let mut used = vec![0.0f64; links.len()];
        for (f, d) in flows.iter().enumerate() {
            assert!(rates[f] >= 0.0);
            assert!(rates[f] <= d.cap + 1e-6);
            for l in &d.links {
                used[l.0] += rates[f];
            }
        }
        for (l, u) in used.iter().enumerate() {
            assert!(*u <= links.caps[l] + 1e-3, "link {l} over: {u}");
        }
    }

    #[test]
    fn empty_inputs() {
        let links = table(&[10.0]);
        assert!(max_min_rates(&links, &[]).is_empty());
    }

    #[test]
    fn cap_only_flow_without_links() {
        let links = table(&[10.0]);
        let r = max_min_rates(&links, &[demand(&[], 42.0)]);
        assert!((r[0] - 42.0).abs() < 1e-6);
    }
}
