//! The fabric actor: message delivery and fluid bulk transfers.
//!
//! One [`Fabric`] actor represents the cluster interconnect: every node's
//! full-duplex NIC (tx/rx links), its loopback device, and a non-blocking
//! switch between them. Protocol actors (DFS, MapReduce) talk to it with
//! two primitives:
//!
//! * [`Unicast`] — control RPCs: fixed latency + serialization time.
//! * [`StartFlow`] — bulk data: a fluid flow sharing link bandwidth
//!   max-min-fairly with every other active flow, optionally capped by a
//!   per-stream protocol ceiling (the paper's loopback feed behavior).
//!   Completion is announced to the requester with [`FlowDone`].
//!
//! Node failures abort in-flight transfers via [`AbortNode`], announcing
//! [`FlowAborted`] so blocked readers can recover — the mechanism the
//! fault-tolerance tests drive.

use std::collections::BTreeMap;

use accelmr_des::prelude::*;

use crate::config::{NetConfig, NodeId};
use crate::flow::{max_min_rates, FlowDemand, LinkId, LinkTable};

/// Control RPC from `src` to an actor on node `dst`.
pub struct Unicast {
    /// Sending node (for accounting; RPCs are small enough to ignore in
    /// the fluid model).
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Destination actor.
    pub to: ActorId,
    /// Payload size for serialization delay.
    pub bytes: u64,
    /// The protocol message delivered to `to`.
    pub payload: Box<dyn Msg>,
}

impl std::fmt::Debug for Unicast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Unicast({}→{}, {} B, {})",
            self.src,
            self.dst,
            self.bytes,
            self.payload.as_ref().label()
        )
    }
}

/// Starts a bulk transfer.
#[derive(Debug)]
pub struct StartFlow {
    /// Source node.
    pub src: NodeId,
    /// Destination node (may equal `src`: loopback).
    pub dst: NodeId,
    /// Transfer size.
    pub bytes: u64,
    /// Optional per-stream rate ceiling, bytes/second.
    pub cap_bytes_per_sec: Option<f64>,
    /// Actor to notify on completion/abort.
    pub notify: ActorId,
    /// Caller-chosen correlation tag echoed in the notification.
    pub tag: u64,
    /// Optional payload delivered to `notify` *instead of* [`FlowDone`]
    /// when the flow completes (aborts still deliver [`FlowAborted`]).
    /// This is how data-bearing transfers (DFS block reads) hand the
    /// materialized bytes to the receiver at the moment the last byte
    /// arrives.
    pub on_done: Option<Box<dyn Msg>>,
}

/// Aborts all flows touching a node (its crash).
#[derive(Debug)]
pub struct AbortNode {
    /// The failed node.
    pub node: NodeId,
}

/// A flow completed; delivered to the flow's `notify` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDone {
    /// The caller's correlation tag.
    pub tag: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A flow was aborted by a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowAborted {
    /// The caller's correlation tag.
    pub tag: u64,
}

struct ActiveFlow {
    remaining: f64,
    rate: f64,
    links: Vec<LinkId>,
    cap: f64,
    notify: ActorId,
    tag: u64,
    total: u64,
    src: NodeId,
    dst: NodeId,
    on_done: Option<Box<dyn Msg>>,
}

/// The interconnect actor.
pub struct Fabric {
    cfg: NetConfig,
    links: LinkTable,
    tx: Vec<LinkId>,
    rx: Vec<LinkId>,
    loopback: Vec<LinkId>,
    flows: BTreeMap<u64, ActiveFlow>,
    next_flow_id: u64,
    timer: Option<TimerHandle>,
    last_update: SimTime,
}

const EPS_BYTES: f64 = 1e-3;

impl Fabric {
    /// Builds a fabric for `nodes` machines.
    pub fn new(cfg: NetConfig, nodes: usize) -> Self {
        let mut links = LinkTable::new();
        let tx = (0..nodes)
            .map(|_| links.add(cfg.link_bytes_per_sec))
            .collect();
        let rx = (0..nodes)
            .map(|_| links.add(cfg.link_bytes_per_sec))
            .collect();
        let loopback = (0..nodes)
            .map(|_| links.add(cfg.loopback_bytes_per_sec))
            .collect();
        Fabric {
            cfg,
            links,
            tx,
            rx,
            loopback,
            flows: BTreeMap::new(),
            next_flow_id: 0,
            timer: None,
            last_update: SimTime::ZERO,
        }
    }

    /// Number of nodes the fabric serves.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        if src == dst {
            vec![self.loopback[src.index()]]
        } else {
            vec![self.tx[src.index()], self.rx[dst.index()]]
        }
    }

    /// Advances flow progress to `now`, completing finished flows.
    fn elapse(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining -= f.rate * dt;
            }
        }
        // Completions in flow-id order: deterministic.
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS_BYTES)
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            let f = self.flows.remove(&id).expect("flow present");
            ctx.stats().add("net.flow_bytes_done", f.total);
            ctx.stats().incr("net.flows_done");
            match f.on_done {
                Some(payload) => ctx.send_boxed(f.notify, payload, SimDuration::ZERO),
                None => ctx.send(
                    f.notify,
                    FlowDone {
                        tag: f.tag,
                        bytes: f.total,
                    },
                ),
            }
        }
    }

    /// Re-solves rates and re-arms the completion timer.
    fn reschedule(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.timer.take() {
            ctx.cancel_timer(t);
        }
        if self.flows.is_empty() {
            return;
        }
        let demands: Vec<FlowDemand> = self
            .flows
            .values()
            .map(|f| FlowDemand {
                links: f.links.clone(),
                cap: f.cap,
            })
            .collect();
        let rates = max_min_rates(&self.links, &demands);
        let mut next = f64::INFINITY;
        for (f, rate) in self.flows.values_mut().zip(rates) {
            f.rate = rate;
            if rate > 0.0 {
                next = next.min(f.remaining / rate);
            }
        }
        if next.is_finite() {
            let delay = SimDuration::from_secs_f64(next).max(SimDuration::from_nanos(1));
            self.timer = Some(ctx.after(delay, 0));
        }
    }
}

impl Actor for Fabric {
    fn name(&self) -> String {
        "net.fabric".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let now = ctx.now();
        match ev {
            Event::Start => {
                self.last_update = now;
            }
            Event::Timer { .. } => {
                self.timer = None;
                self.elapse(ctx, now);
                self.reschedule(ctx);
            }
            Event::Msg { msg, .. } => {
                if msg.is::<Unicast>() {
                    let u = msg.downcast::<Unicast>().expect("checked");
                    ctx.stats().incr("net.rpcs");
                    ctx.stats().add("net.rpc_bytes", u.bytes);
                    let delay = self.cfg.rpc_delay(u.bytes);
                    ctx.send_boxed(u.to, u.payload, delay);
                } else if msg.is::<StartFlow>() {
                    let req = msg.downcast::<StartFlow>().expect("checked");
                    self.elapse(ctx, now);
                    if req.bytes == 0 {
                        match req.on_done {
                            Some(payload) => ctx.send_boxed(req.notify, payload, SimDuration::ZERO),
                            None => ctx.send(
                                req.notify,
                                FlowDone {
                                    tag: req.tag,
                                    bytes: 0,
                                },
                            ),
                        }
                    } else {
                        let id = self.next_flow_id;
                        self.next_flow_id += 1;
                        let links = self.route(req.src, req.dst);
                        self.flows.insert(
                            id,
                            ActiveFlow {
                                remaining: req.bytes as f64,
                                rate: 0.0,
                                links,
                                cap: req.cap_bytes_per_sec.unwrap_or(f64::INFINITY),
                                notify: req.notify,
                                tag: req.tag,
                                total: req.bytes,
                                src: req.src,
                                dst: req.dst,
                                on_done: req.on_done,
                            },
                        );
                        ctx.stats().incr("net.flows_started");
                    }
                    self.reschedule(ctx);
                } else if let Some(abort) = msg.peek::<AbortNode>() {
                    let node = abort.node;
                    self.elapse(ctx, now);
                    let dead: Vec<u64> = self
                        .flows
                        .iter()
                        .filter(|(_, f)| f.src == node || f.dst == node)
                        .map(|(id, _)| *id)
                        .collect();
                    for id in dead {
                        let f = self.flows.remove(&id).expect("flow present");
                        ctx.stats().incr("net.flows_aborted");
                        ctx.send(f.notify, FlowAborted { tag: f.tag });
                    }
                    self.reschedule(ctx);
                }
            }
        }
    }
}

/// Cheap copyable handle other actors use to talk to the fabric.
#[derive(Clone, Copy, Debug)]
pub struct NetHandle {
    /// The fabric actor.
    pub fabric: ActorId,
}

impl NetHandle {
    /// Sends a control RPC to actor `to` on node `dst`.
    pub fn unicast(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        to: ActorId,
        bytes: u64,
        payload: impl Msg,
    ) {
        ctx.send(
            self.fabric,
            Unicast {
                src,
                dst,
                to,
                bytes,
                payload: Box::new(payload),
            },
        );
    }

    /// Starts a bulk flow; the *calling* actor receives [`FlowDone`] /
    /// [`FlowAborted`] tagged with `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_flow(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap_bytes_per_sec: Option<f64>,
        tag: u64,
    ) {
        let notify = ctx.self_id();
        ctx.send(
            self.fabric,
            StartFlow {
                src,
                dst,
                bytes,
                cap_bytes_per_sec,
                notify,
                tag,
                on_done: None,
            },
        );
    }

    /// Starts a bulk flow that delivers `payload` to `notify` on
    /// completion (aborts still deliver [`FlowAborted`] with `tag`).
    #[allow(clippy::too_many_arguments)]
    pub fn start_flow_with(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap_bytes_per_sec: Option<f64>,
        notify: ActorId,
        tag: u64,
        payload: impl Msg,
    ) {
        ctx.send(
            self.fabric,
            StartFlow {
                src,
                dst,
                bytes,
                cap_bytes_per_sec,
                notify,
                tag,
                on_done: Some(Box::new(payload)),
            },
        );
    }

    /// Aborts every flow touching `node`.
    pub fn abort_node(self, ctx: &mut Ctx<'_>, node: NodeId) {
        ctx.send(self.fabric, AbortNode { node });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Starts `flows` described as (src, dst, bytes, cap) at t=0 and records
    /// each completion time (tag → seconds).
    fn run_flows(flows: Vec<(u32, u32, u64, Option<f64>)>) -> Vec<(u64, f64)> {
        struct Driver {
            net: NetHandle,
            flows: Vec<(u32, u32, u64, Option<f64>)>,
            done: Vec<(u64, f64)>,
            expected: usize,
        }
        impl Actor for Driver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        for (i, &(s, d, b, cap)) in self.flows.iter().enumerate() {
                            self.net
                                .start_flow(ctx, NodeId(s), NodeId(d), b, cap, i as u64);
                        }
                    }
                    Event::Msg { msg, .. } => {
                        if let Some(done) = msg.peek::<FlowDone>() {
                            self.done.push((done.tag, ctx.now().as_secs_f64()));
                            if self.done.len() == self.expected {
                                ctx.stop();
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        let mut sim = Sim::new(0);
        let fabric = sim.spawn(Box::new(Fabric::new(NetConfig::default(), 8)));
        let expected = flows.len();
        let results = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct DriverWrap(Driver, std::sync::Arc<std::sync::Mutex<Vec<(u64, f64)>>>);
        impl Actor for DriverWrap {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                self.0.handle(ctx, ev);
                *self.1.lock().unwrap() = self.0.done.clone();
            }
        }
        sim.spawn(Box::new(DriverWrap(
            Driver {
                net: NetHandle { fabric },
                flows,
                done: Vec::new(),
                expected,
            },
            results.clone(),
        )));
        sim.run();
        let out = results.lock().unwrap().clone();
        out
    }

    #[test]
    fn single_flow_runs_at_link_rate() {
        let done = run_flows(vec![(1, 2, 125_000_000, None)]);
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.0).abs() < 1e-6, "t={}", done[0].1);
    }

    #[test]
    fn two_flows_share_source_uplink() {
        let done = run_flows(vec![(1, 2, 125_000_000, None), (1, 3, 125_000_000, None)]);
        assert_eq!(done.len(), 2);
        for (_, t) in &done {
            assert!((*t - 2.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn early_finisher_frees_bandwidth() {
        // Flow A: 125 MB, flow B: 62.5 MB on the same uplink. B finishes at
        // t=1 (62.5 MB at half rate), then A runs at full rate and finishes
        // at 1.5 s.
        let done = run_flows(vec![(1, 2, 125_000_000, None), (1, 3, 62_500_000, None)]);
        let a = done.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let b = done.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((b - 1.0).abs() < 1e-6, "b={b}");
        assert!((a - 1.5).abs() < 1e-6, "a={a}");
    }

    #[test]
    fn per_stream_cap_binds_loopback() {
        // 85 MB over loopback capped at 8.5 MB/s: 10 s, far below the
        // device capacity — the paper's observed DataNode→TaskTracker path.
        let done = run_flows(vec![(4, 4, 85_000_000, Some(8.5e6))]);
        assert!((done[0].1 - 10.0).abs() < 1e-6, "t={}", done[0].1);
    }

    #[test]
    fn loopback_does_not_consume_nic_links() {
        // A capped loopback stream and a remote flow from the same node do
        // not interact.
        let done = run_flows(vec![
            (2, 2, 17_000_000, Some(8.5e6)),
            (2, 3, 125_000_000, None),
        ]);
        let lo = done.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let remote = done.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((lo - 2.0).abs() < 1e-6);
        assert!((remote - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let done = run_flows(vec![(1, 2, 0, None)]);
        assert_eq!(done.len(), 1);
        assert!(done[0].1 < 1e-9);
    }

    #[test]
    fn incast_shares_receiver_downlink() {
        // 4 senders to one receiver: each gets 1/4 of the rx link.
        let flows = (1..=4).map(|s| (s, 5, 125_000_000u64, None)).collect();
        let done = run_flows(flows);
        assert_eq!(done.len(), 4);
        for (_, t) in &done {
            assert!((*t - 4.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn unicast_delivers_after_rpc_delay() {
        #[derive(Debug)]
        struct Hello(u32);

        struct Receiver;
        impl Actor for Receiver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if let Event::Msg { msg, .. } = ev {
                    if let Some(h) = msg.peek::<Hello>() {
                        assert_eq!(h.0, 7);
                        let t = ctx.now();
                        assert_eq!(t, SimTime::ZERO + NetConfig::default().rpc_delay(1000));
                        ctx.stats().incr("got_hello");
                    }
                }
            }
        }
        struct Sender {
            net: NetHandle,
            to: ActorId,
        }
        impl Actor for Sender {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    self.net
                        .unicast(ctx, NodeId(1), NodeId(2), self.to, 1000, Hello(7));
                }
            }
        }

        let mut sim = Sim::new(0);
        let fabric = sim.spawn(Box::new(Fabric::new(NetConfig::default(), 4)));
        let recv = sim.spawn(Box::new(Receiver));
        sim.spawn(Box::new(Sender {
            net: NetHandle { fabric },
            to: recv,
        }));
        sim.run();
        assert_eq!(sim.stats().counter("got_hello"), 1);
    }

    #[test]
    fn abort_node_kills_touching_flows() {
        struct Driver {
            net: NetHandle,
            aborted: u32,
        }
        impl Actor for Driver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        self.net
                            .start_flow(ctx, NodeId(1), NodeId(2), 125_000_000, None, 0);
                        self.net
                            .start_flow(ctx, NodeId(3), NodeId(1), 125_000_000, None, 1);
                        self.net
                            .start_flow(ctx, NodeId(3), NodeId(4), 125_000_000, None, 2);
                        ctx.after(SimDuration::from_millis(100), 9);
                    }
                    Event::Timer { tag: 9, .. } => {
                        self.net.abort_node(ctx, NodeId(1));
                    }
                    Event::Msg { msg, .. } => {
                        if msg.peek::<FlowAborted>().is_some() {
                            self.aborted += 1;
                            ctx.stats().incr("aborted");
                        } else if let Some(d) = msg.peek::<FlowDone>() {
                            assert_eq!(d.tag, 2);
                            ctx.stats().incr("survived");
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        let fabric = sim.spawn(Box::new(Fabric::new(NetConfig::default(), 6)));
        sim.spawn(Box::new(Driver {
            net: NetHandle { fabric },
            aborted: 0,
        }));
        sim.run();
        assert_eq!(sim.stats().counter("aborted"), 2);
        assert_eq!(sim.stats().counter("survived"), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let fp = || {
            let mut sim = Sim::new(3);
            sim.enable_trace(1 << 12);
            let fabric = sim.spawn(Box::new(Fabric::new(NetConfig::default(), 8)));
            struct D {
                net: NetHandle,
            }
            impl Actor for D {
                fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                    if matches!(ev, Event::Start) {
                        for i in 0..20u64 {
                            let s = NodeId((i % 7) as u32);
                            let d = NodeId(((i * 3 + 1) % 8) as u32);
                            self.net.start_flow(ctx, s, d, 1_000_000 * (i + 1), None, i);
                        }
                    }
                }
            }
            sim.spawn(Box::new(D {
                net: NetHandle { fabric },
            }));
            sim.run();
            sim.trace().fingerprint()
        };
        assert_eq!(fp(), fp());
    }
}
