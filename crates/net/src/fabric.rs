//! The fabric actor: message delivery and fluid bulk transfers.
//!
//! One [`Fabric`] actor represents the cluster interconnect: every node's
//! full-duplex NIC (tx/rx links), its loopback device, and a non-blocking
//! switch between them. Protocol actors (DFS, MapReduce) talk to it with
//! two primitives:
//!
//! * [`Unicast`] — control RPCs: fixed latency + serialization time.
//! * [`StartFlow`] — bulk data: a fluid flow sharing link bandwidth
//!   max-min-fairly with every other active flow, optionally capped by a
//!   per-stream protocol ceiling (the paper's loopback feed behavior).
//!   Completion is announced to the requester with [`FlowDone`].
//!
//! Node failures abort in-flight transfers via [`AbortNode`], announcing
//! [`FlowAborted`] so blocked readers can recover — the mechanism the
//! fault-tolerance tests drive.
//!
//! ## Rate engine
//!
//! The default [`FluidEngine::Incremental`] engine is built so a shuffle
//! wave of F concurrent flows costs O(component) solver work *once*, not
//! O(F) full re-solves:
//!
//! 1. **Same-instant coalescing** — a burst of [`StartFlow`]s at one
//!    simulated instant arms a single deferred wakeup ([`Ctx::defer`]);
//!    rates are re-solved once after the burst's inbox drains.
//! 2. **Component-incremental solving** — the fabric keeps a persistent
//!    link→flows index and re-solves only the connected component of the
//!    link/flow sharing graph reachable from the links a change touched.
//!    Flows between disjoint node pairs never pay for each other. The
//!    solve itself runs on the allocation-free
//!    [`crate::flow::MaxMinSolver`] with inline [`Route`]s.
//! 3. **Completion heap** — projected finish times live in a min-heap,
//!    lazily invalidated when a flow's rate changes (a generation counter
//!    per flow), replacing the O(flows) completion scan per event. The
//!    armed completion timer is *reused* when the projected next
//!    completion instant is unchanged, instead of paying a cancel +
//!    re-insert per event.
//! 4. **Slab flow storage** — active flows live in a slot-indexed slab
//!    split into a hot array (remaining bytes, rate, route — what the
//!    decrement/solve loops touch) and a cold array (notification
//!    endpoints, payloads), with freed slots recycled. Link indices and
//!    the completion heap refer to flows by slot (O(1), no hashing);
//!    every order-sensitive sweep sorts by the flow's monotonic id, so
//!    the event stream is identical to the original id-ordered map's.
//!
//! [`FluidEngine::Reference`] preserves the original engine — one global
//! [`max_min_rates`] solve per flow event — event-for-event; it is the
//! oracle for the equivalence tests and the `net_scale` bench baseline.
//! Both engines produce flow completion *times* equal within float
//! epsilon.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use accelmr_des::prelude::*;

use crate::config::{FluidEngine, NetConfig, NodeId};
use crate::flow::{max_min_rates, FlowDemand, LinkId, LinkTable, MaxMinSolver, Route};

/// Control RPC from `src` to an actor on node `dst`.
pub struct Unicast {
    /// Sending node (for accounting; RPCs are small enough to ignore in
    /// the fluid model).
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Destination actor.
    pub to: ActorId,
    /// Payload size for serialization delay.
    pub bytes: u64,
    /// The protocol message delivered to `to`.
    pub payload: Box<dyn Msg>,
}

impl std::fmt::Debug for Unicast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Unicast({}→{}, {} B, {})",
            self.src,
            self.dst,
            self.bytes,
            self.payload.as_ref().label()
        )
    }
}

/// Starts a bulk transfer.
#[derive(Debug)]
pub struct StartFlow {
    /// Source node.
    pub src: NodeId,
    /// Destination node (may equal `src`: loopback).
    pub dst: NodeId,
    /// Transfer size.
    pub bytes: u64,
    /// Optional per-stream rate ceiling, bytes/second.
    pub cap_bytes_per_sec: Option<f64>,
    /// Actor to notify on completion/abort.
    pub notify: ActorId,
    /// Caller-chosen correlation tag echoed in the notification.
    pub tag: u64,
    /// Optional payload delivered to `notify` *instead of* [`FlowDone`]
    /// when the flow completes (aborts still deliver [`FlowAborted`]).
    /// This is how data-bearing transfers (DFS block reads) hand the
    /// materialized bytes to the receiver at the moment the last byte
    /// arrives.
    pub on_done: Option<Box<dyn Msg>>,
}

/// Aborts all flows touching a node (its crash).
#[derive(Debug)]
pub struct AbortNode {
    /// The failed node.
    pub node: NodeId,
}

/// Grows the fabric so `node` has links (dynamic membership). Idempotent:
/// nodes the fabric already serves are untouched, and growth never
/// perturbs existing flows or rates. Send *before* any traffic involving
/// the new node — same-instant FIFO ordering guarantees the links exist by
/// the time a later-queued [`StartFlow`] references them.
#[derive(Debug, Clone, Copy)]
pub struct EnsureNode {
    /// Node that must be routable after this message is processed.
    pub node: NodeId,
}

/// Sets the bandwidth factor of a node's NIC (tx + rx) links — the chaos
/// plane's partition/degraded-link state. `factor` scales the configured
/// link rate: `1.0` restores full health, values in `(0, 1)` model a gray
/// link, and `0.0` (or anything below [`PARTITION_FACTOR`]) is a full
/// partition — flows crossing the node **stall at rate 0** (no abort, no
/// completion) until a later message restores capacity, at which point
/// they resume from their remaining byte count. The loopback device is
/// untouched: a partition is a NIC-level event, local disk traffic
/// survives it. Restoring a fully-partitioned node counts
/// `net.partitions_healed`.
#[derive(Debug, Clone, Copy)]
pub struct SetNodeBandwidth {
    /// The node whose links are re-priced.
    pub node: NodeId,
    /// Bandwidth factor in `[0, 1]` (clamped).
    pub factor: f64,
}

/// Bandwidth factors below this are treated as a full partition (capacity
/// exactly 0): a near-zero rate would project completions astronomically
/// far out instead of stalling the flow, which is the semantics partitions
/// need.
pub const PARTITION_FACTOR: f64 = 1e-6;

/// A flow completed; delivered to the flow's `notify` actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDone {
    /// The caller's correlation tag.
    pub tag: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A flow was aborted by a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowAborted {
    /// The caller's correlation tag.
    pub tag: u64,
}

/// Hot per-flow state, slot-indexed and densely packed: exactly the
/// fields the component walk, the rate write-back, and the settle loop
/// touch. Keeping these in one ~80-byte record (no boxed payload) means a
/// resolve sweep streams through a compact array instead of taking two
/// cache misses per flow on a fat mixed record — the component walk is
/// the single hottest loop in the 1000-node churn profile.
#[derive(Clone, Copy)]
struct FlowHot {
    /// Monotonic flow id: the deterministic sort key for every
    /// order-sensitive sweep and the completion-heap tiebreaker. Slab
    /// *slots* are recycled; ids never are. `u64::MAX` marks a free slot
    /// (no live flow can carry it — ids count up from zero).
    id: u64,
    /// Bytes left as of `updated_at` (lazily settled: only touched when
    /// this flow's rate changes, not on every fabric event).
    remaining: f64,
    rate: f64,
    updated_at: SimTime,
    /// Bumped on every rate change; completion-heap entries carrying an
    /// older generation are stale and dropped on pop.
    gen: u64,
    cap: f64,
    route: Route,
    /// Component-walk visit stamp (see `resolve_dirty`).
    mark: u32,
}

/// Cold per-flow bookkeeping, read only when the flow completes or
/// aborts: who to tell, and what to hand them.
struct FlowCold {
    notify: ActorId,
    tag: u64,
    total: u64,
    src: NodeId,
    dst: NodeId,
    on_done: Option<Box<dyn Msg>>,
}

/// Per-flow snapshot taken as the component walk first visits a flow: by
/// then every link on its route holds a dense solver slot, so the solver
/// feed and the `add_flow` order need no further flow-table lookups.
#[derive(Clone, Copy)]
struct CompFlow {
    /// Monotonic flow id — the deterministic solve-order key.
    id: u64,
    /// Slab slot, for the lookup-free rate write-back.
    slot: u32,
    cap: f64,
    /// Dense solver slots of the route's links (first `n_links` valid).
    slots: [u32; 2],
    n_links: u8,
}

/// Completion-timer tag (kept at 0, matching the original fabric).
const TAG_COMPLETE: u64 = 0;
/// Deferred-resolve wakeup tag (incremental engine only).
const TAG_RESOLVE: u64 = 1;

const EPS_BYTES: f64 = 1e-3;

/// The interconnect actor.
pub struct Fabric {
    cfg: NetConfig,
    links: LinkTable,
    tx: Vec<LinkId>,
    rx: Vec<LinkId>,
    loopback: Vec<LinkId>,
    /// Per-node NIC bandwidth factor (1.0 = healthy, 0.0 = partitioned);
    /// see [`SetNodeBandwidth`].
    degrade: Vec<f64>,
    /// Active flows in a slot-indexed hot/cold slab: `hot[s]` holds the
    /// solver-facing state ([`FlowHot`]; `id == u64::MAX` = free slot),
    /// `cold[s]` the completion bookkeeping. Direct Vec indexing on the
    /// hot path — the component walk visits every flow of a component per
    /// resolve, and map descents dominated the 1000-node churn profile.
    /// Slots recycle through `free_slots`; the monotonic flow *id* lives
    /// in [`FlowHot`], and every sweep whose order can reach events or
    /// float rounding sorts by id, preserving the original BTreeMap
    /// id-order semantics exactly.
    hot: Vec<FlowHot>,
    cold: Vec<Option<FlowCold>>,
    free_slots: Vec<u32>,
    live_flows: usize,
    next_flow_id: u64,
    /// Armed completion timer and the absolute instant it fires at; the
    /// instant lets `rearm` skip the cancel + re-arm when the projected
    /// next completion is unchanged.
    timer: Option<(TimerHandle, SimTime)>,
    /// Reference engine: instant flow progress was last advanced to.
    last_update: SimTime,
    // --- incremental engine state ---
    /// Whether a deferred resolve wakeup is already queued for this instant.
    resolve_pending: bool,
    /// Persistent link → active-flow slab slots index.
    link_flows: Vec<Vec<u32>>,
    /// Links whose flow set changed since the last resolve.
    dirty_links: Vec<LinkId>,
    link_dirty: Vec<bool>,
    /// Component-walk epoch + per-link visit stamp / dense solver slot.
    epoch: u32,
    link_mark: Vec<u32>,
    link_slot: Vec<u32>,
    /// Scratch: flows of the current component / link BFS frontier.
    comp_flows: Vec<CompFlow>,
    bfs_links: Vec<LinkId>,
    solver: MaxMinSolver,
    /// Min-heap of (projected finish, flow id, generation, slab slot).
    /// The slot rides along for O(1) access; it never decides order —
    /// ids are unique, so comparisons end at the (finish, id, gen) prefix
    /// exactly as they did before slots existed.
    done_heap: BinaryHeap<Reverse<(SimTime, u64, u64, u32)>>,
}

impl Fabric {
    /// Builds a fabric for `nodes` machines.
    pub fn new(cfg: NetConfig, nodes: usize) -> Self {
        let mut links = LinkTable::new();
        let tx: Vec<LinkId> = (0..nodes)
            .map(|_| links.add(cfg.link_bytes_per_sec))
            .collect();
        let rx: Vec<LinkId> = (0..nodes)
            .map(|_| links.add(cfg.link_bytes_per_sec))
            .collect();
        let loopback: Vec<LinkId> = (0..nodes)
            .map(|_| links.add(cfg.loopback_bytes_per_sec))
            .collect();
        let n_links = links.len();
        Fabric {
            cfg,
            links,
            tx,
            rx,
            loopback,
            degrade: vec![1.0; nodes],
            hot: Vec::new(),
            cold: Vec::new(),
            free_slots: Vec::new(),
            live_flows: 0,
            next_flow_id: 0,
            timer: None,
            last_update: SimTime::ZERO,
            resolve_pending: false,
            link_flows: vec![Vec::new(); n_links],
            dirty_links: Vec::new(),
            link_dirty: vec![false; n_links],
            epoch: 0,
            link_mark: vec![0; n_links],
            link_slot: vec![0; n_links],
            comp_flows: Vec::new(),
            bfs_links: Vec::new(),
            solver: MaxMinSolver::new(),
            done_heap: BinaryHeap::new(),
        }
    }

    /// Number of nodes the fabric serves.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Adds nodes (each with fresh tx/rx/loopback links) until `node` is
    /// routable, returning how many were added. New links carry no flows,
    /// so no re-solve is needed.
    fn ensure_node(&mut self, node: NodeId) -> usize {
        let before = self.tx.len();
        while self.tx.len() <= node.index() {
            self.tx.push(self.links.add(self.cfg.link_bytes_per_sec));
            self.rx.push(self.links.add(self.cfg.link_bytes_per_sec));
            self.loopback
                .push(self.links.add(self.cfg.loopback_bytes_per_sec));
        }
        let n_links = self.links.len();
        self.link_flows.resize_with(n_links, Vec::new);
        self.link_dirty.resize(n_links, false);
        self.link_mark.resize(n_links, 0);
        self.link_slot.resize(n_links, 0);
        self.degrade.resize(self.tx.len(), 1.0);
        self.tx.len() - before
    }

    /// Applies [`SetNodeBandwidth`]: re-prices the node's tx/rx links and
    /// triggers a component re-solve on whichever engine is active, so the
    /// new capacity binds from this instant on both. A factor equal to the
    /// current one is a no-op (no spurious solve, no trace perturbation).
    fn set_node_bandwidth(&mut self, ctx: &mut Ctx<'_>, now: SimTime, node: NodeId, factor: f64) {
        self.ensure_node(node);
        let factor = if factor < PARTITION_FACTOR {
            0.0
        } else {
            factor.min(1.0)
        };
        let old = self.degrade[node.index()];
        if factor == old {
            return;
        }
        if old == 0.0 {
            ctx.stats().incr("net.partitions_healed");
        }
        if factor == 0.0 {
            ctx.stats().incr("net.partitions_started");
        }
        self.degrade[node.index()] = factor;
        let cap = self.cfg.link_bytes_per_sec * factor;
        let (tx, rx) = (self.tx[node.index()], self.rx[node.index()]);
        self.links.set_capacity(tx, cap);
        self.links.set_capacity(rx, cap);
        ctx.stats().incr("net.bandwidth_changes");
        match self.cfg.fluid {
            FluidEngine::Reference => {
                // Settle progress at the old rates, then one global
                // re-solve prices every flow at the new capacity.
                self.ref_elapse(ctx, now);
                self.ref_reschedule(ctx);
            }
            FluidEngine::Incremental => {
                // Both links join the dirty set; the deferred resolve
                // settles and re-prices exactly the touched component.
                self.mark_dirty(Route::pair(tx, rx));
                self.request_resolve(ctx);
            }
        }
    }

    /// Stores a flow in a recycled (or fresh) slab slot.
    fn insert_flow(&mut self, h: FlowHot, c: FlowCold) -> u32 {
        self.live_flows += 1;
        match self.free_slots.pop() {
            Some(s) => {
                debug_assert_eq!(self.hot[s as usize].id, u64::MAX);
                self.hot[s as usize] = h;
                self.cold[s as usize] = Some(c);
                s
            }
            None => {
                self.hot.push(h);
                self.cold.push(Some(c));
                (self.hot.len() - 1) as u32
            }
        }
    }

    /// Frees a slab slot, returning the flow's final hot state and its
    /// completion bookkeeping.
    fn remove_flow(&mut self, slot: u32) -> (FlowHot, FlowCold) {
        self.live_flows -= 1;
        self.free_slots.push(slot);
        let h = self.hot[slot as usize];
        self.hot[slot as usize].id = u64::MAX;
        let c = self.cold[slot as usize].take().expect("flow present");
        (h, c)
    }

    /// Live `(id, slot)` pairs in ascending flow-id order — the
    /// deterministic sweep order of the original BTreeMap flow table.
    fn flows_by_id(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self
            .hot
            .iter()
            .enumerate()
            .filter(|(_, h)| h.id != u64::MAX)
            .map(|(s, h)| (h.id, s as u32))
            .collect();
        v.sort_unstable();
        v
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            Route::single(self.loopback[src.index()])
        } else {
            Route::pair(self.tx[src.index()], self.rx[dst.index()])
        }
    }

    fn deliver_done(
        ctx: &mut Ctx<'_>,
        notify: ActorId,
        tag: u64,
        bytes: u64,
        on_done: Option<Box<dyn Msg>>,
    ) {
        match on_done {
            Some(payload) => ctx.send_boxed(notify, payload, SimDuration::ZERO),
            None => ctx.send(notify, FlowDone { tag, bytes }),
        }
    }

    // ------------------------------------------------------------------
    // Reference engine: the pre-optimization fabric, kept event-for-event
    // identical as the oracle. One global solve per flow event.
    // ------------------------------------------------------------------

    /// Advances flow progress to `now`, completing finished flows.
    fn ref_elapse(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt > 0.0 {
            for h in &mut self.hot {
                if h.id != u64::MAX {
                    h.remaining -= h.rate * dt;
                }
            }
        }
        // Completions in flow-id order (collect-then-sort): deterministic,
        // matching the old BTreeMap sweep exactly.
        let mut done: Vec<(u64, u32)> = self
            .hot
            .iter()
            .enumerate()
            .filter(|(_, h)| h.id != u64::MAX && h.remaining <= EPS_BYTES)
            .map(|(s, h)| (h.id, s as u32))
            .collect();
        done.sort_unstable();
        for (_, slot) in done {
            let (_, c) = self.remove_flow(slot);
            ctx.stats().add("net.flow_bytes_done", c.total);
            ctx.stats().incr("net.flows_done");
            Self::deliver_done(ctx, c.notify, c.tag, c.total, c.on_done);
        }
    }

    /// Re-solves rates over *all* flows and re-arms the completion timer.
    fn ref_reschedule(&mut self, ctx: &mut Ctx<'_>) {
        let old_timer = self.timer.take();
        if self.live_flows == 0 {
            if let Some((t, _)) = old_timer {
                ctx.cancel_timer(t);
            }
            return;
        }
        // Solver input order decides float rounding, so both the demand
        // build and the rate write-back walk ascending flow ids — the
        // exact order the old BTreeMap sweep produced.
        let ids = self.flows_by_id();
        let demands: Vec<FlowDemand> = ids
            .iter()
            .map(|&(_, slot)| {
                let h = &self.hot[slot as usize];
                FlowDemand {
                    links: h.route.links().to_vec(),
                    cap: h.cap,
                }
            })
            .collect();
        let rates = max_min_rates(&self.links, &demands);
        ctx.stats().incr("net.solver_calls");
        let mut next = f64::INFINITY;
        for (&(_, slot), rate) in ids.iter().zip(rates) {
            let h = &mut self.hot[slot as usize];
            h.rate = rate;
            if rate > 0.0 {
                next = next.min(h.remaining / rate);
            }
        }
        if next.is_finite() {
            let delay = SimDuration::from_secs_f64(next).max(SimDuration::from_nanos(1));
            let at = ctx.now() + delay;
            // Reschedule in place (dispatch-order-identical to the old
            // cancel + re-arm, minus the slot churn).
            let t = match old_timer {
                Some((t, _)) => ctx.reschedule_at(t, at, TAG_COMPLETE),
                None => ctx.after_at(at, TAG_COMPLETE),
            };
            self.timer = Some((t, at));
        } else if let Some((t, _)) = old_timer {
            ctx.cancel_timer(t);
        }
    }

    fn ref_handle_msg(&mut self, ctx: &mut Ctx<'_>, now: SimTime, msg: Box<dyn Msg>) {
        if msg.is::<StartFlow>() {
            let req = msg.downcast::<StartFlow>().expect("checked");
            self.ref_elapse(ctx, now);
            if req.bytes == 0 {
                Self::deliver_done(ctx, req.notify, req.tag, 0, req.on_done);
            } else {
                let id = self.next_flow_id;
                self.next_flow_id += 1;
                let route = self.route(req.src, req.dst);
                self.insert_flow(
                    FlowHot {
                        id,
                        remaining: req.bytes as f64,
                        rate: 0.0,
                        updated_at: now,
                        gen: 0,
                        cap: req.cap_bytes_per_sec.unwrap_or(f64::INFINITY),
                        route,
                        mark: 0,
                    },
                    FlowCold {
                        notify: req.notify,
                        tag: req.tag,
                        total: req.bytes,
                        src: req.src,
                        dst: req.dst,
                        on_done: req.on_done,
                    },
                );
                ctx.stats().incr("net.flows_started");
            }
            self.ref_reschedule(ctx);
        } else if let Some(abort) = msg.peek::<AbortNode>() {
            let node = abort.node;
            self.ref_elapse(ctx, now);
            // The reference engine scans every active flow per crash —
            // O(F). The counter exists so the incremental engine's
            // link-indexed abort can be asserted against it.
            ctx.stats()
                .add("net.abort_flows_scanned", self.live_flows as u64);
            let mut dead: Vec<(u64, u32)> = self
                .hot
                .iter()
                .zip(&self.cold)
                .enumerate()
                .filter_map(|(s, (h, c))| {
                    if h.id == u64::MAX {
                        return None;
                    }
                    let c = c.as_ref().expect("flow present");
                    (c.src == node || c.dst == node).then_some((h.id, s as u32))
                })
                .collect();
            dead.sort_unstable();
            for (_, slot) in dead {
                let (_, c) = self.remove_flow(slot);
                ctx.stats().incr("net.flows_aborted");
                ctx.send(c.notify, FlowAborted { tag: c.tag });
            }
            self.ref_reschedule(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Incremental engine
    // ------------------------------------------------------------------

    /// Queues one deferred resolve for the current instant (coalescing:
    /// every further change this instant rides the same wakeup).
    fn request_resolve(&mut self, ctx: &mut Ctx<'_>) {
        if !self.resolve_pending {
            self.resolve_pending = true;
            ctx.defer(TAG_RESOLVE);
        }
    }

    /// Marks a route's links dirty for the next component resolve.
    fn mark_dirty(&mut self, route: Route) {
        for &l in route.links() {
            if !self.link_dirty[l.0] {
                self.link_dirty[l.0] = true;
                self.dirty_links.push(l);
            }
        }
    }

    /// Unindexes a flow's slab slot from its links.
    fn detach(&mut self, route: Route, slot: u32) {
        for &l in route.links() {
            let v = &mut self.link_flows[l.0];
            if let Some(p) = v.iter().position(|&x| x == slot) {
                v.swap_remove(p);
            }
        }
    }

    /// Pops every due completion off the heap, settling and completing the
    /// flows whose projected finish has arrived. Stale entries (older
    /// generation than the flow, or flow already gone) are discarded.
    fn settle_due(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        while let Some(&Reverse((at, id, gen, slot))) = self.done_heap.peek() {
            // Slots recycle, ids don't: an id mismatch means this entry's
            // flow is gone and another now owns the slot.
            let h = &mut self.hot[slot as usize];
            if h.id != id || h.gen != gen {
                self.done_heap.pop();
                continue;
            }
            if at > now {
                break;
            }
            self.done_heap.pop();
            let dt = (now - h.updated_at).as_secs_f64();
            if dt > 0.0 {
                h.remaining -= h.rate * dt;
                h.updated_at = now;
            }
            if h.remaining <= EPS_BYTES {
                let (h, c) = self.remove_flow(slot);
                self.detach(h.route, slot);
                self.mark_dirty(h.route);
                ctx.stats().add("net.flow_bytes_done", c.total);
                ctx.stats().incr("net.flows_done");
                Self::deliver_done(ctx, c.notify, c.tag, c.total, c.on_done);
            } else {
                // Nanosecond rounding left a sliver; try again shortly
                // (mirrors the reference engine's 1 ns minimum re-arm).
                let delay = SimDuration::from_secs_f64(h.remaining / h.rate)
                    .max(SimDuration::from_nanos(1));
                self.done_heap.push(Reverse((now + delay, id, gen, slot)));
            }
        }
    }

    /// Re-solves max-min rates over the connected component(s) of the
    /// link/flow sharing graph reachable from the dirty links. Flows
    /// outside the walked component keep their rates and their heap
    /// entries untouched — disjoint traffic is free.
    fn resolve_dirty(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        if self.dirty_links.is_empty() {
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks from exactly 2^32 resolves ago would
            // alias the fresh epoch, silently excluding flows/links from
            // the walk. Reset every stamp and restart above the 0 that
            // newly-inserted flows carry.
            for m in &mut self.link_mark {
                *m = 0;
            }
            for h in &mut self.hot {
                h.mark = 0;
            }
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.comp_flows.clear();
        self.bfs_links.clear();
        self.solver.begin();
        // Seed the walk with the dirty links.
        while let Some(l) = self.dirty_links.pop() {
            self.link_dirty[l.0] = false;
            if self.link_mark[l.0] != epoch {
                self.link_mark[l.0] = epoch;
                self.link_slot[l.0] = self.solver.add_link(self.links.capacity(l));
                self.bfs_links.push(l);
            }
        }
        // Grow to the full component: links sharing a flow share a fate.
        while let Some(l) = self.bfs_links.pop() {
            for i in 0..self.link_flows[l.0].len() {
                let slot = self.link_flows[l.0][i];
                let h = &mut self.hot[slot as usize];
                debug_assert_ne!(h.id, u64::MAX, "indexed flow present");
                if h.mark == epoch {
                    continue;
                }
                h.mark = epoch;
                let (id, cap, route) = (h.id, h.cap, h.route);
                for &l2 in route.links() {
                    if self.link_mark[l2.0] != epoch {
                        self.link_mark[l2.0] = epoch;
                        self.link_slot[l2.0] = self.solver.add_link(self.links.capacity(l2));
                        self.bfs_links.push(l2);
                    }
                }
                // Every route link now holds a solver slot (assigned above
                // or on an earlier visit): snapshot, so the solver feed
                // below is lookup-free.
                let links = route.links();
                let mut slots = [0u32; 2];
                for (s, l2) in slots.iter_mut().zip(links) {
                    *s = self.link_slot[l2.0];
                }
                self.comp_flows.push(CompFlow {
                    id,
                    slot,
                    cap,
                    slots,
                    n_links: links.len() as u8,
                });
            }
        }
        if self.comp_flows.is_empty() {
            // Dirty links with no remaining flows (e.g. last flow on a
            // node pair finished): nothing to solve.
            return;
        }
        // Flow-id order keeps the solve order (and thus float rounding)
        // independent of walk order.
        self.comp_flows.sort_unstable_by_key(|c| c.id);
        for c in &self.comp_flows {
            self.solver.add_flow(&c.slots[..c.n_links as usize], c.cap);
        }
        let rounds_before = self.solver.rounds();
        let rates = self.solver.solve();
        ctx.stats().incr("net.solver_calls");
        ctx.stats()
            .add("net.comp_flow_visits", self.comp_flows.len() as u64);
        for (i, c) in self.comp_flows.iter().enumerate() {
            let new_rate = rates[i];
            let h = &mut self.hot[c.slot as usize];
            let dt = (now - h.updated_at).as_secs_f64();
            if dt > 0.0 {
                h.remaining -= h.rate * dt;
            }
            h.updated_at = now;
            if new_rate != h.rate {
                h.rate = new_rate;
                h.gen += 1;
                if new_rate > 0.0 {
                    let delay = SimDuration::from_secs_f64(h.remaining / new_rate)
                        .max(SimDuration::from_nanos(1));
                    self.done_heap
                        .push(Reverse((now + delay, c.id, h.gen, c.slot)));
                }
            }
        }
        ctx.stats()
            .add("net.solver_rounds", self.solver.rounds() - rounds_before);
    }

    /// Re-arms the completion timer at the earliest valid projected finish,
    /// *reusing* the armed timer when that instant is unchanged.
    fn rearm(&mut self, ctx: &mut Ctx<'_>) {
        let next = loop {
            match self.done_heap.peek() {
                None => break None,
                Some(&Reverse((at, id, gen, slot))) => {
                    let h = &self.hot[slot as usize];
                    if h.id == id && h.gen == gen {
                        break Some(at);
                    }
                    self.done_heap.pop();
                }
            }
        };
        match next {
            None => {
                if let Some((t, _)) = self.timer.take() {
                    ctx.cancel_timer(t);
                }
            }
            Some(at) => {
                let t = match self.timer {
                    Some((_, armed_at)) if armed_at == at => {
                        return; // timer reuse: nothing to move, nothing to queue
                    }
                    // Deadline moved: reschedule in place (order-identical
                    // to cancel + re-arm, no slot churn).
                    Some((t, _)) => ctx.reschedule_at(t, at, TAG_COMPLETE),
                    None => ctx.after_at(at, TAG_COMPLETE),
                };
                self.timer = Some((t, at));
            }
        }
    }

    fn incr_handle_msg(&mut self, ctx: &mut Ctx<'_>, now: SimTime, msg: Box<dyn Msg>) {
        if msg.is::<StartFlow>() {
            let req = msg.downcast::<StartFlow>().expect("checked");
            if req.bytes == 0 {
                Self::deliver_done(ctx, req.notify, req.tag, 0, req.on_done);
                return;
            }
            let id = self.next_flow_id;
            self.next_flow_id += 1;
            let route = self.route(req.src, req.dst);
            let slot = self.insert_flow(
                FlowHot {
                    id,
                    remaining: req.bytes as f64,
                    rate: 0.0,
                    updated_at: now,
                    gen: 0,
                    cap: req.cap_bytes_per_sec.unwrap_or(f64::INFINITY),
                    route,
                    mark: 0,
                },
                FlowCold {
                    notify: req.notify,
                    tag: req.tag,
                    total: req.bytes,
                    src: req.src,
                    dst: req.dst,
                    on_done: req.on_done,
                },
            );
            for &l in route.links() {
                self.link_flows[l.0].push(slot);
            }
            self.mark_dirty(route);
            ctx.stats().incr("net.flows_started");
            self.request_resolve(ctx);
        } else if let Some(abort) = msg.peek::<AbortNode>() {
            let node = abort.node;
            // Flows finishing exactly now still complete (parity with the
            // reference engine, which elapses before aborting).
            self.settle_due(ctx, now);
            // A flow touches `node` iff it is indexed on one of the node's
            // three links (loopback for src == dst, otherwise tx at the
            // source and rx at the destination — so each victim appears on
            // exactly one of them). Consulting the persistent link→flows
            // index makes a crash O(degree of the node), not O(all flows):
            // under 1000-node churn a crash must not scan the whole wire.
            let mut dead: Vec<(u64, u32)> = Vec::new();
            if node.index() < self.tx.len() {
                for l in [
                    self.tx[node.index()],
                    self.rx[node.index()],
                    self.loopback[node.index()],
                ] {
                    for &slot in &self.link_flows[l.0] {
                        dead.push((self.hot[slot as usize].id, slot));
                    }
                }
            }
            ctx.stats()
                .add("net.abort_flows_scanned", dead.len() as u64);
            // Link lists are insertion/swap_remove ordered; sort so the
            // abort notifications fire in flow-id order (determinism, and
            // parity with the reference engine's BTreeMap sweep).
            dead.sort_unstable();
            for (_, slot) in dead {
                let (mut h, c) = self.remove_flow(slot);
                self.detach(h.route, slot);
                self.mark_dirty(h.route);
                // A flow settled to within EPS of done may still hold a
                // heap entry a nanosecond out (timer quantization); the
                // reference engine's elapse-before-abort delivers FlowDone
                // for it, so match that rather than aborting a transfer
                // that has effectively landed.
                let dt = (now - h.updated_at).as_secs_f64();
                if dt > 0.0 {
                    h.remaining -= h.rate * dt;
                }
                if h.remaining <= EPS_BYTES {
                    ctx.stats().add("net.flow_bytes_done", c.total);
                    ctx.stats().incr("net.flows_done");
                    Self::deliver_done(ctx, c.notify, c.tag, c.total, c.on_done);
                } else {
                    ctx.stats().incr("net.flows_aborted");
                    ctx.send(c.notify, FlowAborted { tag: c.tag });
                }
            }
            self.request_resolve(ctx);
        }
    }
}

impl Actor for Fabric {
    fn name(&self) -> String {
        "net.fabric".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let now = ctx.now();
        match ev {
            Event::Start => {
                self.last_update = now;
            }
            Event::Timer {
                tag: TAG_RESOLVE, ..
            } => {
                self.resolve_pending = false;
                self.settle_due(ctx, now);
                self.resolve_dirty(ctx, now);
                self.rearm(ctx);
            }
            Event::Timer { .. } => {
                self.timer = None;
                match self.cfg.fluid {
                    FluidEngine::Reference => {
                        self.ref_elapse(ctx, now);
                        self.ref_reschedule(ctx);
                    }
                    FluidEngine::Incremental => {
                        self.settle_due(ctx, now);
                        self.resolve_dirty(ctx, now);
                        self.rearm(ctx);
                    }
                }
            }
            Event::Msg { msg, .. } => {
                if msg.is::<Unicast>() {
                    let u = msg.downcast::<Unicast>().expect("checked");
                    ctx.stats().incr("net.rpcs");
                    ctx.stats().add("net.rpc_bytes", u.bytes);
                    let delay = self.cfg.rpc_delay(u.bytes);
                    ctx.send_boxed(u.to, u.payload, delay);
                } else if let Some(grow) = msg.peek::<EnsureNode>() {
                    // Membership growth is engine-independent: links are
                    // appended, nothing is re-priced.
                    let added = self.ensure_node(grow.node);
                    ctx.stats().add("net.nodes_added", added as u64);
                } else if let Some(set) = msg.peek::<SetNodeBandwidth>() {
                    let (node, factor) = (set.node, set.factor);
                    self.set_node_bandwidth(ctx, now, node, factor);
                } else {
                    match self.cfg.fluid {
                        FluidEngine::Reference => self.ref_handle_msg(ctx, now, msg),
                        FluidEngine::Incremental => self.incr_handle_msg(ctx, now, msg),
                    }
                }
            }
        }
    }
}

/// Cheap copyable handle other actors use to talk to the fabric.
#[derive(Clone, Copy, Debug)]
pub struct NetHandle {
    /// The fabric actor.
    pub fabric: ActorId,
}

impl NetHandle {
    /// Sends a control RPC to actor `to` on node `dst`.
    pub fn unicast(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        to: ActorId,
        bytes: u64,
        payload: impl Msg,
    ) {
        ctx.send(
            self.fabric,
            Unicast {
                src,
                dst,
                to,
                bytes,
                payload: Box::new(payload),
            },
        );
    }

    /// Starts a bulk flow; the *calling* actor receives [`FlowDone`] /
    /// [`FlowAborted`] tagged with `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_flow(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap_bytes_per_sec: Option<f64>,
        tag: u64,
    ) {
        let notify = ctx.self_id();
        ctx.send(
            self.fabric,
            StartFlow {
                src,
                dst,
                bytes,
                cap_bytes_per_sec,
                notify,
                tag,
                on_done: None,
            },
        );
    }

    /// Starts a bulk flow that delivers `payload` to `notify` on
    /// completion (aborts still deliver [`FlowAborted`] with `tag`).
    #[allow(clippy::too_many_arguments)]
    pub fn start_flow_with(
        self,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap_bytes_per_sec: Option<f64>,
        notify: ActorId,
        tag: u64,
        payload: impl Msg,
    ) {
        ctx.send(
            self.fabric,
            StartFlow {
                src,
                dst,
                bytes,
                cap_bytes_per_sec,
                notify,
                tag,
                on_done: Some(Box::new(payload)),
            },
        );
    }

    /// Aborts every flow touching `node`.
    pub fn abort_node(self, ctx: &mut Ctx<'_>, node: NodeId) {
        ctx.send(self.fabric, AbortNode { node });
    }

    /// Grows the fabric so `node` is routable (dynamic membership); a
    /// no-op for nodes already served.
    pub fn ensure_node(self, ctx: &mut Ctx<'_>, node: NodeId) {
        ctx.send(self.fabric, EnsureNode { node });
    }

    /// Scales `node`'s NIC bandwidth by `factor` (see [`SetNodeBandwidth`]):
    /// `1.0` heals, `(0, 1)` degrades, `0.0` partitions — flows stall at
    /// rate 0 and resume when a later call restores capacity.
    pub fn set_node_bandwidth(self, ctx: &mut Ctx<'_>, node: NodeId, factor: f64) {
        ctx.send(self.fabric, SetNodeBandwidth { node, factor });
    }

    /// Partitions `node` off the data plane: every flow it touches stalls
    /// (no abort) until [`NetHandle::heal_node`]. Control RPCs
    /// ([`Unicast`]) are unaffected — a partition here is the data-plane
    /// half of a gray failure.
    pub fn partition_node(self, ctx: &mut Ctx<'_>, node: NodeId) {
        self.set_node_bandwidth(ctx, node, 0.0);
    }

    /// Restores `node`'s links to full capacity; stalled flows resume from
    /// their remaining bytes.
    pub fn heal_node(self, ctx: &mut Ctx<'_>, node: NodeId) {
        self.set_node_bandwidth(ctx, node, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> [FluidEngine; 2] {
        [FluidEngine::Incremental, FluidEngine::Reference]
    }

    fn cfg_with(engine: FluidEngine) -> NetConfig {
        NetConfig {
            fluid: engine,
            ..NetConfig::default()
        }
    }

    /// Drives a scripted set of flows and records completion times.
    struct Driver {
        net: NetHandle,
        flows: Vec<(u32, u32, u64, Option<f64>)>,
        done: Vec<(u64, f64)>,
        expected: usize,
    }

    impl Actor for Driver {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            match ev {
                Event::Start => {
                    for (i, &(s, d, b, cap)) in self.flows.iter().enumerate() {
                        self.net
                            .start_flow(ctx, NodeId(s), NodeId(d), b, cap, i as u64);
                    }
                }
                Event::Msg { msg, .. } => {
                    if let Some(done) = msg.peek::<FlowDone>() {
                        self.done.push((done.tag, ctx.now().as_secs_f64()));
                        if self.done.len() == self.expected {
                            ctx.stop();
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Starts `flows` described as (src, dst, bytes, cap) at t=0 and records
    /// each completion time (tag → seconds). State is read back through
    /// `Sim::actor_mut` — no shared-cell smuggling.
    fn run_flows_on(
        engine: FluidEngine,
        flows: Vec<(u32, u32, u64, Option<f64>)>,
    ) -> Vec<(u64, f64)> {
        let mut sim = Sim::new(0);
        let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 8)));
        let expected = flows.len();
        let driver = sim.spawn(Box::new(Driver {
            net: NetHandle { fabric },
            flows,
            done: Vec::new(),
            expected,
        }));
        sim.run();
        std::mem::take(&mut sim.actor_mut::<Driver>(driver).expect("driver alive").done)
    }

    /// Runs the scenario on both engines, asserts their completion times
    /// agree to the nanosecond-ish, and returns the incremental result.
    fn run_flows(flows: Vec<(u32, u32, u64, Option<f64>)>) -> Vec<(u64, f64)> {
        let incr = run_flows_on(FluidEngine::Incremental, flows.clone());
        let reference = run_flows_on(FluidEngine::Reference, flows);
        assert_eq!(incr.len(), reference.len());
        for (tag, t) in &incr {
            let (_, rt) = reference
                .iter()
                .find(|(rtag, _)| rtag == tag)
                .expect("tag completed on both engines");
            assert!(
                (t - rt).abs() < 1e-6,
                "tag {tag}: incremental={t} reference={rt}"
            );
        }
        incr
    }

    #[test]
    fn single_flow_runs_at_link_rate() {
        let done = run_flows(vec![(1, 2, 125_000_000, None)]);
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.0).abs() < 1e-6, "t={}", done[0].1);
    }

    #[test]
    fn two_flows_share_source_uplink() {
        let done = run_flows(vec![(1, 2, 125_000_000, None), (1, 3, 125_000_000, None)]);
        assert_eq!(done.len(), 2);
        for (_, t) in &done {
            assert!((*t - 2.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn early_finisher_frees_bandwidth() {
        // Flow A: 125 MB, flow B: 62.5 MB on the same uplink. B finishes at
        // t=1 (62.5 MB at half rate), then A runs at full rate and finishes
        // at 1.5 s.
        let done = run_flows(vec![(1, 2, 125_000_000, None), (1, 3, 62_500_000, None)]);
        let a = done.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let b = done.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((b - 1.0).abs() < 1e-6, "b={b}");
        assert!((a - 1.5).abs() < 1e-6, "a={a}");
    }

    #[test]
    fn per_stream_cap_binds_loopback() {
        // 85 MB over loopback capped at 8.5 MB/s: 10 s, far below the
        // device capacity — the paper's observed DataNode→TaskTracker path.
        let done = run_flows(vec![(4, 4, 85_000_000, Some(8.5e6))]);
        assert!((done[0].1 - 10.0).abs() < 1e-6, "t={}", done[0].1);
    }

    #[test]
    fn loopback_does_not_consume_nic_links() {
        // A capped loopback stream and a remote flow from the same node do
        // not interact.
        let done = run_flows(vec![
            (2, 2, 17_000_000, Some(8.5e6)),
            (2, 3, 125_000_000, None),
        ]);
        let lo = done.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let remote = done.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((lo - 2.0).abs() < 1e-6);
        assert!((remote - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let done = run_flows(vec![(1, 2, 0, None)]);
        assert_eq!(done.len(), 1);
        assert!(done[0].1 < 1e-9);
    }

    #[test]
    fn incast_shares_receiver_downlink() {
        // 4 senders to one receiver: each gets 1/4 of the rx link.
        let flows = (1..=4).map(|s| (s, 5, 125_000_000u64, None)).collect();
        let done = run_flows(flows);
        assert_eq!(done.len(), 4);
        for (_, t) in &done {
            assert!((*t - 4.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn coalescing_solves_a_burst_once() {
        // 16 flows started in one handler at t=0: the incremental engine
        // runs ONE solve for the burst; the reference engine runs one per
        // start. (Both also solve per completion.)
        let solver_calls = |engine| {
            let mut sim = Sim::new(0);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 8)));
            let flows = (0..4)
                .flat_map(|s| (4..8).map(move |d| (s, d, 10_000_000u64, None)))
                .collect();
            sim.spawn(Box::new(Driver {
                net: NetHandle { fabric },
                flows,
                done: Vec::new(),
                expected: 16,
            }));
            sim.run();
            sim.stats().counter("net.solver_calls")
        };
        let incr = solver_calls(FluidEngine::Incremental);
        let reference = solver_calls(FluidEngine::Reference);
        // All 16 flows are symmetric and finish at the same instant: one
        // solve for the start burst + one resolve per completion batch.
        assert!(incr < reference / 2, "incr={incr} reference={reference}");
        assert!(incr <= 3, "burst not coalesced: {incr} solves");
    }

    #[test]
    fn disjoint_components_do_not_reprice_each_other() {
        // A long flow on nodes (1,2) and staggered traffic on (3,4): the
        // (1,2) flow's rate never changes, so the incremental engine must
        // not touch it — observable via its completion staying exact while
        // solver work stays component-local.
        let done = run_flows(vec![
            (1, 2, 250_000_000, None), // 2 s alone on its pair
            (3, 4, 125_000_000, None), // 1 s on a disjoint pair
        ]);
        let a = done.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let b = done.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((a - 2.0).abs() < 1e-6, "a={a}");
        assert!((b - 1.0).abs() < 1e-6, "b={b}");
    }

    #[test]
    fn unicast_delivers_after_rpc_delay() {
        #[derive(Debug)]
        struct Hello(u32);

        struct Receiver;
        impl Actor for Receiver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if let Event::Msg { msg, .. } = ev {
                    if let Some(h) = msg.peek::<Hello>() {
                        assert_eq!(h.0, 7);
                        let t = ctx.now();
                        assert_eq!(t, SimTime::ZERO + NetConfig::default().rpc_delay(1000));
                        ctx.stats().incr("got_hello");
                    }
                }
            }
        }
        struct Sender {
            net: NetHandle,
            to: ActorId,
        }
        impl Actor for Sender {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    self.net
                        .unicast(ctx, NodeId(1), NodeId(2), self.to, 1000, Hello(7));
                }
            }
        }

        let mut sim = Sim::new(0);
        let fabric = sim.spawn(Box::new(Fabric::new(NetConfig::default(), 4)));
        let recv = sim.spawn(Box::new(Receiver));
        sim.spawn(Box::new(Sender {
            net: NetHandle { fabric },
            to: recv,
        }));
        sim.run();
        assert_eq!(sim.stats().counter("got_hello"), 1);
    }

    #[test]
    fn abort_node_kills_touching_flows() {
        struct AbortDriver {
            net: NetHandle,
            aborted: u32,
        }
        impl Actor for AbortDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        self.net
                            .start_flow(ctx, NodeId(1), NodeId(2), 125_000_000, None, 0);
                        self.net
                            .start_flow(ctx, NodeId(3), NodeId(1), 125_000_000, None, 1);
                        self.net
                            .start_flow(ctx, NodeId(3), NodeId(4), 125_000_000, None, 2);
                        ctx.after(SimDuration::from_millis(100), 9);
                    }
                    Event::Timer { tag: 9, .. } => {
                        self.net.abort_node(ctx, NodeId(1));
                    }
                    Event::Msg { msg, .. } => {
                        if msg.peek::<FlowAborted>().is_some() {
                            self.aborted += 1;
                            ctx.stats().incr("aborted");
                        } else if let Some(d) = msg.peek::<FlowDone>() {
                            assert_eq!(d.tag, 2);
                            ctx.stats().incr("survived");
                        }
                    }
                    _ => {}
                }
            }
        }
        for engine in engines() {
            let mut sim = Sim::new(0);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 6)));
            sim.spawn(Box::new(AbortDriver {
                net: NetHandle { fabric },
                aborted: 0,
            }));
            sim.run();
            assert_eq!(sim.stats().counter("aborted"), 2, "{engine:?}");
            assert_eq!(sim.stats().counter("survived"), 1, "{engine:?}");
        }
    }

    /// Satellite regression: a node crash consults the link→flows index,
    /// not the whole flow table. 256-node shuffle-style burst, one crash:
    /// the incremental engine scans only the victim's flows while the
    /// reference engine scans all of them — and both abort the same set.
    #[test]
    fn abort_scan_is_link_indexed() {
        const NODES: u32 = 256;
        const FANIN: u32 = 16;
        struct CrashDriver {
            net: NetHandle,
            aborted: u64,
            done: u64,
        }
        impl Actor for CrashDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        // Every reducer pulls from FANIN mapper nodes at
                        // one instant — the shuffle-wave shape.
                        let mut tag = 0;
                        for r in 0..NODES {
                            for i in 0..FANIN {
                                let s = (r + 1 + i * 3) % NODES;
                                self.net.start_flow(
                                    ctx,
                                    NodeId(s),
                                    NodeId(r),
                                    64 << 20,
                                    Some(20.0e6),
                                    tag,
                                );
                                tag += 1;
                            }
                        }
                        ctx.after(SimDuration::from_millis(50), 9);
                    }
                    Event::Timer { tag: 9, .. } => self.net.abort_node(ctx, NodeId(1)),
                    Event::Msg { msg, .. } => {
                        if msg.peek::<FlowAborted>().is_some() {
                            self.aborted += 1;
                        } else if msg.peek::<FlowDone>().is_some() {
                            self.done += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        let run = |engine| {
            let mut sim = Sim::new(11);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), NODES as usize)));
            let d = sim.spawn(Box::new(CrashDriver {
                net: NetHandle { fabric },
                aborted: 0,
                done: 0,
            }));
            sim.run();
            let driver = sim.actor_ref::<CrashDriver>(d).expect("driver");
            (
                driver.aborted,
                driver.done,
                sim.stats().counter("net.abort_flows_scanned"),
            )
        };
        let (incr_aborted, incr_done, incr_scanned) = run(FluidEngine::Incremental);
        let (ref_aborted, ref_done, ref_scanned) = run(FluidEngine::Reference);
        let total = u64::from(NODES * FANIN);
        // Same victims on both engines; everything else completes.
        assert_eq!(incr_aborted, ref_aborted);
        assert_eq!(incr_done, ref_done);
        assert_eq!(incr_aborted + incr_done, total);
        // Node 1 touches FANIN inbound flows plus its outbound fan — far
        // fewer than the 4096-flow wave.
        assert_eq!(incr_scanned, incr_aborted, "index walk visits victims only");
        assert_eq!(ref_scanned, total, "reference scans every active flow");
        assert!(
            incr_scanned * 10 < ref_scanned,
            "abort not index-driven: scanned {incr_scanned} of {ref_scanned}"
        );
    }

    /// Dynamic membership at the fabric level: a node added mid-run is
    /// routable, shares links fairly, and both engines agree on timings.
    #[test]
    fn grown_node_carries_flows() {
        struct GrowDriver {
            net: NetHandle,
            done: Vec<(u64, f64)>,
        }
        impl Actor for GrowDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        self.net
                            .start_flow(ctx, NodeId(0), NodeId(1), 125_000_000, None, 0);
                        ctx.after(SimDuration::from_millis(500), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        // Join node 4 (fabric was built for 2), then pull
                        // from it into the busy receiver: the two flows
                        // share node 1's downlink from t=0.5 s.
                        self.net.ensure_node(ctx, NodeId(4));
                        self.net
                            .start_flow(ctx, NodeId(4), NodeId(1), 125_000_000, None, 1);
                    }
                    Event::Msg { msg, .. } => {
                        if let Some(done) = msg.peek::<FlowDone>() {
                            self.done.push((done.tag, ctx.now().as_secs_f64()));
                            if self.done.len() == 2 {
                                ctx.stop();
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        for engine in engines() {
            let mut sim = Sim::new(5);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 2)));
            let d = sim.spawn(Box::new(GrowDriver {
                net: NetHandle { fabric },
                done: Vec::new(),
            }));
            sim.run();
            assert_eq!(sim.stats().counter("net.nodes_added"), 3, "{engine:?}");
            let done = &sim.actor_ref::<GrowDriver>(d).expect("driver").done;
            // Flow 0: 0.5 s alone + 1 s shared (62.5 MB left at half rate)
            // → finishes at 1.5 s; flow 1 then runs alone, finishing its
            // remaining 62.5 MB at full rate: 1.5 + 0.5 = 2.0 s.
            let t0 = done.iter().find(|(t, _)| *t == 0).unwrap().1;
            let t1 = done.iter().find(|(t, _)| *t == 1).unwrap().1;
            assert!((t0 - 1.5).abs() < 1e-6, "{engine:?} t0={t0}");
            assert!((t1 - 2.0).abs() < 1e-6, "{engine:?} t1={t1}");
        }
    }

    /// Chaos-plane primitive: a partition stalls flows (no abort, no
    /// completion) and a heal lets them finish with the stalled window
    /// added to their transfer time — identically on both engines.
    #[test]
    fn partition_stalls_and_heal_resumes() {
        struct PartitionDriver {
            net: NetHandle,
            done: Vec<(u64, f64)>,
            aborted: u32,
        }
        impl Actor for PartitionDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        // 1 s transfer through node 2; a disjoint 1 s
                        // control flow shows the partition is node-local.
                        self.net
                            .start_flow(ctx, NodeId(1), NodeId(2), 125_000_000, None, 0);
                        self.net
                            .start_flow(ctx, NodeId(3), NodeId(4), 125_000_000, None, 1);
                        ctx.after(SimDuration::from_millis(500), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        self.net.partition_node(ctx, NodeId(2));
                        ctx.after(SimDuration::from_secs(2), 2);
                    }
                    Event::Timer { tag: 2, .. } => self.net.heal_node(ctx, NodeId(2)),
                    Event::Msg { msg, .. } => {
                        if let Some(done) = msg.peek::<FlowDone>() {
                            self.done.push((done.tag, ctx.now().as_secs_f64()));
                        } else if msg.peek::<FlowAborted>().is_some() {
                            self.aborted += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        for engine in engines() {
            let mut sim = Sim::new(0);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 6)));
            let d = sim.spawn(Box::new(PartitionDriver {
                net: NetHandle { fabric },
                done: Vec::new(),
                aborted: 0,
            }));
            sim.run();
            let driver = sim.actor_ref::<PartitionDriver>(d).expect("driver");
            assert_eq!(driver.aborted, 0, "{engine:?}: partitions must not abort");
            let t0 = driver.done.iter().find(|(t, _)| *t == 0).unwrap().1;
            let t1 = driver.done.iter().find(|(t, _)| *t == 1).unwrap().1;
            // Flow 1 never crosses node 2: unaffected, finishes at 1 s.
            assert!((t1 - 1.0).abs() < 1e-6, "{engine:?} t1={t1}");
            // Flow 0: 0.5 s of progress, 2 s stalled, 0.5 s to finish.
            assert!((t0 - 3.0).abs() < 1e-6, "{engine:?} t0={t0}");
            assert_eq!(sim.stats().counter("net.partitions_healed"), 1);
            assert_eq!(sim.stats().counter("net.partitions_started"), 1);
        }
    }

    /// Degraded (gray) links re-price on both engines: halving a
    /// receiver's bandwidth mid-transfer stretches exactly the remaining
    /// bytes, and a redundant factor write is a no-op.
    #[test]
    fn degraded_bandwidth_reprices_flows() {
        struct DegradeDriver {
            net: NetHandle,
            done: Vec<(u64, f64)>,
        }
        impl Actor for DegradeDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        self.net
                            .start_flow(ctx, NodeId(1), NodeId(2), 125_000_000, None, 0);
                        ctx.after(SimDuration::from_millis(500), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        self.net.set_node_bandwidth(ctx, NodeId(2), 0.5);
                        // Same factor again: must not perturb anything.
                        self.net.set_node_bandwidth(ctx, NodeId(2), 0.5);
                    }
                    Event::Msg { msg, .. } => {
                        if let Some(done) = msg.peek::<FlowDone>() {
                            self.done.push((done.tag, ctx.now().as_secs_f64()));
                            ctx.stop();
                        }
                    }
                    _ => {}
                }
            }
        }
        for engine in engines() {
            let mut sim = Sim::new(0);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 4)));
            let d = sim.spawn(Box::new(DegradeDriver {
                net: NetHandle { fabric },
                done: Vec::new(),
            }));
            sim.run();
            let driver = sim.actor_ref::<DegradeDriver>(d).expect("driver");
            // 0.5 s at full rate, then 62.5 MB at half rate = 1 s more.
            let t0 = driver.done[0].1;
            assert!((t0 - 1.5).abs() < 1e-6, "{engine:?} t0={t0}");
            assert_eq!(sim.stats().counter("net.partitions_healed"), 0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let fp = |engine| {
            let mut sim = Sim::new(3);
            sim.enable_trace(1 << 12);
            let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 8)));
            struct D {
                net: NetHandle,
            }
            impl Actor for D {
                fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                    if matches!(ev, Event::Start) {
                        for i in 0..20u64 {
                            let s = NodeId((i % 7) as u32);
                            let d = NodeId(((i * 3 + 1) % 8) as u32);
                            self.net.start_flow(ctx, s, d, 1_000_000 * (i + 1), None, i);
                        }
                    }
                }
            }
            sim.spawn(Box::new(D {
                net: NetHandle { fabric },
            }));
            sim.run();
            sim.trace().fingerprint()
        };
        for engine in engines() {
            assert_eq!(fp(engine), fp(engine), "{engine:?}");
        }
    }

    /// Burst driver for the randomized equivalence test: starts waves of
    /// flows at scripted instants, then records every completion.
    struct WaveDriver {
        net: NetHandle,
        /// (start_ms, src, dst, bytes, cap)
        script: Vec<(u64, u32, u32, u64, Option<f64>)>,
        issued: usize,
        done: Vec<(u64, u64)>, // (tag, completion ns)
        expected: usize,
    }

    impl WaveDriver {
        fn issue_due(&mut self, ctx: &mut Ctx<'_>) {
            let now_ms = ctx.now().as_nanos() / 1_000_000;
            while self.issued < self.script.len() && self.script[self.issued].0 <= now_ms {
                let (_, s, d, b, cap) = self.script[self.issued];
                self.net
                    .start_flow(ctx, NodeId(s), NodeId(d), b, cap, self.issued as u64);
                self.issued += 1;
            }
            if self.issued < self.script.len() {
                let next = SimTime::from_nanos(self.script[self.issued].0 * 1_000_000);
                ctx.after_at(next, 100);
            }
        }
    }

    impl Actor for WaveDriver {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            match ev {
                Event::Start | Event::Timer { .. } => self.issue_due(ctx),
                Event::Msg { msg, .. } => {
                    if let Some(done) = msg.peek::<FlowDone>() {
                        self.done.push((done.tag, ctx.now().as_nanos()));
                        if self.done.len() == self.expected {
                            ctx.stop();
                        }
                    }
                }
            }
        }
    }

    /// Satellite property test at the fabric level: randomized bursts on a
    /// 12-node fabric; the incremental engine's completion times must match
    /// the reference engine's within 1e-6 s on every flow.
    #[test]
    fn engines_complete_identically_on_random_bursts() {
        for seed in 0..8u64 {
            let mut rng = Xoshiro256::seed_from_u64(0xbeef ^ seed);
            let n_flows = 40 + rng.next_below(40) as usize;
            let mut script = Vec::with_capacity(n_flows);
            let mut t_ms = 0u64;
            for _ in 0..n_flows {
                // Bursty starts: usually same instant, sometimes a gap.
                if rng.next_below(3) == 0 {
                    t_ms += rng.next_below(400);
                }
                let s = rng.next_below(12) as u32;
                let d = rng.next_below(12) as u32;
                let bytes = 1_000_000 + rng.next_below(200_000_000);
                let cap = if rng.next_below(4) == 0 {
                    Some(4.0e6 * (1 + rng.next_below(10)) as f64)
                } else {
                    None
                };
                script.push((t_ms, s, d, bytes, cap));
            }
            let run = |engine: FluidEngine| {
                let mut sim = Sim::new(seed);
                let fabric = sim.spawn(Box::new(Fabric::new(cfg_with(engine), 12)));
                let driver = sim.spawn(Box::new(WaveDriver {
                    net: NetHandle { fabric },
                    script: script.clone(),
                    issued: 0,
                    done: Vec::new(),
                    expected: n_flows,
                }));
                sim.run();
                let mut done =
                    std::mem::take(&mut sim.actor_mut::<WaveDriver>(driver).unwrap().done);
                assert_eq!(done.len(), n_flows, "{engine:?} seed {seed}: flows lost");
                done.sort_unstable();
                done
            };
            let incr = run(FluidEngine::Incremental);
            let reference = run(FluidEngine::Reference);
            for ((tag_a, t_a), (tag_b, t_b)) in incr.iter().zip(reference.iter()) {
                assert_eq!(tag_a, tag_b);
                let da = *t_a as f64 / 1e9;
                let db = *t_b as f64 / 1e9;
                assert!(
                    (da - db).abs() < 1e-6,
                    "seed {seed} tag {tag_a}: incremental={da}s reference={db}s"
                );
            }
        }
    }
}
