//! # accelmr-net — simulated cluster interconnect
//!
//! The network substrate under the distributed file system and MapReduce
//! runtime: per-node full-duplex Gigabit NICs behind a non-blocking switch,
//! per-node loopback devices, control RPCs with latency + serialization
//! cost, and bulk transfers as **max-min fair fluid flows**. Rates are
//! kept max-min fair incrementally: same-instant flow bursts coalesce into
//! one solve and only the affected connected component of the link/flow
//! sharing graph is re-priced ([`flow::MaxMinSolver`]; the per-event
//! global reference solver survives as [`flow::max_min_rates`] and
//! [`config::FluidEngine::Reference`]).
//!
//! Two modeling choices matter for reproducing the paper:
//!
//! 1. Flows accept a per-stream rate cap, which is how the measured
//!    DataNode→TaskTracker loopback ceiling (a few MB/s per stream despite a
//!    fast virtual device) enters the model.
//! 2. Node failures abort in-flight flows with an explicit notification, so
//!    the MapReduce fault-tolerance machinery above can be exercised end to
//!    end.
//!
//! ## Invariants callers rely on
//!
//! * **Burst-friendly flow starts.** All [`fabric::StartFlow`]s issued
//!   within one simulated instant are priced by a *single* max-min solve
//!   (deferred-wakeup coalescing). Protocol layers deliberately fan whole
//!   request waves out in one instant — do not stagger or serialize starts
//!   "to be gentle"; that defeats the coalescing and multiplies solver
//!   work.
//! * **Engine equivalence.** Both [`FluidEngine`]s produce flow completion
//!   times equal within float epsilon; they may differ in the event order
//!   *within* an instant, which is why golden event-stream fingerprints
//!   are pinned on [`FluidEngine::Reference`].
//! * **Dynamic membership.** The node set is no longer fixed at
//!   construction: [`fabric::EnsureNode`] grows the link tables mid-run
//!   (never re-pricing existing flows), [`fabric::AbortNode`] tears a
//!   departing node's flows down by consulting the persistent link→flows
//!   index (O(node degree), not O(all flows)), and [`NodeRegistry`] gives
//!   every handle clone a live view of who serves each node.

pub mod config;
pub mod fabric;
pub mod flow;
pub mod registry;

pub use config::{FluidEngine, NetConfig, NodeId};
pub use fabric::{
    AbortNode, EnsureNode, Fabric, FlowAborted, FlowDone, NetHandle, SetNodeBandwidth, StartFlow,
    Unicast, PARTITION_FACTOR,
};
pub use flow::{max_min_rates, FlowDemand, LinkId, LinkTable, MaxMinSolver, Route};
pub use registry::NodeRegistry;
