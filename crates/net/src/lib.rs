//! # accelmr-net — simulated cluster interconnect
//!
//! The network substrate under the distributed file system and MapReduce
//! runtime: per-node full-duplex Gigabit NICs behind a non-blocking switch,
//! per-node loopback devices, control RPCs with latency + serialization
//! cost, and bulk transfers as **max-min fair fluid flows**. Rates are
//! kept max-min fair incrementally: same-instant flow bursts coalesce into
//! one solve and only the affected connected component of the link/flow
//! sharing graph is re-priced ([`flow::MaxMinSolver`]; the per-event
//! global reference solver survives as [`flow::max_min_rates`] and
//! [`config::FluidEngine::Reference`]).
//!
//! Two modeling choices matter for reproducing the paper:
//!
//! 1. Flows accept a per-stream rate cap, which is how the measured
//!    DataNode→TaskTracker loopback ceiling (a few MB/s per stream despite a
//!    fast virtual device) enters the model.
//! 2. Node failures abort in-flight flows with an explicit notification, so
//!    the MapReduce fault-tolerance machinery above can be exercised end to
//!    end.

#![warn(missing_docs)]

pub mod config;
pub mod fabric;
pub mod flow;

pub use config::{FluidEngine, NetConfig, NodeId};
pub use fabric::{AbortNode, Fabric, FlowAborted, FlowDone, NetHandle, StartFlow, Unicast};
pub use flow::{max_min_rates, FlowDemand, LinkId, LinkTable, MaxMinSolver, Route};
