//! Network parameters.

use accelmr_des::SimDuration;

/// Identifies one machine in the cluster. Node 0 is conventionally the head
/// node (JobTracker + NameNode in the paper's setup); workers follow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The head node.
    pub const HEAD: NodeId = NodeId(0);

    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Which fluid-rate engine the fabric runs.
///
/// Both engines compute the same max-min fair allocation and produce flow
/// completion times equal within float epsilon (asserted by the
/// engine-equivalence tests and the `net_scale` bench); they differ only
/// in *how much work* each simulation event costs and, consequently, in
/// the exact event stream within a simulated instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FluidEngine {
    /// Production engine: same-instant flow starts are coalesced into one
    /// re-solve via a deferred wakeup, only the connected component of
    /// links/flows touched by a change is re-solved (allocation-free
    /// [`crate::flow::MaxMinSolver`]), and completions pop from a
    /// finish-time heap instead of an O(flows) scan.
    #[default]
    Incremental,
    /// Pre-optimization engine kept as the oracle: a full
    /// [`crate::flow::max_min_rates`] solve over *all* active flows on
    /// every flow start/finish/abort. Event-for-event identical to the
    /// original fabric — golden-trace tests and the `net_scale` bench
    /// baseline pin this mode.
    Reference,
}

/// Fabric configuration. Defaults model the paper's testbed: Gigabit
/// Ethernet NICs (125 MB/s full duplex per node) behind a non-blocking
/// switch, and a loopback device whose raw capacity is high but whose
/// *per-stream* useful rate is protocol-limited — the effect the paper
/// measured between DataNode and TaskTracker.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Per-node NIC bandwidth, each direction, bytes/second.
    pub link_bytes_per_sec: f64,
    /// Loopback device aggregate bandwidth per node, bytes/second.
    pub loopback_bytes_per_sec: f64,
    /// Fixed one-way latency of a control RPC.
    pub rpc_latency: SimDuration,
    /// Serialization rate applied to RPC payload bytes.
    pub rpc_bytes_per_sec: f64,
    /// Fluid-rate engine (see [`FluidEngine`]).
    pub fluid: FluidEngine,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link_bytes_per_sec: 125.0e6,
            loopback_bytes_per_sec: 1.5e9,
            rpc_latency: SimDuration::from_micros(200),
            rpc_bytes_per_sec: 125.0e6,
            fluid: FluidEngine::Incremental,
        }
    }
}

impl NetConfig {
    /// One-way delivery delay of a control message carrying `bytes`.
    pub fn rpc_delay(&self, bytes: u64) -> SimDuration {
        self.rpc_latency + SimDuration::from_secs_f64(bytes as f64 / self.rpc_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        assert_eq!(NodeId::HEAD.index(), 0);
        assert_eq!(NodeId(3).to_string(), "node3");
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn rpc_delay_includes_serialization() {
        let cfg = NetConfig::default();
        let d0 = cfg.rpc_delay(0);
        assert_eq!(d0, cfg.rpc_latency);
        let d = cfg.rpc_delay(125_000_000);
        assert_eq!(d.as_nanos(), cfg.rpc_latency.as_nanos() + 1_000_000_000);
    }
}
