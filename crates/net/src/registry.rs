//! Shared, mutable node → actor registry for dynamic membership.
//!
//! Deployment handles (`DfsHandle`, `MrHandle`) used to carry a frozen
//! `Arc<Vec<(NodeId, ActorId)>>` snapshot of the worker set — correct only
//! while membership is fixed at deploy. A [`NodeRegistry`] is the same
//! cheap-to-clone mapping, but *live*: every clone observes joins and
//! departures immediately, so a TaskTracker routing a read to a replica on
//! a freshly-joined node (or failing fast off a departed one) always sees
//! the current cluster. The simulation is single-threaded, so the interior
//! mutex is uncontended; entries are kept sorted by node id so every
//! iteration order is deterministic.

use std::sync::{Arc, Mutex};

use accelmr_des::ActorId;

use crate::config::NodeId;

/// Live `NodeId → ActorId` mapping shared by every handle clone.
#[derive(Clone, Debug, Default)]
pub struct NodeRegistry {
    inner: Arc<Mutex<Vec<(NodeId, ActorId)>>>,
}

impl NodeRegistry {
    /// Builds a registry from initial entries (sorted internally).
    pub fn new(mut entries: Vec<(NodeId, ActorId)>) -> Self {
        entries.sort_unstable_by_key(|&(n, _)| n);
        NodeRegistry {
            inner: Arc::new(Mutex::new(entries)),
        }
    }

    /// The actor registered for `node`, if any.
    pub fn get(&self, node: NodeId) -> Option<ActorId> {
        let v = self.inner.lock().unwrap();
        v.binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| v[i].1)
    }

    /// Registers (or replaces) the actor for `node`.
    pub fn insert(&self, node: NodeId, actor: ActorId) {
        let mut v = self.inner.lock().unwrap();
        match v.binary_search_by_key(&node, |&(n, _)| n) {
            Ok(i) => v[i].1 = actor,
            Err(i) => v.insert(i, (node, actor)),
        }
    }

    /// Removes `node`, returning its actor if it was registered.
    pub fn remove(&self, node: NodeId) -> Option<ActorId> {
        let mut v = self.inner.lock().unwrap();
        v.binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| v.remove(i).1)
    }

    /// Whether `node` is registered.
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current entries, ascending by node id.
    pub fn snapshot(&self) -> Vec<(NodeId, ActorId)> {
        self.inner.lock().unwrap().clone()
    }

    /// Currently registered node ids, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.inner.lock().unwrap().iter().map(|&(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_des::prelude::*;

    struct Noop;
    impl Actor for Noop {
        fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
    }

    #[test]
    fn registry_is_shared_and_sorted() {
        let mut sim = Sim::new(0);
        let ids: Vec<ActorId> = (0..4).map(|_| sim.spawn(Box::new(Noop))).collect();
        let r = NodeRegistry::new(vec![(NodeId(3), ids[3]), (NodeId(1), ids[1])]);
        let clone = r.clone();
        assert_eq!(r.nodes(), vec![NodeId(1), NodeId(3)]);
        clone.insert(NodeId(2), ids[2]);
        assert_eq!(r.get(NodeId(2)), Some(ids[2]));
        assert_eq!(r.nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(r.remove(NodeId(1)), Some(ids[1]));
        assert_eq!(clone.get(NodeId(1)), None);
        assert!(clone.contains(NodeId(3)));
        assert_eq!(r.len(), 2);
        // Replacement keeps one entry per node.
        r.insert(NodeId(2), ids[0]);
        assert_eq!(r.get(NodeId(2)), Some(ids[0]));
        assert_eq!(r.len(), 2);
    }
}
