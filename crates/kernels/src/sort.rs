//! Sorting kernel for the Terasort-style experiment.
//!
//! The paper's §IV-A closes with an observation on the Terabyte Sort
//! benchmark (per-node sorting rate ~5.5 MB/s dominated by data feed). To
//! reproduce that experiment we need a real sort workload: 100-byte records
//! with 10-byte keys (the classic GraySort format), a range partitioner for
//! the shuffle, an LSD radix sort for the in-node kernel, and a k-way merge
//! for the reduce side.

/// A GraySort-style record: 10 key bytes + 90 payload bytes, compressed here
/// to the key prefix (as `u64` + 2 spare bytes) and a payload seed, which is
/// enough to regenerate the full record deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortRecord {
    /// Big-endian numeric value of the first 8 key bytes (sort order).
    pub key_hi: u64,
    /// Last 2 key bytes.
    pub key_lo: u16,
    /// Seed regenerating the 90 payload bytes.
    pub payload_seed: u32,
}

impl SortRecord {
    /// Total ordering on the 10-byte key.
    #[inline]
    pub fn key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_hi
            .cmp(&other.key_hi)
            .then(self.key_lo.cmp(&other.key_lo))
    }

    /// Size of the materialized record in bytes (GraySort format).
    pub const BYTES: usize = 100;
}

/// Deterministically generates `n` records of stream `seed`, starting at
/// record index `start` (so splits can generate their own ranges).
pub fn generate_records(seed: u64, start: u64, n: usize) -> Vec<SortRecord> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let mut s = seed ^ (start + i).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let a = accelmr_des::splitmix64(&mut s);
        let b = accelmr_des::splitmix64(&mut s);
        out.push(SortRecord {
            key_hi: a,
            key_lo: (b & 0xffff) as u16,
            payload_seed: (b >> 32) as u32,
        });
    }
    out
}

/// Maps a key to one of `partitions` contiguous key ranges (the shuffle
/// partitioner). Uniform keys land uniformly.
#[inline]
pub fn range_partition(key_hi: u64, partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    ((key_hi as u128 * partitions as u128) >> 64) as usize
}

/// LSD radix sort on the 8 high key bytes (8 passes × 8 bits), stable, then
/// a cleanup pass for ties on the low 2 bytes. O(n) and allocation-reusing —
/// the shape an SPU-resident sort kernel takes.
pub fn radix_sort(records: &mut Vec<SortRecord>) {
    let n = records.len();
    if n < 2 {
        return;
    }
    let mut scratch: Vec<SortRecord> = Vec::with_capacity(n);
    // Safety-free version: use a temp vec and mem::swap per pass.
    for pass in 0..8 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for r in records.iter() {
            counts[((r.key_hi >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        scratch.clear();
        scratch.resize(
            n,
            SortRecord {
                key_hi: 0,
                key_lo: 0,
                payload_seed: 0,
            },
        );
        for r in records.iter() {
            let b = ((r.key_hi >> shift) & 0xff) as usize;
            scratch[offsets[b]] = *r;
            offsets[b] += 1;
        }
        std::mem::swap(records, &mut scratch);
    }
    // key_hi collisions are vanishingly rare with random keys, but
    // correctness must not depend on luck: fix up equal-key_hi runs.
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && records[j].key_hi == records[i].key_hi {
            j += 1;
        }
        if j - i > 1 {
            records[i..j].sort_by(|a, b| a.key_cmp(b));
        }
        i = j;
    }
}

/// Merges pre-sorted runs into one sorted output (the reduce-side merge).
pub fn merge_sorted_runs(mut runs: Vec<Vec<SortRecord>>) -> Vec<SortRecord> {
    // Binary-heap k-way merge keyed by (key, run index) for stability.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq)]
    struct Head {
        key_hi: u64,
        key_lo: u16,
        run: usize,
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key_hi
                .cmp(&other.key_hi)
                .then(self.key_lo.cmp(&other.key_lo))
                .then(self.run.cmp(&other.run))
        }
    }
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; runs.len()];
    let mut heap = BinaryHeap::new();
    for (i, run) in runs.iter().enumerate() {
        if let Some(r) = run.first() {
            heap.push(Reverse(Head {
                key_hi: r.key_hi,
                key_lo: r.key_lo,
                run: i,
            }));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(h)) = heap.pop() {
        let run = h.run;
        out.push(runs[run][cursors[run]]);
        cursors[run] += 1;
        if cursors[run] < runs[run].len() {
            let r = &runs[run][cursors[run]];
            heap.push(Reverse(Head {
                key_hi: r.key_hi,
                key_lo: r.key_lo,
                run,
            }));
        }
    }
    // Runs are consumed; drop their storage eagerly.
    runs.clear();
    out
}

/// `true` when `records` is sorted by key.
pub fn is_sorted(records: &[SortRecord]) -> bool {
    records
        .windows(2)
        .all(|w| w[0].key_cmp(&w[1]) != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sort_sorts_and_preserves_multiset() {
        let mut records = generate_records(1, 0, 10_000);
        let mut expected = records.clone();
        expected.sort_by(|a, b| a.key_cmp(b));
        radix_sort(&mut records);
        assert!(is_sorted(&records));
        assert_eq!(records, expected);
    }

    #[test]
    fn radix_sort_handles_ties_on_low_bytes() {
        let mut records = vec![
            SortRecord {
                key_hi: 5,
                key_lo: 9,
                payload_seed: 1,
            },
            SortRecord {
                key_hi: 5,
                key_lo: 2,
                payload_seed: 2,
            },
            SortRecord {
                key_hi: 1,
                key_lo: 7,
                payload_seed: 3,
            },
            SortRecord {
                key_hi: 5,
                key_lo: 5,
                payload_seed: 4,
            },
        ];
        radix_sort(&mut records);
        assert!(is_sorted(&records));
        assert_eq!(records[0].key_hi, 1);
        assert_eq!(
            records[1..].iter().map(|r| r.key_lo).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
    }

    #[test]
    fn radix_sort_trivial_sizes() {
        let mut empty: Vec<SortRecord> = vec![];
        radix_sort(&mut empty);
        assert!(empty.is_empty());
        let mut one = generate_records(2, 0, 1);
        radix_sort(&mut one);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn generation_is_deterministic_and_range_consistent() {
        let all = generate_records(3, 0, 100);
        let head = generate_records(3, 0, 40);
        let tail = generate_records(3, 40, 60);
        assert_eq!(&all[..40], &head[..]);
        assert_eq!(&all[40..], &tail[..]);
    }

    #[test]
    fn range_partition_is_monotone_and_bounded() {
        let parts = 7;
        let mut last = 0;
        for k in (0..100).map(|i| i * (u64::MAX / 100)) {
            let p = range_partition(k, parts);
            assert!(p < parts);
            assert!(p >= last);
            last = p;
        }
        assert_eq!(range_partition(0, parts), 0);
        assert_eq!(range_partition(u64::MAX, parts), parts - 1);
    }

    #[test]
    fn range_partition_roughly_uniform() {
        let parts = 4;
        let mut counts = vec![0usize; parts];
        for r in generate_records(11, 0, 8_000) {
            counts[range_partition(r.key_hi, parts)] += 1;
        }
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn merge_produces_global_order() {
        let mut runs = Vec::new();
        for s in 0..5u64 {
            let mut run = generate_records(s + 20, 0, 500);
            radix_sort(&mut run);
            runs.push(run);
        }
        let merged = merge_sorted_runs(runs);
        assert_eq!(merged.len(), 2_500);
        assert!(is_sorted(&merged));
    }

    #[test]
    fn merge_of_empty_runs() {
        assert!(merge_sorted_runs(vec![]).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]]).is_empty());
    }
}
