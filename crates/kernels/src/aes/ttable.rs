//! T-table implementation of AES-128.
//!
//! Classic 32-bit software AES: SubBytes, ShiftRows and MixColumns for one
//! round collapse into four table lookups and three XORs per output word.
//! This is the shape of every tuned uniprocessor AES of the paper's era and
//! is what the four-lane SPU-style kernel widens.

use super::tables::{SBOX, TE0, TE1, TE2, TE3};
use super::Aes128;

#[inline]
fn load_state(block: &[u8; 16]) -> [u32; 4] {
    [
        u32::from_be_bytes(block[0..4].try_into().unwrap()),
        u32::from_be_bytes(block[4..8].try_into().unwrap()),
        u32::from_be_bytes(block[8..12].try_into().unwrap()),
        u32::from_be_bytes(block[12..16].try_into().unwrap()),
    ]
}

#[inline]
fn store_state(state: [u32; 4], block: &mut [u8; 16]) {
    block[0..4].copy_from_slice(&state[0].to_be_bytes());
    block[4..8].copy_from_slice(&state[1].to_be_bytes());
    block[8..12].copy_from_slice(&state[2].to_be_bytes());
    block[12..16].copy_from_slice(&state[3].to_be_bytes());
}

/// One full round for column `c`: the four taps walk the ShiftRows diagonal.
#[inline(always)]
fn round_word(s: &[u32; 4], c: usize, rk: u32) -> u32 {
    TE0[(s[c] >> 24) as usize]
        ^ TE1[((s[(c + 1) & 3] >> 16) & 0xff) as usize]
        ^ TE2[((s[(c + 2) & 3] >> 8) & 0xff) as usize]
        ^ TE3[(s[(c + 3) & 3] & 0xff) as usize]
        ^ rk
}

/// Final round (no MixColumns): plain S-box on the same diagonal taps.
#[inline(always)]
fn final_word(s: &[u32; 4], c: usize, rk: u32) -> u32 {
    ((SBOX[(s[c] >> 24) as usize] as u32) << 24)
        ^ ((SBOX[((s[(c + 1) & 3] >> 16) & 0xff) as usize] as u32) << 16)
        ^ ((SBOX[((s[(c + 2) & 3] >> 8) & 0xff) as usize] as u32) << 8)
        ^ (SBOX[(s[(c + 3) & 3] & 0xff) as usize] as u32)
        ^ rk
}

/// Encrypts one block in place.
pub fn encrypt_block(key: &Aes128, block: &mut [u8; 16]) {
    let rk = &key.rk_words;
    let mut s = load_state(block);
    for c in 0..4 {
        s[c] ^= rk[c];
    }
    for r in 1..10 {
        let t = [
            round_word(&s, 0, rk[4 * r]),
            round_word(&s, 1, rk[4 * r + 1]),
            round_word(&s, 2, rk[4 * r + 2]),
            round_word(&s, 3, rk[4 * r + 3]),
        ];
        s = t;
    }
    let out = [
        final_word(&s, 0, rk[40]),
        final_word(&s, 1, rk[41]),
        final_word(&s, 2, rk[42]),
        final_word(&s, 3, rk[43]),
    ];
    store_state(out, block);
}

/// Encrypts a whole buffer of 16-byte blocks in place.
pub fn encrypt_blocks(key: &Aes128, data: &mut [u8]) {
    debug_assert_eq!(data.len() % 16, 0);
    for chunk in data.chunks_exact_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        encrypt_block(key, block);
    }
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;

    #[test]
    fn matches_scalar_on_many_blocks() {
        let key = Aes128::new(b"ttable-test-key!");
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..64 {
            let mut block = [0u8; 16];
            for b in block.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 56) as u8;
            }
            let mut a = block;
            let mut b = block;
            encrypt_block(&key, &mut a);
            scalar::encrypt_block(&key, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn state_load_store_round_trip() {
        let block: [u8; 16] = core::array::from_fn(|i| i as u8 * 3);
        let mut out = [0u8; 16];
        store_state(load_state(&block), &mut out);
        assert_eq!(block, out);
    }
}
