//! Byte-oriented reference implementation of AES-128.
//!
//! Deliberately written the way a textbook (or a JITted `javax.crypto`
//! software fallback) would: per-byte S-box lookups, explicit ShiftRows and
//! MixColumns. This is the workspace's correctness reference; the tuned
//! implementations are tested for equality against it.

use super::tables::{gf_mul, INV_SBOX, SBOX};
use super::Aes128;

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

/// State layout is FIPS column-major: byte `i` of the input sits at row
/// `i % 4`, column `i / 4`; ShiftRows rotates row `r` left by `r`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

/// Encrypts one block in place.
pub fn encrypt_block(key: &Aes128, block: &mut [u8; 16]) {
    add_round_key(block, key.round_key(0));
    for r in 1..10 {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, key.round_key(r));
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, key.round_key(10));
}

/// Decrypts one block in place (straightforward inverse cipher).
pub fn decrypt_block(key: &Aes128, block: &mut [u8; 16]) {
    add_round_key(block, key.round_key(10));
    for r in (1..10).rev() {
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, key.round_key(r));
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, key.round_key(0));
}

/// Encrypts a whole buffer of 16-byte blocks in place (ECB layering is done
/// by [`super::modes`]).
pub fn encrypt_blocks(key: &Aes128, data: &mut [u8]) {
    debug_assert_eq!(data.len() % 16, 0);
    for chunk in data.chunks_exact_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        encrypt_block(key, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_rows_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn shift_rows_layout() {
        // Row 1 (bytes 1,5,9,13) rotates left by one.
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        shift_rows(&mut s);
        assert_eq!([s[1], s[5], s[9], s[13]], [5, 9, 13, 1]);
        // Row 0 untouched.
        assert_eq!([s[0], s[4], s[8], s[12]], [0, 4, 8, 12]);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(17).wrapping_add(3));
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_fips_example() {
        // FIPS-197 §5.1.3 column example: db 13 53 45 -> 8e 4d a1 bc.
        let mut s = [0xdb, 0x13, 0x53, 0x45, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        mix_columns(&mut s);
        assert_eq!(&s[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn bulk_matches_single() {
        let key = Aes128::new(b"0123456789abcdef");
        let mut buf = [0u8; 48];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut expect = buf;
        for chunk in expect.chunks_exact_mut(16) {
            encrypt_block(&key, chunk.try_into().unwrap());
        }
        encrypt_blocks(&key, &mut buf);
        assert_eq!(buf, expect);
    }
}
