//! AES-128 block cipher, implemented three ways.
//!
//! The paper runs the same encryption kernel on four engines (Cell SPUs with
//! SIMD, the Cell-MapReduce framework, Java on the Cell PPE, Java on a
//! Power6). We mirror that with three real implementations that produce
//! identical bytes but have very different instruction-level structure:
//!
//! * [`scalar`] — byte-oriented textbook cipher, the stand-in for the
//!   interpreted/JIT "Java" kernel;
//! * [`ttable`] — 32-bit T-table cipher, the tuned uniprocessor kernel;
//! * [`lanes`] — four blocks in flight across lanes, structured like the
//!   SPU SIMD kernel (and written so the autovectorizer can keep it wide).
//!
//! All three are verified against FIPS-197 / NIST SP 800-38A vectors and
//! against each other by property tests.

pub mod lanes;
pub mod modes;
pub mod scalar;
pub mod tables;
pub mod ttable;

use tables::{RCON, SBOX};

/// Expanded AES-128 key: 11 round keys in byte form plus the word form the
/// T-table and lane implementations consume.
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys as bytes, rk[16*r..16*r+16] for round r.
    pub(crate) rk_bytes: [u8; 176],
    /// Round keys as big-endian words (4 per round).
    pub(crate) rk_words: [u32; 44],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expands a 128-bit cipher key (FIPS-197 §5.2).
    pub fn new(key: &[u8; 16]) -> Self {
        let mut rk = [0u8; 176];
        rk[..16].copy_from_slice(key);
        for i in 4..44 {
            let mut temp = [
                rk[4 * (i - 1)],
                rk[4 * (i - 1) + 1],
                rk[4 * (i - 1) + 2],
                rk[4 * (i - 1) + 3],
            ];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                rk[4 * i + j] = rk[4 * (i - 4) + j] ^ temp[j];
            }
        }
        let mut rk_words = [0u32; 44];
        for (i, w) in rk_words.iter_mut().enumerate() {
            *w = u32::from_be_bytes([rk[4 * i], rk[4 * i + 1], rk[4 * i + 2], rk[4 * i + 3]]);
        }
        Aes128 {
            rk_bytes: rk,
            rk_words,
        }
    }

    /// Round key bytes for round `r` (0..=10).
    #[inline]
    pub(crate) fn round_key(&self, r: usize) -> &[u8] {
        &self.rk_bytes[16 * r..16 * r + 16]
    }
}

/// Which implementation executes a bulk operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AesImpl {
    /// Byte-oriented reference cipher ("Java" stand-in).
    Scalar,
    /// 32-bit T-table cipher.
    TTable,
    /// Four-lane SIMD-style cipher (SPU stand-in).
    Lanes4,
}

impl AesImpl {
    /// All implementations, for equivalence sweeps in tests/benches.
    pub const ALL: [AesImpl; 3] = [AesImpl::Scalar, AesImpl::TTable, AesImpl::Lanes4];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AesImpl::Scalar => "scalar",
            AesImpl::TTable => "ttable",
            AesImpl::Lanes4 => "lanes4",
        }
    }
}

/// Encrypts one 16-byte block in place with the chosen implementation.
pub fn encrypt_block(key: &Aes128, imp: AesImpl, block: &mut [u8; 16]) {
    match imp {
        AesImpl::Scalar => scalar::encrypt_block(key, block),
        AesImpl::TTable => ttable::encrypt_block(key, block),
        AesImpl::Lanes4 => {
            let mut quad = [0u8; 64];
            quad[..16].copy_from_slice(block);
            lanes::encrypt_blocks4(key, &mut quad);
            block.copy_from_slice(&quad[..16]);
        }
    }
}

/// Decrypts one 16-byte block in place (scalar inverse cipher; decryption is
/// only used for verification, never on the simulated hot path).
pub fn decrypt_block(key: &Aes128, block: &mut [u8; 16]) {
    scalar::decrypt_block(key, block);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fips_key() -> Aes128 {
        Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
    }

    #[test]
    fn key_expansion_matches_fips_appendix_a() {
        let k = fips_key();
        // w[4] and w[43] from FIPS-197 Appendix A.1.
        assert_eq!(k.rk_words[4], 0xa0fafe17);
        assert_eq!(k.rk_words[5], 0x88542cb1);
        assert_eq!(k.rk_words[43], 0xb6630ca6);
    }

    #[test]
    fn fips_appendix_b_vector_all_impls() {
        let key = Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        for imp in AesImpl::ALL {
            let mut b = pt;
            encrypt_block(&key, imp, &mut b);
            assert_eq!(b, ct, "impl {}", imp.name());
        }
    }

    #[test]
    fn sp800_38a_ecb_vector() {
        let key = fips_key();
        let pt: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let ct: [u8; 16] = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        for imp in AesImpl::ALL {
            let mut b = pt;
            encrypt_block(&key, imp, &mut b);
            assert_eq!(b, ct, "impl {}", imp.name());
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let key = fips_key();
        let mut block = *b"accelerated mapr";
        let original = block;
        encrypt_block(&key, AesImpl::Scalar, &mut block);
        assert_ne!(block, original);
        decrypt_block(&key, &mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = fips_key();
        assert_eq!(format!("{key:?}"), "Aes128 { .. }");
    }
}
