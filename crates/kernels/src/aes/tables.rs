//! AES lookup tables, generated at compile time.
//!
//! Rather than pasting 256-entry literals (easy to typo, hard to review),
//! every table is derived by `const fn` from first principles: the S-box is
//! the GF(2^8) multiplicative inverse followed by the FIPS-197 affine
//! transform, and the encryption T-tables pack the combined
//! SubBytes+MixColumns contribution of one state byte.

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
pub const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), via a^254.
const fn gf_inv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128) computed by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    // exponent 254 = 0b11111110
    let mut exp = 254u16;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    t
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[sbox[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// The AES S-box.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse S-box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

/// Round constants for AES-128 key expansion.
pub const RCON: [u8; 10] = {
    let mut r = [0u8; 10];
    let mut v = 1u8;
    let mut i = 0;
    while i < 10 {
        r[i] = v;
        v = gf_mul(v, 2);
        i += 1;
    }
    r
};

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        // Column contribution of byte in row 0: (2s, s, s, 3s)^T, big-endian.
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

/// Encryption T-table for row 0 (others are byte rotations of this one).
pub const TE0: [u32; 256] = build_te0();

const fn rot_table(src: &[u32; 256], by: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = src[i].rotate_right(by);
        i += 1;
    }
    t
}

/// Encryption T-table for row 1.
pub const TE1: [u32; 256] = rot_table(&TE0, 8);
/// Encryption T-table for row 2.
pub const TE2: [u32; 256] = rot_table(&TE0, 16);
/// Encryption T-table for row 3.
pub const TE3: [u32; 256] = rot_table(&TE0, 24);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        // Spot values from FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0x9a], 0xb8);
    }

    #[test]
    fn inv_sbox_inverts() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
            assert_eq!(SBOX[INV_SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn rcon_matches_fips() {
        assert_eq!(
            RCON,
            [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36]
        );
    }

    #[test]
    fn gf_mul_reference_cases() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example).
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0, 0xab), 0);
        assert_eq!(gf_mul(1, 0xab), 0xab);
    }

    #[test]
    fn gf_inv_property() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn te_tables_consistent_with_sbox() {
        for i in 0..256 {
            let s = SBOX[i];
            let expect = ((gf_mul(s, 2) as u32) << 24)
                | ((s as u32) << 16)
                | ((s as u32) << 8)
                | gf_mul(s, 3) as u32;
            assert_eq!(TE0[i], expect);
            assert_eq!(TE1[i], expect.rotate_right(8));
            assert_eq!(TE2[i], expect.rotate_right(16));
            assert_eq!(TE3[i], expect.rotate_right(24));
        }
    }
}
