//! Block cipher modes over the AES-128 core.
//!
//! The paper's workload is bulk encryption of a large working set; we provide
//! ECB (what a raw per-block kernel does) and CTR (what a deployment would
//! actually use, and what the examples run) for every implementation.

use super::{lanes, scalar, ttable, Aes128, AesImpl};

/// Encrypts `data` in place in ECB mode. `data.len()` must be a multiple of
/// 16; the caller (record framing) guarantees block alignment exactly like
/// the paper's 4 KB SPU blocks do.
pub fn ecb_encrypt(key: &Aes128, imp: AesImpl, data: &mut [u8]) {
    assert_eq!(
        data.len() % 16,
        0,
        "ECB requires whole blocks, got {} bytes",
        data.len()
    );
    match imp {
        AesImpl::Scalar => scalar::encrypt_blocks(key, data),
        AesImpl::TTable => ttable::encrypt_blocks(key, data),
        AesImpl::Lanes4 => lanes::encrypt_blocks(key, data),
    }
}

/// Decrypts an ECB buffer in place (verification paths only).
pub fn ecb_decrypt(key: &Aes128, data: &mut [u8]) {
    assert_eq!(data.len() % 16, 0);
    for chunk in data.chunks_exact_mut(16) {
        scalar::decrypt_block(key, chunk.try_into().unwrap());
    }
}

/// CTR keystream transform: encrypts or decrypts (the operation is its own
/// inverse). `nonce` seeds the upper 8 bytes of the counter block;
/// `initial_block` is the starting block counter, letting independent
/// workers encrypt disjoint ranges of one logical stream — this is how
/// split-level parallelism stays byte-compatible with a serial encryption.
pub fn ctr_xor(key: &Aes128, imp: AesImpl, nonce: u64, initial_block: u64, data: &mut [u8]) {
    let mut block_idx = initial_block;
    let mut chunks = data.chunks_exact_mut(16);
    for chunk in &mut chunks {
        let ks = keystream_block(key, imp, nonce, block_idx);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        block_idx = block_idx.wrapping_add(1);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let ks = keystream_block(key, imp, nonce, block_idx);
        for (d, k) in tail.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

#[inline]
fn keystream_block(key: &Aes128, imp: AesImpl, nonce: u64, block_idx: u64) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..8].copy_from_slice(&nonce.to_be_bytes());
    block[8..].copy_from_slice(&block_idx.to_be_bytes());
    super::encrypt_block(key, imp, &mut block);
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Aes128 {
        Aes128::new(b"modes-test-key!!")
    }

    #[test]
    fn ecb_impls_agree() {
        let k = key();
        let mut bufs: Vec<Vec<u8>> = AesImpl::ALL
            .iter()
            .map(|_| (0..160u8).collect::<Vec<u8>>())
            .collect();
        for (imp, buf) in AesImpl::ALL.iter().zip(bufs.iter_mut()) {
            ecb_encrypt(&k, *imp, buf);
        }
        assert_eq!(bufs[0], bufs[1]);
        assert_eq!(bufs[1], bufs[2]);
    }

    #[test]
    fn ecb_round_trip() {
        let k = key();
        let mut buf: Vec<u8> = (0..96u8).collect();
        let orig = buf.clone();
        ecb_encrypt(&k, AesImpl::Lanes4, &mut buf);
        assert_ne!(buf, orig);
        ecb_decrypt(&k, &mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn ecb_rejects_partial_blocks() {
        let k = key();
        let mut buf = vec![0u8; 17];
        ecb_encrypt(&k, AesImpl::Scalar, &mut buf);
    }

    #[test]
    fn ctr_is_self_inverse_including_tails() {
        let k = key();
        for len in [0usize, 1, 15, 16, 17, 64, 100] {
            let mut buf: Vec<u8> = (0..len as u8).collect();
            let orig = buf.clone();
            ctr_xor(&k, AesImpl::TTable, 42, 0, &mut buf);
            if len > 0 {
                assert_ne!(buf, orig, "len={len}");
            }
            ctr_xor(&k, AesImpl::TTable, 42, 0, &mut buf);
            assert_eq!(buf, orig, "len={len}");
        }
    }

    #[test]
    fn ctr_split_ranges_match_serial() {
        // Encrypting [0..64) then [64..128) with the right initial block
        // counters must equal a single serial pass: this is the property the
        // distributed encryption job relies on.
        let k = key();
        let mut serial: Vec<u8> = (0..128).map(|i| i as u8).collect();
        ctr_xor(&k, AesImpl::Scalar, 7, 0, &mut serial);

        let mut split: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let (a, b) = split.split_at_mut(64);
        ctr_xor(&k, AesImpl::Lanes4, 7, 0, a);
        ctr_xor(&k, AesImpl::Lanes4, 7, 4, b); // 64 bytes = 4 blocks
        assert_eq!(serial, split);
    }

    #[test]
    fn sp800_38a_ctr_vector() {
        // NIST SP 800-38A F.5.1 CTR-AES128, first block.
        let k = Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let mut data = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        // Counter block f0f1f2f3 f4f5f6f7 f8f9fafb fcfdfeff.
        let nonce = 0xf0f1f2f3f4f5f6f7u64;
        let initial = 0xf8f9fafbfcfdfeffu64;
        ctr_xor(&k, AesImpl::Scalar, nonce, initial, &mut data);
        assert_eq!(
            data,
            [
                0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
                0xb6, 0xce
            ]
        );
    }
}
