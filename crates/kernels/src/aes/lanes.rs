//! Four-lane AES-128: the SPU SIMD kernel stand-in.
//!
//! A Cell SPU encrypts four independent blocks per instruction stream by
//! keeping one state word of each block in one 128-bit vector register.
//! We model the identical structure with `[u32; 4]` lanes and straight-line
//! lane loops — exactly the layout LLVM's autovectorizer turns into SIMD on
//! the host, and byte-identical in output to the scalar cipher.

use super::tables::{SBOX, TE0, TE1, TE2, TE3};
use super::Aes128;

type Vec4 = [u32; 4];

#[inline(always)]
fn splat(x: u32) -> Vec4 {
    [x; 4]
}

#[inline(always)]
fn xor4(a: Vec4, b: Vec4) -> Vec4 {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

/// Gathers T-table entries for each lane. Table lookups are the one step a
/// real SPU does with shuffle-based byte slicing; a gather loop preserves
/// the data flow.
#[inline(always)]
fn gather(table: &[u32; 256], idx: Vec4) -> Vec4 {
    [
        table[(idx[0] & 0xff) as usize],
        table[(idx[1] & 0xff) as usize],
        table[(idx[2] & 0xff) as usize],
        table[(idx[3] & 0xff) as usize],
    ]
}

#[inline(always)]
fn shr(v: Vec4, by: u32) -> Vec4 {
    [v[0] >> by, v[1] >> by, v[2] >> by, v[3] >> by]
}

/// Encrypts exactly four blocks (64 bytes) in place.
// Index-based loops keep the lane/column transpose legible.
#[allow(clippy::needless_range_loop)]
pub fn encrypt_blocks4(key: &Aes128, quad: &mut [u8; 64]) {
    let rk = &key.rk_words;

    // Transpose: state word c of lane l comes from block l bytes 4c..4c+4.
    let mut s: [Vec4; 4] = [[0; 4]; 4];
    for l in 0..4 {
        for c in 0..4 {
            let off = 16 * l + 4 * c;
            s[c][l] = u32::from_be_bytes(quad[off..off + 4].try_into().unwrap());
        }
    }

    for c in 0..4 {
        s[c] = xor4(s[c], splat(rk[c]));
    }

    for r in 1..10 {
        let mut t: [Vec4; 4] = [[0; 4]; 4];
        for c in 0..4 {
            let w = xor4(
                xor4(
                    gather(&TE0, shr(s[c], 24)),
                    gather(&TE1, shr(s[(c + 1) & 3], 16)),
                ),
                xor4(
                    gather(&TE2, shr(s[(c + 2) & 3], 8)),
                    gather(&TE3, s[(c + 3) & 3]),
                ),
            );
            t[c] = xor4(w, splat(rk[4 * r + c]));
        }
        s = t;
    }

    // Final round: S-box bytes reassembled per lane.
    let mut out: [Vec4; 4] = [[0; 4]; 4];
    for c in 0..4 {
        for l in 0..4 {
            let b0 = SBOX[(s[c][l] >> 24) as usize] as u32;
            let b1 = SBOX[((s[(c + 1) & 3][l] >> 16) & 0xff) as usize] as u32;
            let b2 = SBOX[((s[(c + 2) & 3][l] >> 8) & 0xff) as usize] as u32;
            let b3 = SBOX[(s[(c + 3) & 3][l] & 0xff) as usize] as u32;
            out[c][l] = ((b0 << 24) | (b1 << 16) | (b2 << 8) | b3) ^ rk[40 + c];
        }
    }

    for l in 0..4 {
        for c in 0..4 {
            let off = 16 * l + 4 * c;
            quad[off..off + 4].copy_from_slice(&out[c][l].to_be_bytes());
        }
    }
}

/// Encrypts a buffer of 16-byte blocks: full quads go through the four-lane
/// path, the `<64`-byte tail falls back to the T-table cipher (same bytes).
pub fn encrypt_blocks(key: &Aes128, data: &mut [u8]) {
    debug_assert_eq!(data.len() % 16, 0);
    let mut chunks = data.chunks_exact_mut(64);
    for quad in &mut chunks {
        encrypt_blocks4(key, quad.try_into().unwrap());
    }
    super::ttable::encrypt_blocks(key, chunks.into_remainder());
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;

    #[test]
    fn quad_matches_scalar() {
        let key = Aes128::new(b"lanes-test-key!!");
        let mut quad = [0u8; 64];
        for (i, b) in quad.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut expect = quad;
        for chunk in expect.chunks_exact_mut(16) {
            scalar::encrypt_block(&key, chunk.try_into().unwrap());
        }
        encrypt_blocks4(&key, &mut quad);
        assert_eq!(quad, expect);
    }

    #[test]
    fn bulk_handles_non_quad_tails() {
        let key = Aes128::new(b"lanes-test-key!!");
        for blocks in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let mut buf = vec![0u8; 16 * blocks];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(101).wrapping_add(7);
            }
            let mut expect = buf.clone();
            scalar::encrypt_blocks(&key, &mut expect);
            encrypt_blocks(&key, &mut buf);
            assert_eq!(buf, expect, "blocks={blocks}");
        }
    }
}
