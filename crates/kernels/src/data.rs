//! Deterministic synthetic data and order-independent checksums.
//!
//! The distributed experiments move up to 120 GB of *virtual* data; tests
//! and small experiments materialize real bytes. Both views must agree, so
//! content is defined as a pure function of `(seed, absolute offset)`: any
//! component can materialize any byte range of a file independently and get
//! the same bytes — which is what lets integration tests verify ciphertext
//! produced through the full simulated stack against a locally computed
//! reference.

use accelmr_des::splitmix64;

/// Fills `buf` with the canonical content of stream `seed` starting at
/// absolute byte `offset`. Byte `i` of a stream is byte `i % 8` of
/// `splitmix64(seed ⊕ mix(i / 8))`.
pub fn fill_deterministic(seed: u64, offset: u64, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let mut pos = 0usize;
    let mut abs = offset;
    // Leading partial word.
    let lead = (abs % 8) as usize;
    if lead != 0 {
        let w = word_at(seed, abs / 8);
        let take = (8 - lead).min(buf.len());
        buf[..take].copy_from_slice(&w.to_le_bytes()[lead..lead + take]);
        pos += take;
        abs += take as u64;
    }
    // Whole words.
    while pos + 8 <= buf.len() {
        let w = word_at(seed, abs / 8);
        buf[pos..pos + 8].copy_from_slice(&w.to_le_bytes());
        pos += 8;
        abs += 8;
    }
    // Trailing partial word.
    if pos < buf.len() {
        let w = word_at(seed, abs / 8);
        let take = buf.len() - pos;
        buf[pos..].copy_from_slice(&w.to_le_bytes()[..take]);
    }
}

#[inline]
fn word_at(seed: u64, word_idx: u64) -> u64 {
    let mut s = seed ^ word_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// FNV-1a 64-bit checksum of a byte slice.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Order-independent accumulator for distributed verification: per-record
/// checksums are mixed then wrapping-added, so any processing order (or
/// re-execution that replays a record's identical output) yields the same
/// digest. Detects corruption and *missing* records; pair with a record
/// count to detect duplicates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnorderedDigest {
    acc: u64,
    count: u64,
}

impl UnorderedDigest {
    /// Empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record digest in (commutative).
    pub fn add(&mut self, record_checksum: u64) {
        let mut s = record_checksum;
        self.acc = self.acc.wrapping_add(splitmix64(&mut s));
        self.count += 1;
    }

    /// Merges another digest in (commutative, associative).
    pub fn merge(&mut self, other: UnorderedDigest) {
        self.acc = self.acc.wrapping_add(other.acc);
        self.count += other.count;
    }

    /// `(digest, record count)`.
    pub fn finish(&self) -> (u64, u64) {
        (self.acc, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_offset_consistent() {
        // Materializing [0, 64) in one call must equal stitching arbitrary
        // sub-ranges.
        let mut whole = [0u8; 64];
        fill_deterministic(42, 0, &mut whole);
        for split in [1usize, 3, 8, 13, 32, 63] {
            let mut a = vec![0u8; split];
            let mut b = vec![0u8; 64 - split];
            fill_deterministic(42, 0, &mut a);
            fill_deterministic(42, split as u64, &mut b);
            let stitched: Vec<u8> = a.into_iter().chain(b).collect();
            assert_eq!(stitched, whole.to_vec(), "split={split}");
        }
    }

    #[test]
    fn fill_unaligned_offsets() {
        let mut whole = [0u8; 40];
        fill_deterministic(7, 100, &mut whole);
        let mut tail = [0u8; 37];
        fill_deterministic(7, 103, &mut tail);
        assert_eq!(&whole[3..], &tail[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        fill_deterministic(1, 0, &mut a);
        fill_deterministic(2, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_fill_is_noop() {
        fill_deterministic(1, 5, &mut []);
    }

    #[test]
    fn checksum_known_value_and_sensitivity() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(checksum(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn unordered_digest_is_order_independent() {
        let parts = [checksum(b"r0"), checksum(b"r1"), checksum(b"r2")];
        let mut fwd = UnorderedDigest::new();
        for p in parts {
            fwd.add(p);
        }
        let mut rev = UnorderedDigest::new();
        for p in parts.iter().rev() {
            rev.add(*p);
        }
        assert_eq!(fwd.finish(), rev.finish());
    }

    #[test]
    fn unordered_digest_detects_changes_and_counts() {
        let mut a = UnorderedDigest::new();
        a.add(checksum(b"x"));
        let mut b = UnorderedDigest::new();
        b.add(checksum(b"y"));
        assert_ne!(a.finish().0, b.finish().0);

        // Duplicate record: digest differs AND count differs.
        let mut c = a;
        c.add(checksum(b"x"));
        assert_ne!(a.finish(), c.finish());
        assert_eq!(c.finish().1, 2);
    }

    #[test]
    fn merge_matches_sequential_adds() {
        let mut lhs = UnorderedDigest::new();
        lhs.add(1);
        lhs.add(2);
        let mut rhs = UnorderedDigest::new();
        rhs.add(3);
        lhs.merge(rhs);

        let mut all = UnorderedDigest::new();
        for p in [1, 2, 3] {
            all.add(p);
        }
        assert_eq!(lhs.finish(), all.finish());
    }
}
