//! The calibrated engine cost model — single source of truth.
//!
//! Every timing decision in the workspace that depends on "how fast does
//! engine E run kernel K" reads this table. The constants are calibrated to
//! the paper's own figures (see DESIGN.md "Calibration table"):
//!
//! * Figure 2: one Cell ≈ 700 MB/s AES, one Power6 core ≈ 45 MB/s, the Cell
//!   PPE Java kernel ≈ 11 MB/s.
//! * Figure 6: the SPU Pi kernel sits ~1 order above Java-on-Power6 once
//!   start-up amortizes, and more above Java-on-PPE.
//! * Figures 7/8: distributed task JVMs run warmer than the single-shot
//!   harness of Figure 6 (both PPE SMT threads + settled JIT); the paper's
//!   absolute rates are not mutually consistent between those experiments,
//!   so the task-JVM engine is calibrated separately and the deviation is
//!   recorded in EXPERIMENTS.md.

use accelmr_des::SimDuration;

/// An execution engine the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// One SPU running the SIMD kernel (per-SPE rate; a Cell has 8).
    SpeSimd,
    /// Single-threaded Java kernel on the Cell PPE (Figure 2/6 harness).
    JavaPpe,
    /// Java map task on the PPE inside a distributed task JVM (both SMT
    /// threads, warmed JIT) — Figures 4/5/7/8.
    JavaPpeTask,
    /// Single-threaded Java kernel on one 4.0 GHz Power6 core.
    JavaPower6,
}

impl Engine {
    /// All engines, for sweep-style tests and benches.
    pub const ALL: [Engine; 4] = [
        Engine::SpeSimd,
        Engine::JavaPpe,
        Engine::JavaPpeTask,
        Engine::JavaPower6,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Engine::SpeSimd => "Cell BE (SPU)",
            Engine::JavaPpe => "PPC (Java)",
            Engine::JavaPpeTask => "PPC task JVM",
            Engine::JavaPower6 => "Power 6 (Java)",
        }
    }
}

/// Per-engine unit costs. All rates are *per execution context* (one SPU,
/// one JVM thread-set); chip-level aggregation is the caller's job.
#[derive(Clone, Copy, Debug)]
pub struct EngineCost {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// AES-128 encryption cost, cycles per byte.
    pub aes_cycles_per_byte: f64,
    /// Monte Carlo Pi cost, cycles per sample.
    pub pi_cycles_per_sample: f64,
    /// Sort kernel cost, cycles per record byte (radix pass amortized).
    pub sort_cycles_per_byte: f64,
    /// Plain memcpy bandwidth on this engine's general-purpose core, B/s.
    pub memcpy_bytes_per_sec: f64,
}

const SPE_SIMD: EngineCost = EngineCost {
    clock_hz: 3.2e9,
    aes_cycles_per_byte: 36.6,   // 8 SPEs => ~700 MB/s per Cell (Fig. 2)
    pi_cycles_per_sample: 256.0, // 8 SPEs => ~1e8 samples/s per Cell
    sort_cycles_per_byte: 8.0,
    memcpy_bytes_per_sec: 8.0e9, // LS-resident copies ride the EIB
};

const JAVA_PPE: EngineCost = EngineCost {
    clock_hz: 3.2e9,
    aes_cycles_per_byte: 290.0,     // ~11 MB/s (Fig. 2 "PPC")
    pi_cycles_per_sample: 16_000.0, // ~2e5 samples/s (Fig. 6 "PPC")
    sort_cycles_per_byte: 60.0,
    memcpy_bytes_per_sec: 1.6e9,
};

const JAVA_PPE_TASK: EngineCost = EngineCost {
    clock_hz: 3.2e9,
    aes_cycles_per_byte: 160.0,    // ~20 MB/s with both SMT threads
    pi_cycles_per_sample: 3_200.0, // ~1e6 samples/s (Figs. 7/8 Java mapper)
    sort_cycles_per_byte: 40.0,
    memcpy_bytes_per_sec: 1.6e9,
};

const JAVA_POWER6: EngineCost = EngineCost {
    clock_hz: 4.0e9,
    aes_cycles_per_byte: 89.0,     // ~45 MB/s (Fig. 2 "Power 6")
    pi_cycles_per_sample: 4_000.0, // ~1e6 samples/s (Fig. 6 "Power 6")
    sort_cycles_per_byte: 30.0,
    memcpy_bytes_per_sec: 4.0e9,
};

/// Looks up the cost table for an engine.
pub const fn cost(engine: Engine) -> &'static EngineCost {
    match engine {
        Engine::SpeSimd => &SPE_SIMD,
        Engine::JavaPpe => &JAVA_PPE,
        Engine::JavaPpeTask => &JAVA_PPE_TASK,
        Engine::JavaPower6 => &JAVA_POWER6,
    }
}

/// Converts a cycle count on `engine` to simulated time.
#[inline]
pub fn cycles_to_duration(engine: Engine, cycles: f64) -> SimDuration {
    SimDuration::from_secs_f64(cycles / cost(engine).clock_hz)
}

/// Time for `engine` to AES-encrypt `bytes` (one execution context).
pub fn aes_time(engine: Engine, bytes: u64) -> SimDuration {
    cycles_to_duration(engine, cost(engine).aes_cycles_per_byte * bytes as f64)
}

/// Time for `engine` to draw `samples` Monte Carlo samples.
pub fn pi_time(engine: Engine, samples: u64) -> SimDuration {
    cycles_to_duration(engine, cost(engine).pi_cycles_per_sample * samples as f64)
}

/// Time for `engine` to sort `bytes` worth of records.
pub fn sort_time(engine: Engine, bytes: u64) -> SimDuration {
    cycles_to_duration(engine, cost(engine).sort_cycles_per_byte * bytes as f64)
}

/// Steady-state AES bandwidth of one context, bytes/second.
pub fn aes_bandwidth(engine: Engine) -> f64 {
    let c = cost(engine);
    c.clock_hz / c.aes_cycles_per_byte
}

/// Steady-state Pi sampling rate of one context, samples/second.
pub fn pi_rate(engine: Engine) -> f64 {
    let c = cost(engine);
    c.clock_hz / c.pi_cycles_per_sample
}

/// Time to memcpy `bytes` on the engine's general-purpose core.
pub fn memcpy_time(engine: Engine, bytes: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / cost(engine).memcpy_bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn cell_aes_bandwidth_matches_figure_2() {
        // 8 SPUs per Cell; the paper reads ~700 MB/s per Cell processor.
        let per_cell = 8.0 * aes_bandwidth(Engine::SpeSimd);
        assert!((650.0 * MB..750.0 * MB).contains(&per_cell), "{per_cell}");
    }

    #[test]
    fn power6_aes_bandwidth_matches_figure_2() {
        let bw = aes_bandwidth(Engine::JavaPower6);
        assert!((40.0 * MB..50.0 * MB).contains(&bw), "{bw}");
    }

    #[test]
    fn ppe_is_slowest_aes_engine() {
        let ppe = aes_bandwidth(Engine::JavaPpe);
        assert!(ppe < aes_bandwidth(Engine::JavaPower6));
        assert!(ppe < aes_bandwidth(Engine::JavaPpeTask));
        assert!((9.0 * MB..13.0 * MB).contains(&ppe), "{ppe}");
    }

    #[test]
    fn pi_rate_orderings_match_figure_6() {
        // Cell (8 SPUs) >> Power6 > PPE, with Cell at least one order above
        // Power6 as the paper states for N >= 1e7.
        let cell = 8.0 * pi_rate(Engine::SpeSimd);
        let p6 = pi_rate(Engine::JavaPower6);
        let ppe = pi_rate(Engine::JavaPpe);
        assert!(cell / p6 >= 10.0, "cell/p6 = {}", cell / p6);
        assert!(p6 > ppe);
    }

    #[test]
    fn durations_scale_linearly() {
        let t1 = aes_time(Engine::SpeSimd, 1 << 20);
        let t2 = aes_time(Engine::SpeSimd, 1 << 21);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert_eq!(aes_time(Engine::JavaPpe, 0), SimDuration::ZERO);
    }

    #[test]
    fn task_jvm_is_faster_than_single_shot_harness() {
        assert!(pi_rate(Engine::JavaPpeTask) > pi_rate(Engine::JavaPpe));
        assert!(aes_bandwidth(Engine::JavaPpeTask) > aes_bandwidth(Engine::JavaPpe));
    }

    #[test]
    fn memcpy_time_sane() {
        let t = memcpy_time(Engine::JavaPpe, 1_600_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
