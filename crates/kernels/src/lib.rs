//! # accelmr-kernels — real compute kernels + the calibrated cost model
//!
//! The paper evaluates two workloads (AES-128 bulk encryption and Monte
//! Carlo Pi) on four engines (Cell SPUs, the Cell-MapReduce framework, Java
//! on the Cell PPE, Java on a Power6). This crate provides:
//!
//! * **Real, executable kernels** — a from-scratch AES-128
//!   ([`aes`]: scalar / T-table / four-lane SIMD-style, verified against
//!   FIPS-197 and NIST SP 800-38A vectors), Monte Carlo Pi ([`pi`]), and a
//!   GraySort-style sort kernel ([`sort`]). Functional simulation runs these
//!   for real, so end-to-end tests verify actual ciphertext through the
//!   whole simulated stack.
//! * **The calibration table** ([`cost`]) — cycles/byte and cycles/sample
//!   per engine, the single source of truth for every timing model above.
//! * **Deterministic synthetic data** ([`data`]) — content as a pure
//!   function of `(seed, offset)` plus order-independent digests, so any
//!   component can materialize and verify any byte range independently.

pub mod aes;
pub mod cost;
pub mod data;
pub mod pi;
pub mod sort;

pub use aes::{Aes128, AesImpl};
pub use cost::Engine;
pub use data::{checksum, fill_deterministic, UnorderedDigest};
pub use pi::PiPartial;
pub use sort::SortRecord;
