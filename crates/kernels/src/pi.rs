//! Monte Carlo Pi estimation — the paper's CPU-intensive workload.
//!
//! Each sample draws `(x, y)` uniform in the unit square and tests
//! `x² + y² ≤ 1`; π ≈ 4 · inside / total, with standard error
//! `sqrt(π(4−π)/N)` ≈ 1.64/√N — the O(1/√N) accuracy the paper quotes.
//! Two real implementations mirror the two engines: a straightforward scalar
//! loop (the Hadoop `PiEstimator` port) and a four-lane batch loop shaped
//! like the SPU kernel.

use accelmr_des::Xoshiro256;

/// Counts samples falling inside the quarter circle, one at a time.
pub fn count_inside_scalar(rng: &mut Xoshiro256, samples: u64) -> u64 {
    let mut inside = 0u64;
    for _ in 0..samples {
        let x = rng.next_f64();
        let y = rng.next_f64();
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    inside
}

/// Counts samples in batches of four lanes, the SPU-style layout. The lane
/// loop is branch-free (comparison folded to 0/1) exactly as the SIMD select
/// instruction would do it.
pub fn count_inside_lanes(rng: &mut Xoshiro256, samples: u64) -> u64 {
    let mut inside = 0u64;
    let quads = samples / 4;
    for _ in 0..quads {
        let mut xs = [0.0f64; 4];
        let mut ys = [0.0f64; 4];
        for l in 0..4 {
            xs[l] = rng.next_f64();
            ys[l] = rng.next_f64();
        }
        let mut hits = 0u64;
        for l in 0..4 {
            hits += (xs[l] * xs[l] + ys[l] * ys[l] <= 1.0) as u64;
        }
        inside += hits;
    }
    inside + count_inside_scalar(rng, samples % 4)
}

/// Folds a partial count into the classic MapReduce `(inside, total)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PiPartial {
    /// Samples that landed inside the quarter circle.
    pub inside: u64,
    /// Samples drawn.
    pub total: u64,
}

impl PiPartial {
    /// Runs `samples` draws on a forked RNG stream; `stream` decorrelates
    /// parallel workers while keeping every run reproducible.
    pub fn compute(seed: u64, stream: u64, samples: u64, lanes: bool) -> PiPartial {
        let mut rng = Xoshiro256::seed_from_u64(seed).fork(stream);
        let inside = if lanes {
            count_inside_lanes(&mut rng, samples)
        } else {
            count_inside_scalar(&mut rng, samples)
        };
        PiPartial {
            inside,
            total: samples,
        }
    }

    /// Combines two partials (the reduce step).
    #[inline]
    pub fn merge(self, other: PiPartial) -> PiPartial {
        PiPartial {
            inside: self.inside + other.inside,
            total: self.total + other.total,
        }
    }

    /// The π estimate, or `None` when no samples were drawn.
    pub fn estimate(self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(4.0 * self.inside as f64 / self.total as f64)
        }
    }
}

/// Largest sample count [`count_inside_auto`] draws one-by-one; above this
/// it switches to the exact-mean normal approximation of the binomial.
pub const AUTO_EXACT_LIMIT: u64 = 1 << 22;

/// Counts inside-circle hits for stream `(seed, stream)`, drawing real
/// samples up to [`AUTO_EXACT_LIMIT`] and using a normal approximation of
/// Binomial(n, π/4) beyond it.
///
/// The paper's distributed runs draw up to 10^13 samples; simulating each
/// draw is pointless because the estimator's distribution is known exactly.
/// The approximation keeps the statistical contract — mean n·π/4, variance
/// n·p(1−p), deterministic per `(seed, stream)` — so the O(1/√N) accuracy
/// claim (and its reproduction) still *emerges* from sampled randomness
/// rather than being hard-coded.
pub fn count_inside_auto(seed: u64, stream: u64, n: u64) -> u64 {
    let mut rng = Xoshiro256::seed_from_u64(seed).fork(stream);
    if n <= AUTO_EXACT_LIMIT {
        return count_inside_lanes(&mut rng, n);
    }
    let p = std::f64::consts::PI / 4.0;
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box-Muller for one standard normal draw.
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let inside = (mean + sd * z).round();
    inside.clamp(0.0, n as f64) as u64
}

/// One standard deviation of the estimator for `n` samples.
pub fn standard_error(n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let pi = std::f64::consts::PI;
    (pi * (4.0 - pi) / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_converge_within_five_sigma() {
        for &(n, seed) in &[(10_000u64, 1u64), (100_000, 2), (1_000_000, 3)] {
            let p = PiPartial::compute(seed, 0, n, false);
            let err = (p.estimate().unwrap() - std::f64::consts::PI).abs();
            assert!(
                err < 5.0 * standard_error(n),
                "n={n} err={err} bound={}",
                5.0 * standard_error(n)
            );
        }
    }

    #[test]
    fn lanes_and_scalar_are_statistically_identical() {
        // Same RNG stream, same draw order per coordinate pair, so counts
        // match exactly for multiples of 4...
        let a = PiPartial::compute(9, 0, 40_000, false);
        let b = PiPartial::compute(9, 0, 40_000, true);
        assert_eq!(a, b);
        // ...and for ragged tails.
        let c = PiPartial::compute(9, 0, 40_003, false);
        let d = PiPartial::compute(9, 0, 40_003, true);
        assert_eq!(c, d);
    }

    #[test]
    fn merge_adds_fields() {
        let a = PiPartial {
            inside: 3,
            total: 4,
        };
        let b = PiPartial {
            inside: 1,
            total: 2,
        };
        assert_eq!(
            a.merge(b),
            PiPartial {
                inside: 4,
                total: 6
            }
        );
    }

    #[test]
    fn parallel_split_matches_single_worker_statistics() {
        // 4 workers × 25k samples vs 1 worker × 100k: different streams, so
        // counts differ, but both estimates stay inside the error envelope.
        let whole = PiPartial::compute(5, 0, 100_000, false);
        let split = (0..4)
            .map(|w| PiPartial::compute(5, w + 1, 25_000, false))
            .fold(PiPartial::default(), PiPartial::merge);
        assert_eq!(split.total, 100_000);
        for p in [whole, split] {
            let err = (p.estimate().unwrap() - std::f64::consts::PI).abs();
            assert!(err < 5.0 * standard_error(100_000));
        }
    }

    #[test]
    fn auto_count_exact_below_limit() {
        let direct = PiPartial::compute(3, 5, 1000, true).inside;
        assert_eq!(count_inside_auto(3, 5, 1000), direct);
    }

    #[test]
    fn auto_count_approximation_statistics() {
        // Above the limit: estimate must stay inside the 5-sigma envelope
        // and differ across streams (it is a random draw, not a constant).
        let n = 1u64 << 30;
        let a = count_inside_auto(1, 0, n);
        let b = count_inside_auto(1, 1, n);
        assert_ne!(a, b);
        for inside in [a, b] {
            let est = 4.0 * inside as f64 / n as f64;
            assert!((est - std::f64::consts::PI).abs() < 5.0 * standard_error(n));
        }
        // Deterministic.
        assert_eq!(a, count_inside_auto(1, 0, n));
    }

    #[test]
    fn zero_samples_has_no_estimate() {
        assert_eq!(PiPartial::default().estimate(), None);
        assert!(standard_error(0).is_infinite());
    }

    #[test]
    fn four_digit_accuracy_near_hundred_million() {
        // The paper: "estimating Pi with 100,000,000 samples produces an
        // actual accuracy of approximately 4 digits". 5σ at 1e8 ≈ 8e-4.
        assert!(5.0 * standard_error(100_000_000) < 1e-3);
    }
}
