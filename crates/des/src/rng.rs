//! Deterministic pseudo-random numbers for the simulator.
//!
//! The engine must be bit-for-bit reproducible from a seed, including across
//! crate versions, so we ship our own xoshiro256** implementation instead of
//! depending on an external RNG whose stream might change. Seeding goes
//! through SplitMix64 as recommended by the xoshiro authors so that
//! low-entropy seeds (0, 1, 2, ...) still produce well-mixed streams.

/// SplitMix64 step; used for seeding and for cheap stateless mixing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a small, fast, high-quality PRNG with a 2^256-1 period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Derives an independent child generator. Each `stream` value yields a
    /// distinct, reproducible stream; used to give every actor its own RNG
    /// without coupling their consumption orders.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the parent state with the stream id through SplitMix64 so that
        // forks of forks stay decorrelated.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's multiply-shift rejection
    /// method. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed sample with the given mean (used for
    /// jittering heartbeats and failure injection times).
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle of a slice, deterministic given the RNG state.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element index, or `None` for an empty slice.
    #[inline]
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.next_below(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated_and_reproducible() {
        let root = Xoshiro256::seed_from_u64(7);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        let mut collisions = 0;
        for _ in 0..64 {
            if f1.next_u64() == f2.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        // Degenerate full-width range must not overflow.
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn unit_floats_in_range_and_mean_reasonable() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let n = 50_000;
        let mean_target = 3.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_exp(mean_target);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(19);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_index_bounds() {
        let mut r = Xoshiro256::seed_from_u64(23);
        assert_eq!(r.choose_index(0), None);
        for _ in 0..100 {
            assert!(r.choose_index(4).unwrap() < 4);
        }
    }
}
