//! A small, fast, non-cryptographic hasher (the "Fx" hash used by rustc and
//! Firefox) plus map/set aliases.
//!
//! The simulator keys maps almost exclusively by small integers (actor ids,
//! block ids, task ids); SipHash's HashDoS resistance buys nothing here and
//! costs measurably in the event loop, so every internal map uses this
//! hasher. See the workspace performance notes in DESIGN.md.

// audit:allow(std-hashmap): alias definition site — the std types are rebound here to the fixed-seed hasher
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher. Not DoS-resistant; internal use only.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn hash_is_stable_for_equal_inputs() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello world"), h(b"hello worle"));
        // Length is mixed in: a prefix must not collide with its extension.
        assert_ne!(h(b"abc"), h(b"abc\0"));
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn integer_keys_spread() {
        // Sanity check the hash is not an identity that would degrade the
        // table; consecutive keys should land in different low-bit buckets.
        fn h(i: u64) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(i);
            hasher.finish()
        }
        let buckets: FxHashSet<u64> = (0..64).map(|i| h(i) & 0x3f).collect();
        assert!(buckets.len() > 16, "low bits collapse: {}", buckets.len());
    }
}
