//! Optional event tracing.
//!
//! When enabled, the engine records `(time, actor, event-label)` for every
//! dispatched event. Traces serve two purposes: debugging protocol issues,
//! and *determinism testing* — two runs with the same seed must produce the
//! same fingerprint, which the integration suite asserts.

use std::hash::Hasher;

use crate::actor::ActorId;
use crate::fxmap::FxHasher;
use crate::time::SimTime;

/// One dispatched event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event was delivered.
    pub at: SimTime,
    /// Receiving actor.
    pub target: ActorId,
    /// Event label (message type name, `Start`, or `Timer`).
    pub label: &'static str,
}

/// Ring-buffer-free bounded trace: recording stops at `capacity` entries but
/// the fingerprint keeps folding every event, so determinism checks cover
/// entire runs even when the stored trace is truncated.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    hasher: FxHasher,
    recorded: u64,
    enabled: bool,
}

impl Trace {
    /// Enables tracing, storing at most `capacity` entries.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
        self.entries.reserve(capacity.min(1 << 20));
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one dispatch (no-op unless enabled).
    #[inline]
    pub fn record(&mut self, at: SimTime, target: ActorId, label: &'static str) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        self.hasher.write_u64(at.as_nanos());
        self.hasher.write_u32(target.0);
        self.hasher.write(label.as_bytes());
        if self.entries.len() < self.capacity {
            self.entries.push(TraceEntry { at, target, label });
        }
    }

    /// Stored entries (possibly fewer than [`Trace::recorded`]).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total events folded into the fingerprint.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Order-sensitive digest of every recorded event.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.hasher.clone();
        h.write_u64(self.recorded);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, ActorId(0), "X");
        assert_eq!(t.recorded(), 0);
        assert!(t.entries().is_empty());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Trace::default();
        a.enable(16);
        let mut b = Trace::default();
        b.enable(16);
        a.record(SimTime::from_nanos(1), ActorId(0), "X");
        a.record(SimTime::from_nanos(2), ActorId(1), "Y");
        b.record(SimTime::from_nanos(2), ActorId(1), "Y");
        b.record(SimTime::from_nanos(1), ActorId(0), "X");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn capacity_truncates_storage_but_not_fingerprint() {
        let mut a = Trace::default();
        a.enable(2);
        for i in 0..5 {
            a.record(SimTime::from_nanos(i), ActorId(0), "E");
        }
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.recorded(), 5);

        let mut b = Trace::default();
        b.enable(2);
        for i in 0..4 {
            b.record(SimTime::from_nanos(i), ActorId(0), "E");
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn identical_streams_match() {
        let mk = || {
            let mut t = Trace::default();
            t.enable(8);
            t.record(SimTime::from_nanos(3), ActorId(2), "A");
            t.record(SimTime::from_nanos(9), ActorId(5), "B");
            t.fingerprint()
        };
        assert_eq!(mk(), mk());
    }
}
