//! Actors and messages.
//!
//! Every simulated component (NIC, NameNode, TaskTracker, SPE, ...) is an
//! [`Actor`]: a state machine that reacts to [`Event`]s delivered by the
//! engine at specific instants. Actors never call each other directly; all
//! interaction is asynchronous message passing, which keeps the model
//! faithful to the distributed system being simulated and keeps borrows
//! trivially disjoint.

use core::any::Any;
use core::fmt;

use crate::sim::Ctx;

/// Stable identifier of an actor inside one [`crate::Sim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// A sentinel id used as the sender of engine-originated events.
    pub const ENGINE: ActorId = ActorId(u32::MAX);

    /// The raw index value (useful for compact per-actor tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ActorId::ENGINE {
            write!(f, "actor(engine)")
        } else {
            write!(f, "actor({})", self.0)
        }
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Handle for a scheduled timer; lets the owner cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(pub(crate) u64);

/// A type-erased message payload.
///
/// Blanket-implemented for every `'static + Debug + Send` type, so protocol
/// crates simply define plain structs/enums and send them; receivers
/// downcast with [`MsgExt::downcast`] / [`MsgExt::peek`].
pub trait Msg: Any + fmt::Debug + Send {
    /// Upcast to `Any` for downcasting by reference.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to boxed `Any` for downcasting by value.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Short label used in traces (the type name by default).
    fn label(&self) -> &'static str;
}

impl<T: Any + fmt::Debug + Send> Msg for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn label(&self) -> &'static str {
        core::any::type_name::<T>()
    }
}

/// Downcast helpers on boxed messages.
pub trait MsgExt {
    /// Attempts to take the payload as a concrete `T`, returning the box
    /// unchanged on type mismatch so the caller can try another type.
    fn downcast<T: Any>(self) -> Result<Box<T>, Box<dyn Msg>>;
    /// Borrowing probe for the payload type.
    fn peek<T: Any>(&self) -> Option<&T>;
    /// `true` when the payload is a `T`.
    fn is<T: Any>(&self) -> bool;
}

impl MsgExt for Box<dyn Msg> {
    fn downcast<T: Any>(self) -> Result<Box<T>, Box<dyn Msg>> {
        if self.as_ref().as_any().is::<T>() {
            Ok(self.into_any().downcast::<T>().expect("checked by is::<T>"))
        } else {
            Err(self)
        }
    }

    fn peek<T: Any>(&self) -> Option<&T> {
        self.as_ref().as_any().downcast_ref::<T>()
    }

    fn is<T: Any>(&self) -> bool {
        self.as_ref().as_any().is::<T>()
    }
}

/// An occurrence delivered to an actor.
#[derive(Debug)]
pub enum Event {
    /// Delivered exactly once, when the actor is spawned (including the
    /// initial actors, which all receive `Start` at t=0 in spawn order).
    Start,
    /// A timer scheduled by the actor itself has fired.
    Timer {
        /// Identifies which arming produced this firing.
        handle: TimerHandle,
        /// The value the actor passed when arming the timer.
        tag: u64,
    },
    /// A message from another actor (or the harness) has arrived.
    Msg {
        /// The sending actor ([`ActorId::ENGINE`] for harness injections).
        from: ActorId,
        /// The payload.
        msg: Box<dyn Msg>,
    },
}

impl Event {
    /// Short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Start => "Start",
            Event::Timer { .. } => "Timer",
            Event::Msg { msg, .. } => msg.as_ref().label(),
        }
    }
}

/// A simulated component.
///
/// The `Any` supertrait lets the harness recover an actor's concrete state
/// after a run via [`crate::Sim::actor_mut`] / [`crate::Sim::actor_ref`] —
/// the supported way for tests to inspect a driver actor without smuggling
/// results out through shared cells.
pub trait Actor: Send + Any {
    /// Reacts to one event. All side effects (sends, timers, spawning,
    /// stopping the run) go through [`Ctx`].
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event);

    /// Human-readable name used in traces and panics.
    fn name(&self) -> String {
        "actor".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ping(u32);

    #[derive(Debug)]
    struct Pong;

    #[test]
    fn downcast_by_value_and_reference() {
        let boxed: Box<dyn Msg> = Box::new(Ping(7));
        assert!(boxed.is::<Ping>());
        assert!(!boxed.is::<Pong>());
        assert_eq!(boxed.peek::<Ping>().unwrap().0, 7);
        let back = boxed.downcast::<Ping>().unwrap();
        assert_eq!(back.0, 7);
    }

    #[test]
    fn failed_downcast_returns_original() {
        let boxed: Box<dyn Msg> = Box::new(Ping(3));
        let back = boxed.downcast::<Pong>().unwrap_err();
        assert_eq!(back.peek::<Ping>().unwrap().0, 3);
    }

    #[test]
    fn labels_name_the_payload_type() {
        let boxed: Box<dyn Msg> = Box::new(Pong);
        assert!(boxed.as_ref().label().ends_with("Pong"));
        let ev = Event::Msg {
            from: ActorId::ENGINE,
            msg: boxed,
        };
        assert!(ev.label().ends_with("Pong"));
        assert_eq!(Event::Start.label(), "Start");
    }

    #[test]
    fn actor_id_formatting() {
        assert_eq!(format!("{:?}", ActorId(4)), "actor(4)");
        assert_eq!(format!("{}", ActorId::ENGINE), "actor(engine)");
        assert_eq!(ActorId(9).index(), 9);
    }
}
