//! Lazily-invalidated expiry heap for heartbeat-style liveness tracking.
//!
//! The classic liveness sweep walks *every* tracked peer each tick and
//! compares `now - last_heartbeat` against a silence window — O(cluster)
//! per tick even when nothing changed. [`ExpiryHeap`] makes the sweep cost
//! proportional to what actually approached its deadline: a min-heap of
//! `(deadline, key)` entries where the deadline recorded in the heap is
//! allowed to go stale (heartbeats move the *authoritative* deadline, kept
//! by the caller, without touching the heap — the same lazy-invalidation
//! idiom the engine's generation-tagged timers use). At sweep time, entries
//! whose recorded deadline has passed are popped and checked against the
//! authoritative deadline: genuinely expired keys are returned, refreshed
//! ones are re-pushed at their current deadline, and keys the caller no
//! longer tracks are dropped.
//!
//! Each live key has exactly one heap entry in the steady state (pushed
//! once at registration, moved only at pop time), so a sweep's amortized
//! cost is the number of keys whose *old* deadline elapsed since the last
//! sweep — each key surfaces about once per silence window, not once per
//! tick. Re-registration after an expiry (a node rejoining) pushes a fresh
//! entry; the superseded one, if still queued, is dropped at pop time by
//! the authoritative check, so duplicates are bounded by the number of
//! resurrections, not heartbeats.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Min-heap of `(recorded deadline, key)` with lazy invalidation; see the
/// module docs. `K` is the caller's peer key (e.g. a node id).
#[derive(Clone, Debug, Default)]
pub struct ExpiryHeap<K: Ord + Copy> {
    heap: BinaryHeap<Reverse<(SimTime, K)>>,
}

impl<K: Ord + Copy> ExpiryHeap<K> {
    /// An empty heap.
    pub fn new() -> Self {
        ExpiryHeap {
            heap: BinaryHeap::new(),
        }
    }

    /// Records that `key`'s deadline is `at` (registration or
    /// resurrection). Do **not** call this per heartbeat — heartbeats only
    /// update the caller's authoritative deadline; the heap learns about
    /// the extension when the stale entry surfaces at sweep time.
    pub fn schedule(&mut self, at: SimTime, key: K) {
        self.heap.push(Reverse((at, key)));
    }

    /// Pops every entry whose recorded deadline is strictly before `now`
    /// and classifies it with `deadline_of`, the caller's authoritative
    /// view: `None` means the key is no longer tracked (dead, removed) —
    /// the entry is dropped; `Some(d)` with `d < now` means genuinely
    /// expired — the key is returned; otherwise the entry is re-pushed at
    /// `d`. The strict `<` matches the usual `now - last > window` rule: a
    /// key whose deadline is exactly `now` survives this sweep.
    ///
    /// The returned keys are in heap (deadline) order and may contain
    /// duplicates when stale entries coexist; callers that need a
    /// deterministic processing order should sort and dedup.
    pub fn expired<F>(&mut self, now: SimTime, mut deadline_of: F) -> Vec<K>
    where
        F: FnMut(K) -> Option<SimTime>,
    {
        let mut out = Vec::new();
        while let Some(&Reverse((at, key))) = self.heap.peek() {
            if at >= now {
                break;
            }
            self.heap.pop();
            match deadline_of(key) {
                None => {}
                Some(d) if d < now => out.push(key),
                // Heartbeats extended the deadline past this sweep:
                // re-queue at the authoritative instant (`d >= now`, so
                // this cannot loop).
                Some(d) => self.heap.push(Reverse((d, key))),
            }
        }
        out
    }

    /// Number of queued entries (live keys plus superseded stragglers).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn expires_only_past_strict_deadlines() {
        let mut h = ExpiryHeap::new();
        h.schedule(t(10), 1u32);
        h.schedule(t(20), 2u32);
        // Deadline exactly at `now` survives (strict `<`).
        assert!(h.expired(t(10), |_| Some(t(10))).is_empty());
        // Past deadline with a matching authoritative view expires.
        assert_eq!(h.expired(t(11), |_| Some(t(10))), vec![1]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn refreshed_entries_are_repushed_not_expired() {
        let mut h = ExpiryHeap::new();
        h.schedule(t(10), 7u32);
        // A heartbeat moved the authoritative deadline to t=30: the stale
        // entry is re-queued there instead of expiring.
        assert!(h.expired(t(15), |_| Some(t(30))).is_empty());
        assert_eq!(h.len(), 1);
        // Not yet: recorded deadline is now the authoritative one.
        assert!(h.expired(t(25), |_| Some(t(30))).is_empty());
        assert_eq!(h.expired(t(31), |_| Some(t(30))), vec![7]);
        assert!(h.is_empty());
    }

    #[test]
    fn untracked_keys_are_dropped() {
        let mut h = ExpiryHeap::new();
        h.schedule(t(5), 1u32);
        h.schedule(t(6), 2u32);
        let got = h.expired(t(10), |k| if k == 1 { None } else { Some(t(6)) });
        assert_eq!(got, vec![2]);
        assert!(h.is_empty());
    }

    #[test]
    fn resurrection_duplicates_are_bounded_and_harmless() {
        let mut h = ExpiryHeap::new();
        h.schedule(t(10), 3u32);
        // Expire once.
        assert_eq!(h.expired(t(11), |_| Some(t(10))), vec![3]);
        // Rejoin: fresh entry at a later deadline.
        h.schedule(t(40), 3u32);
        assert!(h.expired(t(20), |_| Some(t(40))).is_empty());
        assert_eq!(h.expired(t(41), |_| Some(t(40))), vec![3]);
        assert!(h.is_empty());
    }
}
