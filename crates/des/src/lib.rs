//! # accelmr-des — deterministic discrete-event simulation engine
//!
//! The foundation of the accelmr workspace: a single-threaded,
//! strictly deterministic discrete-event engine with an actor programming
//! model. Every other substrate (network fabric, HDFS-like file system,
//! Hadoop-like MapReduce runtime) is built as actors on this engine; the
//! Cell BE chip simulator reuses the same event queue for its intra-chip
//! events.
//!
//! ## Model
//!
//! * Time is integer nanoseconds ([`SimTime`], [`SimDuration`]).
//! * Components are [`Actor`]s reacting to [`Event`]s; all interaction is
//!   asynchronous message passing (no synchronous cross-actor calls), which
//!   mirrors the distributed system being modeled.
//! * Events fire in `(time, insertion order)`; the engine is reproducible
//!   bit-for-bit from a seed, checked by trace fingerprints ([`Trace`]).
//!
//! ## Example
//!
//! ```
//! use accelmr_des::prelude::*;
//!
//! struct Greeter;
//! impl Actor for Greeter {
//!     fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
//!         match ev {
//!             Event::Start => { ctx.after(SimDuration::from_secs(1), 0); }
//!             Event::Timer { .. } => { ctx.stats().incr("greeted"); ctx.stop(); }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! sim.spawn(Box::new(Greeter));
//! let summary = sim.run();
//! assert_eq!(summary.end_time.as_secs_f64(), 1.0);
//! assert_eq!(sim.stats().counter("greeted"), 1);
//! ```

pub mod actor;
pub mod expiry;
pub mod fxmap;
pub(crate) mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use actor::{Actor, ActorId, Event, Msg, MsgExt, TimerHandle};
pub use expiry::ExpiryHeap;
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use rng::{splitmix64, Xoshiro256};
pub use sim::{Ctx, RunSummary, Sim};
pub use stats::{ActorCost, LogHistogram, QueueStats, Stats};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};

/// Everything most actor implementations need.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId, Event, Msg, MsgExt, TimerHandle};
    pub use crate::rng::Xoshiro256;
    pub use crate::sim::{Ctx, RunSummary, Sim};
    pub use crate::time::{SimDuration, SimTime};
}
