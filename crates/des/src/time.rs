//! Simulated time.
//!
//! The engine counts time in integer **nanoseconds** from the start of the
//! simulation. Nanosecond resolution is fine enough to express single Cell BE
//! bus cycles (0.3125 ns rounds to sub-nanosecond error over any realistic
//! interval) while a `u64` still covers ~584 years of simulated time, far
//! beyond the 10^5-second jobs in the paper's Figure 8.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub(crate) u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub(crate) u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since t=0.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (lossy for very large values).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future (callers comparing heartbeat timestamps rely on this).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow / negative input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || s.is_nan() {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn float_seconds_round_to_nanos() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t - SimDuration::from_nanos(20)).as_nanos(), 0);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        let d = SimDuration::from_nanos(5);
        assert_eq!((d - SimDuration::from_nanos(9)).as_nanos(), 0);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn since_saturates_for_future_instants() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a.since(b).as_nanos(), 60);
        assert_eq!(b.since(a).as_nanos(), 0);
        assert_eq!((a - b).as_nanos(), 60);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(4)), "4.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", SimTime::from_micros_test()), "T+9.000us");
    }

    impl SimTime {
        fn from_micros_test() -> SimTime {
            SimTime::from_nanos(9_000)
        }
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(1)),
            Some(SimTime::from_nanos(1))
        );
    }
}
