//! The pending-event store: a calendar queue tuned for simulation workloads.
//!
//! The engine dispatches events in `(time, insertion-sequence)` order. The
//! original implementation was a `BinaryHeap<Queued>` — O(log n) per
//! operation and cache-hostile once hundreds of thousands of events are
//! pending. This module replaces it with a **calendar queue** (Brown 1988,
//! as refined by ladder queues): pushes append to a coarse time bucket in
//! O(1), and ordering work is deferred until a bucket becomes *current*,
//! when its handful of events is sorted once.
//!
//! ## Structure
//!
//! Events live in one of four tiers, ordered by proximity to the clock:
//!
//! 1. `now_fifo` — events scheduled *at the instant currently dispatching*.
//!    Sequence numbers are globally monotonic, so a plain FIFO is exact
//!    `(at, seq)` order for them; same-instant sends cost a `VecDeque`
//!    push/pop and no comparisons.
//! 2. `cur` — the sorted run of the bucket being drained. Future-but-soon
//!    pushes that land inside the already-activated window binary-search
//!    into it.
//! 3. `buckets` — a wheel of `N_BUCKETS` equal-width time windows. Pushes
//!    below the horizon append to their window unsorted.
//! 4. `overflow` — everything at or beyond the horizon, unsorted. When the
//!    wheel drains, the queue *re-anchors*: a fresh epoch and an adaptive
//!    bucket width are derived from the overflow's time span and the events
//!    are redistributed (each event moves tiers at most O(1) times per
//!    epoch, keeping the amortized cost constant).
//!
//! ## Determinism
//!
//! The only externally observable behaviour is the pop order, and every
//! tier preserves exact `(at, seq)` order: `now_fifo` by the monotonic-seq
//! argument, `cur` by sortedness, and the wheel/overflow because events
//! only leave them through `cur`. The `#[cfg(test)]` [`BinaryHeapQueue`] is
//! the retained reference oracle; property tests drive both queues with
//! identical randomized push/pop streams and assert identical dispatch
//! order (see the tests at the bottom of this file).

use std::collections::VecDeque;

use crate::actor::ActorId;
use crate::time::SimTime;

/// Number of wheel buckets. Large enough that a re-anchor spreads pending
/// events thinly (sorts stay short), small enough that sweeping empty
/// buckets between sparse events is cheap.
const N_BUCKETS: usize = 1024;

/// What a queued event will deliver.
pub(crate) enum Payload {
    /// [`crate::Event::Start`] for a freshly spawned actor.
    Start,
    /// A timer firing; `slot`/`gen` identify the arming (see `sim.rs` —
    /// a stale `gen` means the timer was cancelled or rescheduled).
    Timer { slot: u32, gen: u32, tag: u64 },
    /// A boxed message.
    Msg {
        from: ActorId,
        msg: Box<dyn crate::actor::Msg>,
    },
}

/// One pending event. Dispatch order is ascending `(at, seq)`.
pub(crate) struct Queued {
    pub at: SimTime,
    pub seq: u64,
    pub target: ActorId,
    pub payload: Payload,
}

/// The calendar queue. See the module docs for the tier layout.
pub(crate) struct CalendarQueue {
    /// Events at exactly `self.now` (the instant currently dispatching).
    now_fifo: VecDeque<Queued>,
    /// Sorted run of the activated bucket; consumed from the front.
    cur: VecDeque<Queued>,
    /// Exclusive end of the window `cur` was filled from. Pushes with
    /// `at < cur_end` binary-search into `cur`.
    cur_end: SimTime,
    /// The wheel: bucket `i` covers `[epoch + i*width, epoch + (i+1)*width)`.
    buckets: Vec<Vec<Queued>>,
    /// Next wheel bucket to activate.
    cursor: usize,
    /// Start instant of bucket 0 for the current epoch.
    epoch: SimTime,
    /// Bucket width in nanoseconds (re-derived at each re-anchor).
    width: u64,
    /// Events at or beyond the horizon, unsorted.
    overflow: Vec<Queued>,
    /// Scratch for re-anchoring (retains its allocation between epochs).
    spill: Vec<Queued>,
    /// Instant of the most recently popped event.
    now: SimTime,
    /// Total pending events across all tiers.
    len: usize,
}

impl CalendarQueue {
    pub fn new() -> Self {
        CalendarQueue {
            now_fifo: VecDeque::new(),
            cur: VecDeque::new(),
            cur_end: SimTime::ZERO,
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            // Cursor at the end forces the first non-immediate pop to
            // re-anchor, which derives the initial epoch and width from
            // the actual workload instead of a guess.
            cursor: N_BUCKETS,
            epoch: SimTime::ZERO,
            width: 1,
            overflow: Vec::new(),
            spill: Vec::new(),
            now: SimTime::ZERO,
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First instant beyond the wheel for the current epoch.
    #[inline]
    fn horizon(&self) -> SimTime {
        SimTime::from_nanos(
            self.epoch
                .as_nanos()
                .saturating_add(self.width.saturating_mul(N_BUCKETS as u64)),
        )
    }

    pub fn push(&mut self, q: Queued) {
        self.len += 1;
        if q.at == self.now {
            // Same-instant send while that instant dispatches: seq is
            // globally monotonic, so FIFO order *is* (at, seq) order.
            self.now_fifo.push_back(q);
        } else if q.at < self.cur_end {
            // Lands inside the window already promoted to `cur` (this also
            // absorbs the theoretical at < now case after a harness moved
            // the clock backwards with a past deadline: the event sorts to
            // the front and pops next).
            let idx = self.cur.partition_point(|e| e.at <= q.at);
            if idx == self.cur.len() {
                self.cur.push_back(q);
            } else {
                self.cur.insert(idx, q);
            }
        } else if self.cursor < N_BUCKETS && q.at < self.horizon() {
            // A fully swept wheel (cursor at the end, including the initial
            // state) routes everything to overflow; the next re-anchor
            // redistributes.
            let idx = ((q.at.as_nanos() - self.epoch.as_nanos()) / self.width) as usize;
            debug_assert!(idx >= self.cursor);
            self.buckets[idx].push(q);
        } else {
            self.overflow.push(q);
        }
    }

    /// Instant of the next event to pop, or `None` when empty. Advances
    /// internal cursors (never the pop order).
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        match (self.now_fifo.front(), self.cur.front()) {
            (Some(nf), Some(c)) => Some(nf.at.min(c.at)),
            (Some(nf), None) => Some(nf.at),
            (None, Some(c)) => Some(c.at),
            (None, None) => unreachable!("settle found no front in a non-empty queue"),
        }
    }

    pub fn pop(&mut self) -> Option<Queued> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        // `now_fifo` entries sit at `self.now`; nothing pending is earlier.
        // A `cur` entry at the same instant was pushed before anything in
        // the FIFO (monotonic seq), so it wins ties.
        let from_cur = match (self.now_fifo.front(), self.cur.front()) {
            (Some(nf), Some(c)) => c.at <= nf.at,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => unreachable!("settle found no front in a non-empty queue"),
        };
        let q = if from_cur {
            self.cur.pop_front()
        } else {
            self.now_fifo.pop_front()
        }
        .expect("front checked above");
        self.len -= 1;
        self.now = q.at;
        Some(q)
    }

    /// Ensures the next event (if any) is at the front of `now_fifo` or
    /// `cur`, activating wheel buckets and re-anchoring as needed.
    fn settle(&mut self) {
        debug_assert!(self.len > 0);
        while self.now_fifo.is_empty() && self.cur.is_empty() {
            if self.cursor < N_BUCKETS {
                let bucket = &mut self.buckets[self.cursor];
                self.cursor += 1;
                self.cur_end = SimTime::from_nanos(
                    self.epoch
                        .as_nanos()
                        .saturating_add(self.width.saturating_mul(self.cursor as u64)),
                );
                if !bucket.is_empty() {
                    bucket.sort_unstable_by_key(|q| (q.at, q.seq));
                    // `drain` keeps the bucket's allocation for reuse next
                    // epoch — event nodes are recycled, never freed.
                    self.cur.extend(bucket.drain(..));
                }
            } else {
                self.reanchor();
            }
        }
    }

    /// Starts a new epoch: derives `epoch`/`width` from the overflow's time
    /// span and redistributes it across the wheel.
    fn reanchor(&mut self) {
        debug_assert!(
            !self.overflow.is_empty(),
            "re-anchor with empty overflow in a non-empty queue"
        );
        let mut min = u64::MAX;
        let mut max = 0u64;
        for q in &self.overflow {
            min = min.min(q.at.as_nanos());
            max = max.max(q.at.as_nanos());
        }
        self.epoch = SimTime::from_nanos(min);
        // Width covering twice the span: every overflow event lands in the
        // wheel (the spill below only matters at u64 saturation), and the
        // next epoch starts with events spread over at most half the wheel.
        self.width = ((max - min) / (N_BUCKETS as u64 / 2)).max(1);
        self.cursor = 0;
        self.cur_end = self.epoch;
        let horizon = self.horizon();
        debug_assert!(self.spill.is_empty());
        for q in self.overflow.drain(..) {
            if q.at < horizon {
                let idx = ((q.at.as_nanos() - min) / self.width) as usize;
                self.buckets[idx].push(q);
            } else {
                self.spill.push(q);
            }
        }
        std::mem::swap(&mut self.overflow, &mut self.spill);
    }
}

/// The original `BinaryHeap` event store, retained as the reference oracle
/// for queue-equivalence property tests (same role as the PR 3
/// `FluidEngine::Reference` for the incremental fluid solver).
#[cfg(test)]
pub(crate) struct BinaryHeapQueue {
    heap: std::collections::BinaryHeap<HeapEntry>,
}

#[cfg(test)]
struct HeapEntry(Queued);

#[cfg(test)]
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

#[cfg(test)]
impl Eq for HeapEntry {}

#[cfg(test)]
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
impl Ord for HeapEntry {
    // Reversed so the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

#[cfg(test)]
impl BinaryHeapQueue {
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: std::collections::BinaryHeap::new(),
        }
    }

    pub fn push(&mut self, q: Queued) {
        self.heap.push(HeapEntry(q));
    }

    pub fn pop(&mut self) -> Option<Queued> {
        self.heap.pop().map(|e| e.0)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::time::SimDuration;

    fn ev(at: SimTime, seq: u64) -> Queued {
        Queued {
            at,
            seq,
            target: ActorId(0),
            payload: Payload::Start,
        }
    }

    /// Drives the calendar queue and the BinaryHeap oracle with an
    /// identical randomized operation stream and asserts the pop sequences
    /// match exactly. Pushes happen both "from the future" (while draining,
    /// like actor sends) and at the current instant (same-instant FIFO).
    fn equivalence_run(seed: u64, ops: usize, max_ahead_ns: u64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut cal = CalendarQueue::new();
        let mut oracle = BinaryHeapQueue::new();
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        let mut pending = 0usize;

        for _ in 0..ops {
            let roll = rng.next_u64() % 100;
            // Bias towards pushes early so the queue fills, then drain.
            if pending == 0 || roll < 55 {
                let ahead = match rng.next_u64() % 4 {
                    0 => 0, // same-instant send
                    1 => rng.next_u64() % 64,
                    2 => rng.next_u64() % max_ahead_ns.max(1),
                    _ => rng.next_u64() % (max_ahead_ns.saturating_mul(50).max(1)),
                };
                let at = now + SimDuration::from_nanos(ahead);
                cal.push(ev(at, seq));
                oracle.push(ev(at, seq));
                seq += 1;
                pending += 1;
            } else {
                let a = cal.pop().expect("calendar pop");
                let b = oracle.pop().expect("oracle pop");
                assert_eq!((a.at, a.seq), (b.at, b.seq), "divergence at seed {seed}");
                now = a.at;
                pending -= 1;
            }
        }
        // Drain the rest.
        loop {
            match (cal.pop(), oracle.pop()) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        (a.at, a.seq),
                        (b.at, b.seq),
                        "drain divergence, seed {seed}"
                    );
                }
                (None, None) => break,
                (a, b) => panic!(
                    "length divergence: calendar={:?} oracle={:?}",
                    a.map(|q| (q.at, q.seq)),
                    b.map(|q| (q.at, q.seq))
                ),
            }
        }
        assert!(cal.is_empty() && oracle.is_empty());
    }

    #[test]
    fn matches_binary_heap_dense_near_future() {
        for seed in 0..8 {
            equivalence_run(seed, 4_000, 1_000);
        }
    }

    #[test]
    fn matches_binary_heap_sparse_far_future() {
        for seed in 100..106 {
            // Spans force many re-anchors with wide adaptive widths.
            equivalence_run(seed, 3_000, 5_000_000_000);
        }
    }

    #[test]
    fn matches_binary_heap_same_instant_bursts() {
        for seed in 200..206 {
            // max_ahead 1 ns: almost everything is a same-instant burst.
            equivalence_run(seed, 4_000, 1);
        }
    }

    #[test]
    fn same_instant_pushes_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_nanos(0);
        for seq in 0..100 {
            q.push(ev(t, seq));
        }
        for expect in 0..100 {
            assert_eq!(q.pop().unwrap().seq, expect);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn next_at_reports_earliest_without_consuming() {
        let mut q = CalendarQueue::new();
        q.push(ev(SimTime::from_nanos(500), 0));
        q.push(ev(SimTime::from_nanos(20), 1));
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(20)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(500)));
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.next_at(), None);
    }

    #[test]
    fn interleaved_future_pushes_land_in_active_run() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        // Seed a spread of events, pop a few to activate a bucket, then
        // push into the already-activated window.
        for i in 0..50u64 {
            q.push(ev(SimTime::from_nanos(i * 10), seq));
            seq += 1;
        }
        let first = q.pop().unwrap();
        assert_eq!(first.at, SimTime::ZERO);
        // 5 ns is inside the activated window, ahead of the 10 ns event.
        q.push(ev(SimTime::from_nanos(5), seq));
        assert_eq!(q.pop().unwrap().at, SimTime::from_nanos(5));
        assert_eq!(q.pop().unwrap().at, SimTime::from_nanos(10));
    }
}
