//! Lightweight metric collection for simulations.
//!
//! Counters accumulate totals (bytes moved, tasks launched); gauges record
//! last-written values; histograms bucket samples by power of two so a whole
//! distribution costs 64 words. Everything is keyed by `&'static str` to
//! keep the hot path allocation-free.

use crate::fxmap::FxHashMap;
use crate::time::SimDuration;

/// Power-of-two bucketed histogram (bucket i counts samples with
/// `ilog2(sample) == i`; zero samples land in bucket 0).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let idx = if sample == 0 {
            0
        } else {
            63 - sample.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample as u128;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile from bucket boundaries: returns an upper bound of
    /// the bucket containing the q-quantile. `q` is clamped to [0, 1].
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max
    }
}

/// Event-core health counters, maintained inline by the engine (plain
/// fields, not hash-map counters, so the dispatch hot path stays free of
/// hashing). Read them via [`Stats::queue`]; benchmark bins surface them in
/// their JSON sections so queue regressions show up in the trajectory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever enqueued (dispatched or dropped).
    pub pushes: u64,
    /// High-water mark of pending events.
    pub peak_depth: u64,
    /// Timer firings dropped because the arming was cancelled or
    /// rescheduled before the queue entry surfaced.
    pub cancelled_drops: u64,
    /// Events dropped because their target actor was killed first.
    pub dead_actor_drops: u64,
    /// Timer armings that reused the slot of the timer being handled or
    /// rescheduled (the in-place path — no cancel + re-insert).
    pub timer_rearms: u64,
    /// Distinct timer slots ever allocated (live armings never exceed
    /// this; periodic timers hold one slot forever).
    pub timer_slots: u64,
}

/// Per-actor-class event cost, collected only when profiling is enabled
/// ([`Sim::enable_profiling`](crate::Sim::enable_profiling)). The class is
/// the actor name up to the first `@` — `"mr.tasktracker@17"` and
/// `"mr.tasktracker@9000"` share one row — so the table stays a handful of
/// rows at any cluster size. `nanos` is host wall time spent inside
/// `Actor::handle`; it measures the *simulator's* cost per event (the
/// control-plane scalability number the bench bins pin), never simulated
/// time, and never feeds back into the simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActorCost {
    /// Actor-class label (name up to the first `@`).
    pub class: String,
    /// Events dispatched to actors of this class.
    pub events: u64,
    /// Host nanoseconds spent handling those events.
    pub nanos: u64,
}

/// Metric sink owned by the engine and shared with all actors via `Ctx`.
#[derive(Debug, Default)]
pub struct Stats {
    counters: FxHashMap<&'static str, u64>,
    gauges: FxHashMap<&'static str, f64>,
    histograms: FxHashMap<&'static str, LogHistogram>,
    queue: QueueStats,
    /// Indexed by the class id interned at spawn; rows are append-only so
    /// ids stay stable across [`reset`](Stats::reset) (which zeroes the
    /// counts but keeps the interning).
    actor_costs: Vec<ActorCost>,
}

impl Stats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`.
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Reads gauge `name` (`None` when never set).
    pub fn gauge(&self, name: &'static str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a histogram sample under `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, sample: u64) {
        self.histograms.entry(name).or_default().record(sample);
    }

    /// Records a duration (in nanoseconds) under `name`.
    #[inline]
    pub fn observe_duration(&mut self, name: &'static str, d: SimDuration) {
        self.observe(name, d.as_nanos());
    }

    /// Reads histogram `name` if any sample was recorded.
    pub fn histogram(&self, name: &'static str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in sorted-name order (for stable reports).
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.counters.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Event-core health counters (queue depth, drops, timer reuse).
    #[inline]
    pub fn queue(&self) -> QueueStats {
        self.queue
    }

    /// Engine-internal mutable access to the event-core counters.
    #[inline]
    pub(crate) fn queue_mut(&mut self) -> &mut QueueStats {
        &mut self.queue
    }

    /// Per-actor-class event costs, in class-name order. Empty unless
    /// profiling was enabled
    /// ([`Sim::enable_profiling`](crate::Sim::enable_profiling)) — classes
    /// are interned at spawn regardless, but rows with zero events are
    /// filtered out here so an unprofiled run reports nothing.
    pub fn actor_costs(&self) -> Vec<ActorCost> {
        let mut v: Vec<ActorCost> = self
            .actor_costs
            .iter()
            .filter(|c| c.events > 0)
            .cloned()
            .collect();
        v.sort_unstable_by(|a, b| a.class.cmp(&b.class));
        v
    }

    /// Interns an actor class, returning its stable row id. Linear scan:
    /// class counts are small (one per actor *type*, not per actor) and
    /// this only runs at spawn.
    pub(crate) fn intern_actor_class(&mut self, class: &str) -> u32 {
        if let Some(i) = self.actor_costs.iter().position(|c| c.class == class) {
            return i as u32;
        }
        self.actor_costs.push(ActorCost {
            class: class.to_string(),
            events: 0,
            nanos: 0,
        });
        (self.actor_costs.len() - 1) as u32
    }

    /// Engine-internal: charges one event of `nanos` host time to `class`.
    #[inline]
    pub(crate) fn charge_actor_cost(&mut self, class: u32, nanos: u64) {
        let row = &mut self.actor_costs[class as usize];
        row.events += 1;
        row.nanos += nanos;
    }

    /// Clears all metrics. Actor-class interning survives (ids handed out
    /// at spawn stay valid); the per-class counts are zeroed.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.queue = QueueStats::default();
        for c in &mut self.actor_costs {
            c.events = 0;
            c.nanos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("bytes", 10);
        s.add("bytes", 5);
        s.incr("tasks");
        assert_eq!(s.counter("bytes"), 15);
        assert_eq!(s.counter("tasks"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut s = Stats::new();
        assert_eq!(s.gauge("g"), None);
        s.set_gauge("g", 1.5);
        s.set_gauge("g", 2.5);
        assert_eq!(s.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_stats() {
        let mut h = LogHistogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_quantiles() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        h.record(0);
        for _ in 0..99 {
            h.record(8);
        }
        // Median falls in the bucket holding 8 => upper bound 15.
        assert_eq!(h.quantile_upper_bound(0.5), 15);
        assert_eq!(h.quantile_upper_bound(0.0), 1); // first nonempty bucket
    }

    #[test]
    fn sorted_counters_and_reset() {
        let mut s = Stats::new();
        s.add("z", 1);
        s.add("a", 2);
        assert_eq!(s.counters_sorted(), vec![("a", 2), ("z", 1)]);
        s.reset();
        assert!(s.counters_sorted().is_empty());
    }

    #[test]
    fn observe_duration_records_nanos() {
        let mut s = Stats::new();
        s.observe_duration("lat", SimDuration::from_micros(3));
        assert_eq!(s.histogram("lat").unwrap().max(), 3_000);
    }
}
