//! The discrete-event engine.
//!
//! [`Sim`] owns a priority queue of pending events and a registry of actors.
//! Execution is strictly sequential and deterministic: events fire in
//! `(time, insertion-sequence)` order, so two runs from the same seed replay
//! identically — a property the test suite asserts via trace fingerprints.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::{Actor, ActorId, Event, Msg, TimerHandle};
use crate::fxmap::FxHashSet;
use crate::rng::Xoshiro256;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

enum Payload {
    Start,
    Timer { id: u64, tag: u64 },
    Msg { from: ActorId, msg: Box<dyn Msg> },
}

struct Queued {
    at: SimTime,
    seq: u64,
    target: ActorId,
    payload: Payload,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    // Reversed so the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Slot {
    actor: Option<Box<dyn Actor>>,
    name: String,
}

pub(crate) struct SimCore {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Queued>,
    cancelled_timers: FxHashSet<u64>,
    next_timer_id: u64,
    rng: Xoshiro256,
    stats: Stats,
    stop_requested: bool,
    trace: Trace,
    events_processed: u64,
    event_limit: u64,
}

impl SimCore {
    fn push(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            target,
            payload,
        });
    }
}

/// Summary returned by [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Simulated instant at which the run stopped.
    pub end_time: SimTime,
    /// Number of events dispatched to actors.
    pub events: u64,
}

/// The simulation world: actor registry + event queue + clock.
pub struct Sim {
    core: SimCore,
    actors: Vec<Slot>,
}

impl Sim {
    /// Creates an empty simulation seeded for deterministic randomness.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: SimCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cancelled_timers: FxHashSet::default(),
                next_timer_id: 0,
                rng: Xoshiro256::seed_from_u64(seed),
                stats: Stats::new(),
                stop_requested: false,
                trace: Trace::default(),
                events_processed: 0,
                event_limit: u64::MAX,
            },
            actors: Vec::new(),
        }
    }

    /// Registers an actor; it receives [`Event::Start`] at the current time.
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let name = actor.name();
        self.spawn_named(actor, name)
    }

    /// Registers an actor under an explicit name.
    pub fn spawn_named(&mut self, actor: Box<dyn Actor>, name: impl Into<String>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(Slot {
            actor: Some(actor),
            name: name.into(),
        });
        self.core.push(self.core.now, id, Payload::Start);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Injects a message from the harness (sender = [`ActorId::ENGINE`]).
    pub fn post(&mut self, to: ActorId, msg: Box<dyn Msg>) {
        self.core.push(
            self.core.now,
            to,
            Payload::Msg {
                from: ActorId::ENGINE,
                msg,
            },
        );
    }

    /// Injects a message that arrives after `delay`.
    pub fn post_after(&mut self, to: ActorId, msg: Box<dyn Msg>, delay: SimDuration) {
        self.core.push(
            self.core.now + delay,
            to,
            Payload::Msg {
                from: ActorId::ENGINE,
                msg,
            },
        );
    }

    /// Read access to collected metrics.
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// Mutable access to collected metrics (harness-side bookkeeping).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    /// The engine-level RNG (actors normally use `Ctx::rng`).
    pub fn rng_mut(&mut self) -> &mut Xoshiro256 {
        &mut self.core.rng
    }

    /// Name an actor registered under `id`.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.index()].name
    }

    /// Borrows the concrete state of the actor registered under `id`.
    ///
    /// Returns `None` when the actor is dead (killed) or is not a `T`.
    /// This is the supported way for harnesses and tests to read an
    /// actor's fields after (or between) [`Sim::run`] calls — no shared
    /// cells or wrapper actors needed.
    pub fn actor_ref<T: Actor>(&self, id: ActorId) -> Option<&T> {
        let actor = self.actors.get(id.index())?.actor.as_deref()?;
        (actor as &dyn core::any::Any).downcast_ref::<T>()
    }

    /// Mutably borrows the concrete state of the actor registered under
    /// `id`; see [`Sim::actor_ref`].
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> Option<&mut T> {
        let actor = self.actors.get_mut(id.index())?.actor.as_deref_mut()?;
        (actor as &mut dyn core::any::Any).downcast_mut::<T>()
    }

    /// Whether the actor is still alive (not killed).
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.actors
            .get(id.index())
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Enables event tracing with bounded storage.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace.enable(capacity);
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Caps the number of dispatched events; [`Sim::run`] stops once reached.
    /// Guards tests against accidental event storms.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.core.event_limit = limit;
    }

    /// Runs until the queue empties, an actor calls `Ctx::stop`, or the
    /// event limit is hit.
    pub fn run(&mut self) -> RunSummary {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `deadline` (events at exactly `deadline` still fire).
    /// The clock is left at `min(deadline, time of last event)`.
    ///
    /// A `Ctx::stop` requested during a previous run only ended that run;
    /// each call starts afresh, so a simulation can be resumed (e.g. to
    /// submit more jobs after a driver stopped the world).
    pub fn run_until(&mut self, deadline: SimTime) -> RunSummary {
        self.core.stop_requested = false;
        while !self.core.stop_requested && self.core.events_processed < self.core.event_limit {
            match self.core.queue.peek() {
                None => break,
                Some(q) if q.at > deadline => {
                    self.core.now = deadline;
                    break;
                }
                Some(_) => {}
            }
            self.dispatch_one();
        }
        RunSummary {
            end_time: self.core.now,
            events: self.core.events_processed,
        }
    }

    /// Dispatches exactly one event; returns `false` when the queue is empty
    /// or the simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.core.stop_requested || self.core.queue.is_empty() {
            return false;
        }
        self.dispatch_one();
        true
    }

    fn dispatch_one(&mut self) {
        let Some(q) = self.core.queue.pop() else {
            return;
        };
        debug_assert!(q.at >= self.core.now, "event scheduled in the past");
        self.core.now = q.at;

        // Drop cancelled timers and events for dead actors without charging
        // them against the event budget.
        if let Payload::Timer { id, .. } = q.payload {
            if self.core.cancelled_timers.remove(&id) {
                return;
            }
        }
        let Some(slot) = self.actors.get_mut(q.target.index()) else {
            return;
        };
        let Some(mut actor) = slot.actor.take() else {
            return;
        };

        let ev = match q.payload {
            Payload::Start => Event::Start,
            Payload::Timer { id, tag } => Event::Timer {
                handle: TimerHandle(id),
                tag,
            },
            Payload::Msg { from, msg } => Event::Msg { from, msg },
        };
        self.core.trace.record(q.at, q.target, ev.label());
        self.core.events_processed += 1;

        let mut ctx = Ctx {
            core: &mut self.core,
            actors: &mut self.actors,
            self_id: q.target,
            kill_self: false,
        };
        actor.handle(&mut ctx, ev);
        let killed = ctx.kill_self;
        if !killed {
            // The slot may have moved if `actors` reallocated during spawn,
            // but the index is stable.
            self.actors[q.target.index()].actor = Some(actor);
        }
    }
}

/// Capability handle passed to [`Actor::handle`]: everything an actor may do
/// to the world (send, arm timers, spawn, stop, randomness, metrics).
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    actors: &'a mut Vec<Slot>,
    self_id: ActorId,
    kill_self: bool,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the actor handling this event.
    #[inline]
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` to `to`, delivered at the current instant (after all
    /// events already queued for this instant — FIFO among equal times).
    pub fn send(&mut self, to: ActorId, msg: impl Msg) {
        self.send_after(to, msg, SimDuration::ZERO);
    }

    /// Sends `msg` to `to` with an explicit delivery delay.
    pub fn send_after(&mut self, to: ActorId, msg: impl Msg, delay: SimDuration) {
        let from = self.self_id;
        self.core.push(
            self.core.now + delay,
            to,
            Payload::Msg {
                from,
                msg: Box::new(msg),
            },
        );
    }

    /// Sends a pre-boxed message (avoids re-boxing when forwarding).
    pub fn send_boxed(&mut self, to: ActorId, msg: Box<dyn Msg>, delay: SimDuration) {
        let from = self.self_id;
        self.core
            .push(self.core.now + delay, to, Payload::Msg { from, msg });
    }

    /// Arms a one-shot timer for this actor. The firing event carries `tag`.
    pub fn after(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let id = self.core.next_timer_id;
        self.core.next_timer_id += 1;
        self.core.push(
            self.core.now + delay,
            self.self_id,
            Payload::Timer { id, tag },
        );
        TimerHandle(id)
    }

    /// Arms a one-shot timer that fires at the absolute instant `at`
    /// (clamped to the current instant if `at` is in the past). Useful for
    /// schedulers that track deadlines rather than delays — re-arming at an
    /// unchanged deadline can then be skipped entirely (timer reuse) instead
    /// of paying a cancel + re-insert per event.
    pub fn after_at(&mut self, at: SimTime, tag: u64) -> TimerHandle {
        let at = at.max(self.core.now);
        let id = self.core.next_timer_id;
        self.core.next_timer_id += 1;
        self.core.push(at, self.self_id, Payload::Timer { id, tag });
        TimerHandle(id)
    }

    /// Arms a zero-delay timer: the firing is queued *behind* every event
    /// already scheduled for the current instant, so the actor wakes up
    /// after its same-instant inbox has drained. This is the deferred-wakeup
    /// primitive batch-processing actors (e.g. the network fabric) use to
    /// coalesce a burst of same-instant requests into one unit of work.
    pub fn defer(&mut self, tag: u64) -> TimerHandle {
        self.after(SimDuration::ZERO, tag)
    }

    /// Cancels a timer armed with [`Ctx::after`]; harmless if already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.core.cancelled_timers.insert(handle.0);
    }

    /// Spawns a new actor mid-run; it receives [`Event::Start`] at the
    /// current instant.
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let name = actor.name();
        self.spawn_named(actor, name)
    }

    /// Spawns a new actor under an explicit name.
    pub fn spawn_named(&mut self, actor: Box<dyn Actor>, name: impl Into<String>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(Slot {
            actor: Some(actor),
            name: name.into(),
        });
        self.core.push(self.core.now, id, Payload::Start);
        id
    }

    /// Permanently removes an actor. Pending events addressed to it are
    /// silently dropped. An actor may kill itself.
    pub fn kill(&mut self, id: ActorId) {
        if id == self.self_id {
            self.kill_self = true;
        } else if let Some(slot) = self.actors.get_mut(id.index()) {
            slot.actor = None;
        }
    }

    /// `true` when the actor is alive (the currently-running actor counts as
    /// alive unless it has killed itself).
    pub fn is_alive(&self, id: ActorId) -> bool {
        if id == self.self_id {
            return !self.kill_self;
        }
        self.actors
            .get(id.index())
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Requests a graceful stop; the engine returns after this handler.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }

    /// Deterministic RNG shared by the simulation.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.core.rng
    }

    /// Metric sink.
    #[inline]
    pub fn stats(&mut self) -> &mut Stats {
        &mut self.core.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::MsgExt;

    #[derive(Debug)]
    struct Kick;

    #[derive(Debug)]
    struct Ball(u32);

    /// Bounces a ball back and forth `limit` times, then stops the world.
    struct Player {
        peer: Option<ActorId>,
        limit: u32,
        serve: bool,
    }

    impl Actor for Player {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            match ev {
                Event::Start => {
                    if self.serve {
                        if let Some(peer) = self.peer {
                            ctx.send_after(peer, Ball(0), SimDuration::from_millis(1));
                        }
                    }
                }
                Event::Msg { from, msg } => {
                    if let Ok(ball) = msg.downcast::<Ball>() {
                        ctx.stats().incr("bounces");
                        if ball.0 >= self.limit {
                            ctx.stop();
                        } else {
                            ctx.send_after(from, Ball(ball.0 + 1), SimDuration::from_millis(1));
                        }
                    }
                }
                Event::Timer { .. } => {}
            }
        }

        fn name(&self) -> String {
            "player".into()
        }
    }

    fn ping_pong(limit: u32) -> (Sim, RunSummary) {
        let mut sim = Sim::new(1);
        let a = sim.spawn(Box::new(Player {
            peer: None,
            limit,
            serve: false,
        }));
        let b = sim.spawn(Box::new(Player {
            peer: Some(a),
            limit,
            serve: true,
        }));
        let _ = b;
        let summary = sim.run();
        (sim, summary)
    }

    #[test]
    fn ping_pong_advances_time_and_counts() {
        let (sim, summary) = ping_pong(9);
        // 10 ball deliveries at 1ms spacing.
        assert_eq!(sim.stats().counter("bounces"), 10);
        assert_eq!(summary.end_time, SimTime::from_nanos(10_000_000));
    }

    #[test]
    fn same_time_events_fire_in_send_order() {
        struct Recorder {
            seen: Vec<u32>,
        }
        #[derive(Debug)]
        struct Tag(u32);
        impl Actor for Recorder {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if let Event::Msg { msg, .. } = ev {
                    if let Some(t) = msg.peek::<Tag>() {
                        self.seen.push(t.0);
                        if self.seen.len() == 3 {
                            assert_eq!(self.seen, vec![1, 2, 3]);
                            ctx.stats().incr("done");
                        }
                    }
                }
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn(Box::new(Recorder { seen: vec![] }));
        sim.post(r, Box::new(Tag(1)));
        sim.post(r, Box::new(Tag(2)));
        sim.post(r, Box::new(Tag(3)));
        sim.run();
        assert_eq!(sim.stats().counter("done"), 1);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct T {
            armed: Option<TimerHandle>,
        }
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        let h = ctx.after(SimDuration::from_secs(1), 7);
                        self.armed = Some(h);
                        ctx.after(SimDuration::from_millis(1), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        ctx.cancel_timer(self.armed.take().unwrap());
                    }
                    Event::Timer { tag: 7, .. } => {
                        ctx.stats().incr("must_not_fire");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(T { armed: None }));
        let summary = sim.run();
        assert_eq!(sim.stats().counter("must_not_fire"), 0);
        // Clock still advanced to the cancelled timer's slot? No: cancelled
        // events are popped (advancing now) but not dispatched.
        assert_eq!(summary.end_time, SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Tick;
        impl Actor for Tick {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start | Event::Timer { .. } => {
                        ctx.stats().incr("ticks");
                        ctx.after(SimDuration::from_secs(1), 0);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Tick));
        sim.run_until(SimTime::from_nanos(3_500_000_000));
        // Ticks at t=0,1,2,3 inclusive.
        assert_eq!(sim.stats().counter("ticks"), 4);
        assert_eq!(sim.now(), SimTime::from_nanos(3_500_000_000));
        // Resuming continues from the queue.
        sim.run_until(SimTime::from_nanos(5_500_000_000));
        assert_eq!(sim.stats().counter("ticks"), 6);
    }

    #[test]
    fn killed_actors_drop_pending_events() {
        struct Victim;
        impl Actor for Victim {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    ctx.stats().incr("victim_got_msg");
                }
            }
        }
        struct Killer {
            victim: ActorId,
        }
        impl Actor for Killer {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.send_after(self.victim, Kick, SimDuration::from_secs(2));
                    ctx.after(SimDuration::from_secs(1), 0);
                } else if matches!(ev, Event::Timer { .. }) {
                    ctx.kill(self.victim);
                }
            }
        }
        let mut sim = Sim::new(0);
        let v = sim.spawn(Box::new(Victim));
        sim.spawn(Box::new(Killer { victim: v }));
        sim.run();
        assert_eq!(sim.stats().counter("victim_got_msg"), 0);
        assert!(!sim.is_alive(v));
    }

    #[test]
    fn self_kill_removes_actor() {
        struct Quitter;
        impl Actor for Quitter {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    let me = ctx.self_id();
                    ctx.kill(me);
                    assert!(!ctx.is_alive(me));
                }
            }
        }
        let mut sim = Sim::new(0);
        let q = sim.spawn(Box::new(Quitter));
        sim.run();
        assert!(!sim.is_alive(q));
    }

    #[test]
    fn spawn_during_run_receives_start() {
        struct Parent;
        struct Child;
        impl Actor for Child {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.stats().incr("child_started");
                }
            }
        }
        impl Actor for Parent {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.spawn(Box::new(Child));
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Parent));
        sim.run();
        assert_eq!(sim.stats().counter("child_started"), 1);
    }

    #[test]
    fn event_limit_halts_runaway() {
        struct Storm;
        impl Actor for Storm {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start | Event::Timer { .. } => {
                        ctx.after(SimDuration::ZERO, 0);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.set_event_limit(1000);
        sim.spawn(Box::new(Storm));
        let summary = sim.run();
        assert_eq!(summary.events, 1000);
    }

    #[test]
    fn deterministic_fingerprints() {
        let fp = |seed| {
            let mut sim = Sim::new(seed);
            sim.enable_trace(1 << 14);
            let a = sim.spawn(Box::new(Player {
                peer: None,
                limit: 20,
                serve: false,
            }));
            sim.spawn(Box::new(Player {
                peer: Some(a),
                limit: 20,
                serve: true,
            }));
            sim.run();
            sim.trace().fingerprint()
        };
        assert_eq!(fp(5), fp(5));
    }

    #[test]
    fn post_after_delays_delivery() {
        struct Sink;
        impl Actor for Sink {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    let now = ctx.now();
                    assert_eq!(now, SimTime::from_nanos(5_000_000));
                    ctx.stats().incr("delivered");
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn(Box::new(Sink));
        sim.post_after(s, Box::new(Kick), SimDuration::from_millis(5));
        sim.run();
        assert_eq!(sim.stats().counter("delivered"), 1);
    }

    #[test]
    fn actor_state_is_readable_after_run() {
        struct Counter {
            seen: u32,
        }
        impl Actor for Counter {
            fn handle(&mut self, _: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    self.seen += 1;
                }
            }
        }
        let mut sim = Sim::new(0);
        let c = sim.spawn(Box::new(Counter { seen: 0 }));
        sim.post(c, Box::new(Kick));
        sim.post(c, Box::new(Kick));
        sim.run();
        assert_eq!(sim.actor_ref::<Counter>(c).unwrap().seen, 2);
        sim.actor_mut::<Counter>(c).unwrap().seen = 0;
        assert_eq!(sim.actor_ref::<Counter>(c).unwrap().seen, 0);
        // Wrong type and dead actors both come back None.
        struct Other;
        impl Actor for Other {
            fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
        }
        assert!(sim.actor_ref::<Other>(c).is_none());
    }

    #[test]
    fn defer_fires_after_same_instant_inbox() {
        /// Counts messages seen before the deferred wakeup fires.
        struct Batcher {
            batched: u32,
            wakeups: u32,
        }
        impl Actor for Batcher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Msg { .. } => {
                        if self.batched == 0 {
                            ctx.defer(0);
                        }
                        self.batched += 1;
                    }
                    Event::Timer { .. } => {
                        self.wakeups += 1;
                        assert_eq!(self.batched, 3, "wakeup fired mid-burst");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn(Box::new(Batcher {
            batched: 0,
            wakeups: 0,
        }));
        for _ in 0..3 {
            sim.post(b, Box::new(Kick));
        }
        sim.run();
        let state = sim.actor_ref::<Batcher>(b).unwrap();
        assert_eq!((state.batched, state.wakeups), (3, 1));
    }

    #[test]
    fn after_at_fires_at_absolute_instant_and_clamps_past() {
        struct T;
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        ctx.after_at(SimTime::from_nanos(5_000), 1);
                        // An instant in the past fires "now", not never.
                        ctx.after_at(SimTime::ZERO, 2);
                    }
                    Event::Timer { tag: 1, .. } => {
                        assert_eq!(ctx.now(), SimTime::from_nanos(5_000));
                        ctx.stats().incr("late");
                    }
                    Event::Timer { tag: 2, .. } => {
                        assert_eq!(ctx.now(), SimTime::ZERO);
                        ctx.stats().incr("clamped");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(T));
        sim.run();
        assert_eq!(sim.stats().counter("late"), 1);
        assert_eq!(sim.stats().counter("clamped"), 1);
    }

    #[test]
    fn actor_names_are_registered() {
        struct N;
        impl Actor for N {
            fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
            fn name(&self) -> String {
                "namenode".into()
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(N));
        let b = sim.spawn_named(Box::new(N), "custom");
        assert_eq!(sim.actor_name(a), "namenode");
        assert_eq!(sim.actor_name(b), "custom");
    }
}
