//! The discrete-event engine.
//!
//! [`Sim`] owns a priority queue of pending events and a registry of actors.
//! Execution is strictly sequential and deterministic: events fire in
//! `(time, insertion-sequence)` order, so two runs from the same seed replay
//! identically — a property the test suite asserts via trace fingerprints.

use crate::actor::{Actor, ActorId, Event, Msg, TimerHandle};
use crate::queue::{CalendarQueue, Payload, Queued};
use crate::rng::Xoshiro256;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

struct Slot {
    actor: Option<Box<dyn Actor>>,
    name: String,
    /// Actor-class row id in [`Stats`] (interned at spawn from the name up
    /// to the first `@`), charged per event when profiling is enabled.
    class: u32,
}

pub(crate) struct SimCore {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue,
    /// Current generation of each timer slot. A queued firing carries the
    /// generation it was armed with; a mismatch at pop time means the
    /// timer was cancelled or rescheduled — the entry is dropped without a
    /// hash lookup (the old design kept a tombstone hash set).
    timer_gens: Vec<u32>,
    /// Slots whose timers fired or were cancelled, ready for reuse.
    timer_free: Vec<u32>,
    /// While a timer event dispatches: its slot, until the handler rearms
    /// it in place ([`Ctx::rearm_after`]) or the dispatcher frees it.
    fired_slot: Option<u32>,
    rng: Xoshiro256,
    stats: Stats,
    stop_requested: bool,
    trace: Trace,
    events_processed: u64,
    event_limit: u64,
    /// When set, [`Sim`] times every `Actor::handle` call and charges it to
    /// the actor's class row in [`Stats::actor_costs`]. Off by default: the
    /// measurement is host wall time, read-only for the simulation, and the
    /// flag keeps the branch out of unprofiled dispatch.
    profiling: bool,
}

impl SimCore {
    fn push(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            target,
            payload,
        });
        let qs = self.stats.queue_mut();
        qs.pushes += 1;
        qs.peak_depth = qs.peak_depth.max(self.queue.len() as u64);
    }

    /// Grabs a free timer slot (or mints a new one) at its current
    /// generation.
    fn alloc_timer(&mut self) -> (u32, u32) {
        match self.timer_free.pop() {
            Some(slot) => (slot, self.timer_gens[slot as usize]),
            None => {
                let slot = u32::try_from(self.timer_gens.len()).expect("too many timers");
                self.timer_gens.push(0);
                self.stats.queue_mut().timer_slots = self.timer_gens.len() as u64;
                (slot, 0)
            }
        }
    }

    fn arm_timer(&mut self, at: SimTime, target: ActorId, tag: u64) -> TimerHandle {
        let (slot, gen) = self.alloc_timer();
        self.push(at, target, Payload::Timer { slot, gen, tag });
        TimerHandle::pack(slot, gen)
    }
}

impl TimerHandle {
    #[inline]
    pub(crate) fn pack(slot: u32, gen: u32) -> Self {
        TimerHandle((u64::from(gen) << 32) | u64::from(slot))
    }

    #[inline]
    pub(crate) fn unpack(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

/// Summary returned by [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Simulated instant at which the run stopped.
    pub end_time: SimTime,
    /// Number of events dispatched to actors.
    pub events: u64,
}

/// The simulation world: actor registry + event queue + clock.
pub struct Sim {
    core: SimCore,
    actors: Vec<Slot>,
}

impl Sim {
    /// Creates an empty simulation seeded for deterministic randomness.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: SimCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: CalendarQueue::new(),
                timer_gens: Vec::new(),
                timer_free: Vec::new(),
                fired_slot: None,
                rng: Xoshiro256::seed_from_u64(seed),
                stats: Stats::new(),
                stop_requested: false,
                trace: Trace::default(),
                events_processed: 0,
                event_limit: u64::MAX,
                profiling: false,
            },
            actors: Vec::new(),
        }
    }

    /// Registers an actor; it receives [`Event::Start`] at the current time.
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let name = actor.name();
        self.spawn_named(actor, name)
    }

    /// Registers an actor under an explicit name.
    pub fn spawn_named(&mut self, actor: Box<dyn Actor>, name: impl Into<String>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        let name = name.into();
        let class = self.core.stats.intern_actor_class(actor_class_of(&name));
        self.actors.push(Slot {
            actor: Some(actor),
            name,
            class,
        });
        self.core.push(self.core.now, id, Payload::Start);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Injects a message from the harness (sender = [`ActorId::ENGINE`]).
    pub fn post(&mut self, to: ActorId, msg: Box<dyn Msg>) {
        self.core.push(
            self.core.now,
            to,
            Payload::Msg {
                from: ActorId::ENGINE,
                msg,
            },
        );
    }

    /// Injects a message that arrives after `delay`.
    pub fn post_after(&mut self, to: ActorId, msg: Box<dyn Msg>, delay: SimDuration) {
        self.core.push(
            self.core.now + delay,
            to,
            Payload::Msg {
                from: ActorId::ENGINE,
                msg,
            },
        );
    }

    /// Read access to collected metrics.
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// Mutable access to collected metrics (harness-side bookkeeping).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    /// The engine-level RNG (actors normally use `Ctx::rng`).
    pub fn rng_mut(&mut self) -> &mut Xoshiro256 {
        &mut self.core.rng
    }

    /// Name an actor registered under `id`.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.index()].name
    }

    /// Borrows the concrete state of the actor registered under `id`.
    ///
    /// Returns `None` when the actor is dead (killed) or is not a `T`.
    /// This is the supported way for harnesses and tests to read an
    /// actor's fields after (or between) [`Sim::run`] calls — no shared
    /// cells or wrapper actors needed.
    pub fn actor_ref<T: Actor>(&self, id: ActorId) -> Option<&T> {
        let actor = self.actors.get(id.index())?.actor.as_deref()?;
        (actor as &dyn core::any::Any).downcast_ref::<T>()
    }

    /// Mutably borrows the concrete state of the actor registered under
    /// `id`; see [`Sim::actor_ref`].
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> Option<&mut T> {
        let actor = self.actors.get_mut(id.index())?.actor.as_deref_mut()?;
        (actor as &mut dyn core::any::Any).downcast_mut::<T>()
    }

    /// Whether the actor is still alive (not killed).
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.actors
            .get(id.index())
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Enables per-actor-class event-cost profiling: every subsequent
    /// `Actor::handle` call is timed (host wall clock) and charged to the
    /// actor's class row, readable via [`Stats::actor_costs`]. The
    /// measurement never feeds back into the simulation — event order,
    /// simulated time, and trace fingerprints are identical with or
    /// without it; only dispatch pays one clock read per event.
    pub fn enable_profiling(&mut self) {
        self.core.profiling = true;
    }

    /// Enables event tracing with bounded storage.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace.enable(capacity);
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Caps the number of dispatched events; [`Sim::run`] stops once reached.
    /// Guards tests against accidental event storms.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.core.event_limit = limit;
    }

    /// Runs until the queue empties, an actor calls `Ctx::stop`, or the
    /// event limit is hit.
    pub fn run(&mut self) -> RunSummary {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `deadline` (events at exactly `deadline` still fire).
    /// The clock is left at `min(deadline, time of last event)`.
    ///
    /// A `Ctx::stop` requested during a previous run only ended that run;
    /// each call starts afresh, so a simulation can be resumed (e.g. to
    /// submit more jobs after a driver stopped the world).
    pub fn run_until(&mut self, deadline: SimTime) -> RunSummary {
        self.core.stop_requested = false;
        while !self.core.stop_requested && self.core.events_processed < self.core.event_limit {
            match self.core.queue.next_at() {
                None => break,
                Some(at) if at > deadline => {
                    self.core.now = deadline;
                    break;
                }
                Some(_) => {}
            }
            self.dispatch_one();
        }
        RunSummary {
            end_time: self.core.now,
            events: self.core.events_processed,
        }
    }

    /// Dispatches exactly one event; returns `false` when the queue is empty
    /// or the simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.core.stop_requested || self.core.queue.is_empty() {
            return false;
        }
        self.dispatch_one();
        true
    }

    fn dispatch_one(&mut self) {
        let Some(q) = self.core.queue.pop() else {
            return;
        };
        debug_assert!(q.at >= self.core.now, "event scheduled in the past");
        self.core.now = q.at;

        // Drop cancelled timers and events for dead actors without charging
        // them against the event budget. A stale generation means the
        // arming was cancelled or rescheduled after this entry was queued.
        let mut timer_slot = None;
        if let Payload::Timer { slot, gen, .. } = q.payload {
            if self.core.timer_gens.get(slot as usize) != Some(&gen) {
                self.core.stats.queue_mut().cancelled_drops += 1;
                return;
            }
            timer_slot = Some(slot);
        }
        let retire_timer = |core: &mut SimCore| {
            // The arming is spent: bump the generation (invalidating the
            // handle) and recycle the slot.
            if let Some(slot) = timer_slot {
                core.timer_gens[slot as usize] = core.timer_gens[slot as usize].wrapping_add(1);
                core.timer_free.push(slot);
            }
        };
        let Some(slot) = self.actors.get_mut(q.target.index()) else {
            self.core.stats.queue_mut().dead_actor_drops += 1;
            retire_timer(&mut self.core);
            return;
        };
        let Some(mut actor) = slot.actor.take() else {
            self.core.stats.queue_mut().dead_actor_drops += 1;
            retire_timer(&mut self.core);
            return;
        };
        let actor_class = slot.class;

        let ev = match q.payload {
            Payload::Start => Event::Start,
            Payload::Timer { slot, gen, tag } => Event::Timer {
                handle: TimerHandle::pack(slot, gen),
                tag,
            },
            Payload::Msg { from, msg } => Event::Msg { from, msg },
        };
        self.core.trace.record(q.at, q.target, ev.label());
        self.core.events_processed += 1;

        // Advance the firing timer's generation *before* the handler runs:
        // the in-flight handle is now stale (cancelling it is a no-op) and
        // the slot is ready for an in-place rearm.
        if let Some(slot) = timer_slot {
            self.core.timer_gens[slot as usize] =
                self.core.timer_gens[slot as usize].wrapping_add(1);
            self.core.fired_slot = Some(slot);
        }

        // Host-clock read for opt-in profiling only: the measurement is
        // write-only into `Stats` and never influences event order or
        // simulated time.
        let handle_started = if self.core.profiling {
            Some(std::time::Instant::now()) // audit:allow(wall-clock): opt-in per-actor cost profiling; read-only for the simulation
        } else {
            None
        };
        let mut ctx = Ctx {
            core: &mut self.core,
            actors: &mut self.actors,
            self_id: q.target,
            kill_self: false,
        };
        actor.handle(&mut ctx, ev);
        let killed = ctx.kill_self;
        if let Some(t0) = handle_started {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.core.stats.charge_actor_cost(actor_class, nanos);
        }

        // Slot not consumed by a rearm: recycle it.
        if let Some(slot) = self.core.fired_slot.take() {
            self.core.timer_free.push(slot);
        }
        if !killed {
            // The slot may have moved if `actors` reallocated during spawn,
            // but the index is stable.
            self.actors[q.target.index()].actor = Some(actor);
        }
    }
}

/// The profiling class of an actor name: everything before the first `@`,
/// so per-node actors (`"mr.tasktracker@17"`) collapse into one class.
fn actor_class_of(name: &str) -> &str {
    name.split('@').next().unwrap_or(name)
}

/// Capability handle passed to [`Actor::handle`]: everything an actor may do
/// to the world (send, arm timers, spawn, stop, randomness, metrics).
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    actors: &'a mut Vec<Slot>,
    self_id: ActorId,
    kill_self: bool,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the actor handling this event.
    #[inline]
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` to `to`, delivered at the current instant (after all
    /// events already queued for this instant — FIFO among equal times).
    pub fn send(&mut self, to: ActorId, msg: impl Msg) {
        self.send_after(to, msg, SimDuration::ZERO);
    }

    /// Sends `msg` to `to` with an explicit delivery delay.
    pub fn send_after(&mut self, to: ActorId, msg: impl Msg, delay: SimDuration) {
        let from = self.self_id;
        self.core.push(
            self.core.now + delay,
            to,
            Payload::Msg {
                from,
                msg: Box::new(msg),
            },
        );
    }

    /// Sends a pre-boxed message (avoids re-boxing when forwarding).
    pub fn send_boxed(&mut self, to: ActorId, msg: Box<dyn Msg>, delay: SimDuration) {
        let from = self.self_id;
        self.core
            .push(self.core.now + delay, to, Payload::Msg { from, msg });
    }

    /// Arms a one-shot timer for this actor. The firing event carries `tag`.
    pub fn after(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let at = self.core.now + delay;
        self.core.arm_timer(at, self.self_id, tag)
    }

    /// Arms a one-shot timer that fires at the absolute instant `at`
    /// (clamped to the current instant if `at` is in the past). Useful for
    /// schedulers that track deadlines rather than delays — re-arming at an
    /// unchanged deadline can then be skipped entirely (timer reuse) instead
    /// of paying a cancel + re-insert per event ([`Ctx::reschedule_at`] is
    /// the moving-deadline counterpart).
    pub fn after_at(&mut self, at: SimTime, tag: u64) -> TimerHandle {
        let at = at.max(self.core.now);
        self.core.arm_timer(at, self.self_id, tag)
    }

    /// Rearms the timer whose firing is *currently being handled*, reusing
    /// its slot in place — the periodic-timer fast path (heartbeats,
    /// liveness sweeps): no slot churn, no cancel + re-insert. Dispatch
    /// order is identical to calling [`Ctx::after`] at the same point in
    /// the handler (the queue entry gets the same sequence number); only
    /// the slot bookkeeping differs. Falls back to a fresh arming when the
    /// current event is not a timer firing.
    pub fn rearm_after(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let at = self.core.now + delay;
        match self.core.fired_slot.take() {
            Some(slot) => {
                self.core.stats.queue_mut().timer_rearms += 1;
                let gen = self.core.timer_gens[slot as usize];
                self.core
                    .push(at, self.self_id, Payload::Timer { slot, gen, tag });
                TimerHandle::pack(slot, gen)
            }
            None => self.core.arm_timer(at, self.self_id, tag),
        }
    }

    /// Moves a pending timer to the absolute instant `at` (clamped to the
    /// current instant), reusing its slot: equivalent to — and dispatch-
    /// order-identical with — `cancel_timer` + [`Ctx::after_at`], without
    /// the tombstone bookkeeping. If `handle` already fired or was
    /// cancelled, this is just a fresh arming.
    pub fn reschedule_at(&mut self, handle: TimerHandle, at: SimTime, tag: u64) -> TimerHandle {
        let at = at.max(self.core.now);
        let (slot, gen) = handle.unpack();
        if self.core.timer_gens.get(slot as usize) == Some(&gen) {
            // Invalidate the pending entry (it will surface as a
            // cancelled drop) and re-arm the same slot one generation up.
            let gen = gen.wrapping_add(1);
            self.core.timer_gens[slot as usize] = gen;
            self.core.stats.queue_mut().timer_rearms += 1;
            self.core
                .push(at, self.self_id, Payload::Timer { slot, gen, tag });
            TimerHandle::pack(slot, gen)
        } else {
            self.core.arm_timer(at, self.self_id, tag)
        }
    }

    /// Arms a zero-delay timer: the firing is queued *behind* every event
    /// already scheduled for the current instant, so the actor wakes up
    /// after its same-instant inbox has drained. This is the deferred-wakeup
    /// primitive batch-processing actors (e.g. the network fabric) use to
    /// coalesce a burst of same-instant requests into one unit of work.
    pub fn defer(&mut self, tag: u64) -> TimerHandle {
        self.after(SimDuration::ZERO, tag)
    }

    /// Cancels a timer armed with [`Ctx::after`]; harmless if already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        let (slot, gen) = handle.unpack();
        if self.core.timer_gens.get(slot as usize) == Some(&gen) {
            // Invalidate the pending queue entry (dropped at pop, no hash
            // tombstone) and recycle the slot immediately.
            self.core.timer_gens[slot as usize] = gen.wrapping_add(1);
            self.core.timer_free.push(slot);
        }
    }

    /// Spawns a new actor mid-run; it receives [`Event::Start`] at the
    /// current instant.
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let name = actor.name();
        self.spawn_named(actor, name)
    }

    /// Spawns a new actor under an explicit name.
    pub fn spawn_named(&mut self, actor: Box<dyn Actor>, name: impl Into<String>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        let name = name.into();
        let class = self.core.stats.intern_actor_class(actor_class_of(&name));
        self.actors.push(Slot {
            actor: Some(actor),
            name,
            class,
        });
        self.core.push(self.core.now, id, Payload::Start);
        id
    }

    /// Permanently removes an actor. Pending events addressed to it are
    /// silently dropped. An actor may kill itself.
    pub fn kill(&mut self, id: ActorId) {
        if id == self.self_id {
            self.kill_self = true;
        } else if let Some(slot) = self.actors.get_mut(id.index()) {
            slot.actor = None;
        }
    }

    /// `true` when the actor is alive (the currently-running actor counts as
    /// alive unless it has killed itself).
    pub fn is_alive(&self, id: ActorId) -> bool {
        if id == self.self_id {
            return !self.kill_self;
        }
        self.actors
            .get(id.index())
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Requests a graceful stop; the engine returns after this handler.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }

    /// Deterministic RNG shared by the simulation.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.core.rng
    }

    /// Metric sink.
    #[inline]
    pub fn stats(&mut self) -> &mut Stats {
        &mut self.core.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::MsgExt;

    #[derive(Debug)]
    struct Kick;

    #[derive(Debug)]
    struct Ball(u32);

    /// Bounces a ball back and forth `limit` times, then stops the world.
    struct Player {
        peer: Option<ActorId>,
        limit: u32,
        serve: bool,
    }

    impl Actor for Player {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            match ev {
                Event::Start => {
                    if self.serve {
                        if let Some(peer) = self.peer {
                            ctx.send_after(peer, Ball(0), SimDuration::from_millis(1));
                        }
                    }
                }
                Event::Msg { from, msg } => {
                    if let Ok(ball) = msg.downcast::<Ball>() {
                        ctx.stats().incr("bounces");
                        if ball.0 >= self.limit {
                            ctx.stop();
                        } else {
                            ctx.send_after(from, Ball(ball.0 + 1), SimDuration::from_millis(1));
                        }
                    }
                }
                Event::Timer { .. } => {}
            }
        }

        fn name(&self) -> String {
            "player".into()
        }
    }

    fn ping_pong(limit: u32) -> (Sim, RunSummary) {
        let mut sim = Sim::new(1);
        let a = sim.spawn(Box::new(Player {
            peer: None,
            limit,
            serve: false,
        }));
        let b = sim.spawn(Box::new(Player {
            peer: Some(a),
            limit,
            serve: true,
        }));
        let _ = b;
        let summary = sim.run();
        (sim, summary)
    }

    #[test]
    fn ping_pong_advances_time_and_counts() {
        let (sim, summary) = ping_pong(9);
        // 10 ball deliveries at 1ms spacing.
        assert_eq!(sim.stats().counter("bounces"), 10);
        assert_eq!(summary.end_time, SimTime::from_nanos(10_000_000));
    }

    #[test]
    fn same_time_events_fire_in_send_order() {
        struct Recorder {
            seen: Vec<u32>,
        }
        #[derive(Debug)]
        struct Tag(u32);
        impl Actor for Recorder {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if let Event::Msg { msg, .. } = ev {
                    if let Some(t) = msg.peek::<Tag>() {
                        self.seen.push(t.0);
                        if self.seen.len() == 3 {
                            assert_eq!(self.seen, vec![1, 2, 3]);
                            ctx.stats().incr("done");
                        }
                    }
                }
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn(Box::new(Recorder { seen: vec![] }));
        sim.post(r, Box::new(Tag(1)));
        sim.post(r, Box::new(Tag(2)));
        sim.post(r, Box::new(Tag(3)));
        sim.run();
        assert_eq!(sim.stats().counter("done"), 1);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct T {
            armed: Option<TimerHandle>,
        }
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        let h = ctx.after(SimDuration::from_secs(1), 7);
                        self.armed = Some(h);
                        ctx.after(SimDuration::from_millis(1), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        ctx.cancel_timer(self.armed.take().unwrap());
                    }
                    Event::Timer { tag: 7, .. } => {
                        ctx.stats().incr("must_not_fire");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(T { armed: None }));
        let summary = sim.run();
        assert_eq!(sim.stats().counter("must_not_fire"), 0);
        // Clock still advanced to the cancelled timer's slot? No: cancelled
        // events are popped (advancing now) but not dispatched.
        assert_eq!(summary.end_time, SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Tick;
        impl Actor for Tick {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start | Event::Timer { .. } => {
                        ctx.stats().incr("ticks");
                        ctx.after(SimDuration::from_secs(1), 0);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Tick));
        sim.run_until(SimTime::from_nanos(3_500_000_000));
        // Ticks at t=0,1,2,3 inclusive.
        assert_eq!(sim.stats().counter("ticks"), 4);
        assert_eq!(sim.now(), SimTime::from_nanos(3_500_000_000));
        // Resuming continues from the queue.
        sim.run_until(SimTime::from_nanos(5_500_000_000));
        assert_eq!(sim.stats().counter("ticks"), 6);
    }

    #[test]
    fn killed_actors_drop_pending_events() {
        struct Victim;
        impl Actor for Victim {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    ctx.stats().incr("victim_got_msg");
                }
            }
        }
        struct Killer {
            victim: ActorId,
        }
        impl Actor for Killer {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.send_after(self.victim, Kick, SimDuration::from_secs(2));
                    ctx.after(SimDuration::from_secs(1), 0);
                } else if matches!(ev, Event::Timer { .. }) {
                    ctx.kill(self.victim);
                }
            }
        }
        let mut sim = Sim::new(0);
        let v = sim.spawn(Box::new(Victim));
        sim.spawn(Box::new(Killer { victim: v }));
        sim.run();
        assert_eq!(sim.stats().counter("victim_got_msg"), 0);
        assert!(!sim.is_alive(v));
    }

    #[test]
    fn self_kill_removes_actor() {
        struct Quitter;
        impl Actor for Quitter {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    let me = ctx.self_id();
                    ctx.kill(me);
                    assert!(!ctx.is_alive(me));
                }
            }
        }
        let mut sim = Sim::new(0);
        let q = sim.spawn(Box::new(Quitter));
        sim.run();
        assert!(!sim.is_alive(q));
    }

    #[test]
    fn spawn_during_run_receives_start() {
        struct Parent;
        struct Child;
        impl Actor for Child {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.stats().incr("child_started");
                }
            }
        }
        impl Actor for Parent {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.spawn(Box::new(Child));
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Parent));
        sim.run();
        assert_eq!(sim.stats().counter("child_started"), 1);
    }

    #[test]
    fn event_limit_halts_runaway() {
        struct Storm;
        impl Actor for Storm {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start | Event::Timer { .. } => {
                        ctx.after(SimDuration::ZERO, 0);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.set_event_limit(1000);
        sim.spawn(Box::new(Storm));
        let summary = sim.run();
        assert_eq!(summary.events, 1000);
    }

    #[test]
    fn deterministic_fingerprints() {
        let fp = |seed| {
            let mut sim = Sim::new(seed);
            sim.enable_trace(1 << 14);
            let a = sim.spawn(Box::new(Player {
                peer: None,
                limit: 20,
                serve: false,
            }));
            sim.spawn(Box::new(Player {
                peer: Some(a),
                limit: 20,
                serve: true,
            }));
            sim.run();
            sim.trace().fingerprint()
        };
        assert_eq!(fp(5), fp(5));
    }

    #[test]
    fn post_after_delays_delivery() {
        struct Sink;
        impl Actor for Sink {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    let now = ctx.now();
                    assert_eq!(now, SimTime::from_nanos(5_000_000));
                    ctx.stats().incr("delivered");
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn(Box::new(Sink));
        sim.post_after(s, Box::new(Kick), SimDuration::from_millis(5));
        sim.run();
        assert_eq!(sim.stats().counter("delivered"), 1);
    }

    #[test]
    fn actor_state_is_readable_after_run() {
        struct Counter {
            seen: u32,
        }
        impl Actor for Counter {
            fn handle(&mut self, _: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Msg { .. }) {
                    self.seen += 1;
                }
            }
        }
        let mut sim = Sim::new(0);
        let c = sim.spawn(Box::new(Counter { seen: 0 }));
        sim.post(c, Box::new(Kick));
        sim.post(c, Box::new(Kick));
        sim.run();
        assert_eq!(sim.actor_ref::<Counter>(c).unwrap().seen, 2);
        sim.actor_mut::<Counter>(c).unwrap().seen = 0;
        assert_eq!(sim.actor_ref::<Counter>(c).unwrap().seen, 0);
        // Wrong type and dead actors both come back None.
        struct Other;
        impl Actor for Other {
            fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
        }
        assert!(sim.actor_ref::<Other>(c).is_none());
    }

    #[test]
    fn defer_fires_after_same_instant_inbox() {
        /// Counts messages seen before the deferred wakeup fires.
        struct Batcher {
            batched: u32,
            wakeups: u32,
        }
        impl Actor for Batcher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Msg { .. } => {
                        if self.batched == 0 {
                            ctx.defer(0);
                        }
                        self.batched += 1;
                    }
                    Event::Timer { .. } => {
                        self.wakeups += 1;
                        assert_eq!(self.batched, 3, "wakeup fired mid-burst");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn(Box::new(Batcher {
            batched: 0,
            wakeups: 0,
        }));
        for _ in 0..3 {
            sim.post(b, Box::new(Kick));
        }
        sim.run();
        let state = sim.actor_ref::<Batcher>(b).unwrap();
        assert_eq!((state.batched, state.wakeups), (3, 1));
    }

    #[test]
    fn after_at_fires_at_absolute_instant_and_clamps_past() {
        struct T;
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        ctx.after_at(SimTime::from_nanos(5_000), 1);
                        // An instant in the past fires "now", not never.
                        ctx.after_at(SimTime::ZERO, 2);
                    }
                    Event::Timer { tag: 1, .. } => {
                        assert_eq!(ctx.now(), SimTime::from_nanos(5_000));
                        ctx.stats().incr("late");
                    }
                    Event::Timer { tag: 2, .. } => {
                        assert_eq!(ctx.now(), SimTime::ZERO);
                        ctx.stats().incr("clamped");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(T));
        sim.run();
        assert_eq!(sim.stats().counter("late"), 1);
        assert_eq!(sim.stats().counter("clamped"), 1);
    }

    #[test]
    fn rearm_after_reuses_slot_and_keeps_order() {
        struct Beat {
            beats: u32,
        }
        impl Actor for Beat {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        ctx.after(SimDuration::from_secs(1), 0);
                    }
                    Event::Timer { .. } => {
                        self.beats += 1;
                        if self.beats < 5 {
                            ctx.rearm_after(SimDuration::from_secs(1), 0);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Beat { beats: 0 }));
        let summary = sim.run();
        assert_eq!(summary.end_time, SimTime::from_nanos(5_000_000_000));
        let qs = sim.stats().queue();
        // One slot serves the whole periodic chain.
        assert_eq!(qs.timer_slots, 1);
        assert_eq!(qs.timer_rearms, 4);
        assert_eq!(qs.cancelled_drops, 0);
    }

    #[test]
    fn reschedule_at_moves_deadline_without_double_fire() {
        struct T {
            armed: Option<TimerHandle>,
            fired_at: Option<SimTime>,
        }
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        self.armed = Some(ctx.after(SimDuration::from_secs(5), 7));
                        ctx.after(SimDuration::from_secs(1), 1);
                    }
                    Event::Timer { tag: 1, .. } => {
                        // Pull the deadline in from t=5s to t=2s.
                        let h = self.armed.take().unwrap();
                        self.armed = Some(ctx.reschedule_at(h, SimTime::from_nanos(2e9 as u64), 7));
                    }
                    Event::Timer { tag: 7, .. } => {
                        assert!(self.fired_at.is_none(), "deadline timer fired twice");
                        self.fired_at = Some(ctx.now());
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(T {
            armed: None,
            fired_at: None,
        }));
        sim.run();
        let t = sim.actor_ref::<T>(a).unwrap();
        assert_eq!(t.fired_at, Some(SimTime::from_nanos(2_000_000_000)));
        let qs = sim.stats().queue();
        // The superseded t=5s entry surfaces once and is dropped.
        assert_eq!(qs.cancelled_drops, 1);
        assert_eq!(qs.timer_rearms, 1);
    }

    #[test]
    fn cancelled_handles_are_inert_after_slot_reuse() {
        struct T {
            old: Option<TimerHandle>,
        }
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Start => {
                        let h = ctx.after(SimDuration::from_secs(9), 1);
                        ctx.cancel_timer(h);
                        self.old = Some(h);
                        // Reuses the freed slot at a newer generation.
                        ctx.after(SimDuration::from_secs(1), 2);
                    }
                    Event::Timer { tag: 2, .. } => {
                        // Cancelling the stale handle must not kill the
                        // slot's current occupant...
                        ctx.cancel_timer(self.old.unwrap());
                        ctx.after(SimDuration::from_secs(1), 3);
                    }
                    Event::Timer { tag: 3, .. } => {
                        ctx.stats().incr("third_fire");
                    }
                    Event::Timer { tag: 1, .. } => {
                        ctx.stats().incr("must_not_fire");
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(T { old: None }));
        sim.run();
        assert_eq!(sim.stats().counter("must_not_fire"), 0);
        assert_eq!(sim.stats().counter("third_fire"), 1);
    }

    #[test]
    fn queue_stats_track_depth_and_drops() {
        let (sim, _) = ping_pong(9);
        let qs = sim.stats().queue();
        // 2 Starts + 10 ball messages.
        assert_eq!(qs.pushes, 12);
        assert!(qs.peak_depth >= 2);
        assert_eq!(qs.dead_actor_drops, 0);

        // Dead-actor drops: the killed victim's pending message.
        struct Victim;
        impl Actor for Victim {
            fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
        }
        struct Killer {
            victim: ActorId,
        }
        impl Actor for Killer {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if matches!(ev, Event::Start) {
                    ctx.send_after(self.victim, Kick, SimDuration::from_secs(2));
                    ctx.after(SimDuration::from_secs(1), 0);
                } else if matches!(ev, Event::Timer { .. }) {
                    ctx.kill(self.victim);
                }
            }
        }
        let mut sim = Sim::new(0);
        let v = sim.spawn(Box::new(Victim));
        sim.spawn(Box::new(Killer { victim: v }));
        sim.run();
        assert_eq!(sim.stats().queue().dead_actor_drops, 1);
    }

    #[test]
    fn actor_names_are_registered() {
        struct N;
        impl Actor for N {
            fn handle(&mut self, _: &mut Ctx<'_>, _: Event) {}
            fn name(&self) -> String {
                "namenode".into()
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(N));
        let b = sim.spawn_named(Box::new(N), "custom");
        assert_eq!(sim.actor_name(a), "namenode");
        assert_eq!(sim.actor_name(b), "custom");
    }
}
