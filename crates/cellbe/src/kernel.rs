//! Kernel interfaces for SPU offload, plus the concrete kernels the paper
//! runs (AES encryption and Monte Carlo Pi).
//!
//! Two shapes exist, matching the two workload classes of the evaluation:
//!
//! * [`DataKernel`] — a streaming transform over bytes DMA'd through the
//!   local store (data-intensive: AES).
//! * [`ComputeKernel`] — pure computation parameterized by a unit count
//!   with negligible data movement (CPU-intensive: Pi sampling).

use std::sync::Arc;

use accelmr_kernels::aes::modes::ctr_xor;
use accelmr_kernels::cost::{self, Engine};
use accelmr_kernels::{Aes128, AesImpl};

/// A byte-streaming SPU kernel: transforms local-store blocks in place.
pub trait DataKernel: Send + Sync {
    /// Kernel name (reports, traces).
    fn name(&self) -> &'static str;
    /// SPU cost, cycles per input byte.
    fn cycles_per_byte(&self) -> f64;
    /// Transforms one block in place. `abs_offset` is the block's absolute
    /// byte offset within the logical stream (CTR kernels derive counters
    /// from it so split execution stays byte-compatible with serial).
    fn exec(&self, abs_offset: u64, data: &mut [u8]);
}

/// A unit-counted SPU kernel with no streaming input.
pub trait ComputeKernel: Send + Sync {
    /// Kernel name (reports, traces).
    fn name(&self) -> &'static str;
    /// SPU cost, cycles per unit.
    fn cycles_per_unit(&self) -> f64;
    /// Executes `units` units on SPE `spe`, returning an accumulable result
    /// (for Pi: the inside-circle count).
    fn exec(&self, spe: usize, units: u64) -> u64;
}

/// AES-128/CTR on the SPU SIMD engine — the paper's Cell-accelerated
/// encryption kernel. CTR (rather than ECB) keeps split-level parallelism
/// byte-identical to a serial pass, which the integration tests verify.
#[derive(Clone)]
pub struct AesCtrSpeKernel {
    key: Arc<Aes128>,
    nonce: u64,
}

impl AesCtrSpeKernel {
    /// Builds the kernel for a key and stream nonce.
    pub fn new(key: Arc<Aes128>, nonce: u64) -> Self {
        AesCtrSpeKernel { key, nonce }
    }
}

impl DataKernel for AesCtrSpeKernel {
    fn name(&self) -> &'static str {
        "aes128-ctr-spu"
    }

    fn cycles_per_byte(&self) -> f64 {
        cost::cost(Engine::SpeSimd).aes_cycles_per_byte
    }

    fn exec(&self, abs_offset: u64, data: &mut [u8]) {
        debug_assert_eq!(abs_offset % 16, 0, "blocks must be 16-byte aligned");
        ctr_xor(
            &self.key,
            AesImpl::Lanes4,
            self.nonce,
            abs_offset / 16,
            data,
        );
    }
}

/// Pass-through kernel with a configurable cycle cost; used by DMA-focused
/// ablation benches and as the "empty" SPU program.
#[derive(Clone, Copy, Debug)]
pub struct IdentityKernel {
    cycles_per_byte: f64,
}

impl IdentityKernel {
    /// An identity transform charging `cycles_per_byte` per byte.
    pub fn new(cycles_per_byte: f64) -> Self {
        IdentityKernel { cycles_per_byte }
    }
}

impl DataKernel for IdentityKernel {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn cycles_per_byte(&self) -> f64 {
        self.cycles_per_byte
    }

    fn exec(&self, _abs_offset: u64, _data: &mut [u8]) {}
}

/// Monte Carlo Pi on the SPU SIMD engine. Per-SPE RNG streams are forked
/// from `(seed, stream_base + spe)` so any distribution of units across
/// SPEs stays reproducible.
#[derive(Clone, Copy, Debug)]
pub struct PiSpeKernel {
    seed: u64,
    stream_base: u64,
}

impl PiSpeKernel {
    /// Builds the kernel for a seed and a per-mapper stream namespace.
    pub fn new(seed: u64, stream_base: u64) -> Self {
        PiSpeKernel { seed, stream_base }
    }
}

impl ComputeKernel for PiSpeKernel {
    fn name(&self) -> &'static str {
        "pi-montecarlo-spu"
    }

    fn cycles_per_unit(&self) -> f64 {
        cost::cost(Engine::SpeSimd).pi_cycles_per_sample
    }

    fn exec(&self, spe: usize, units: u64) -> u64 {
        accelmr_kernels::pi::count_inside_auto(self.seed, self.stream_base + spe as u64, units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_kernels::fill_deterministic;

    #[test]
    fn aes_kernel_blocks_compose_to_serial_stream() {
        let key = Arc::new(Aes128::new(b"spu-kernel-key!!"));
        let kernel = AesCtrSpeKernel::new(key.clone(), 99);

        let mut serial = vec![0u8; 256];
        fill_deterministic(1, 0, &mut serial);
        let mut split = serial.clone();

        ctr_xor(&key, AesImpl::Scalar, 99, 0, &mut serial);

        // Kernel executed block-by-block out of order.
        kernel.exec(128, &mut split[128..]);
        kernel.exec(0, &mut split[..128]);
        assert_eq!(serial, split);
    }

    #[test]
    fn aes_kernel_cost_comes_from_calibration_table() {
        let key = Arc::new(Aes128::new(&[0u8; 16]));
        let kernel = AesCtrSpeKernel::new(key, 0);
        assert!((kernel.cycles_per_byte() - 36.6).abs() < 1e-9);
    }

    #[test]
    fn identity_kernel_is_noop() {
        let k = IdentityKernel::new(0.5);
        let mut data = vec![1u8, 2, 3];
        k.exec(0, &mut data);
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(k.cycles_per_byte(), 0.5);
    }

    #[test]
    fn pi_kernel_streams_differ_by_spe() {
        let k = PiSpeKernel::new(7, 100);
        let a = k.exec(0, 10_000);
        let b = k.exec(1, 10_000);
        assert_ne!(a, b);
        // Reproducible.
        assert_eq!(a, k.exec(0, 10_000));
        // Sane fraction (~pi/4).
        let frac = a as f64 / 10_000.0;
        assert!((0.75..0.82).contains(&frac), "{frac}");
    }
}
