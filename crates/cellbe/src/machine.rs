//! The Cell BE machine: an event-driven model of SPU offload execution.
//!
//! One [`CellMachine`] is one Cell processor. Its `run_data` method executes
//! the paper's "direct" native library: the PPE splits an input buffer into
//! aligned blocks (4 KB in the paper), stripes them across SPEs, and each
//! SPE runs a double-buffered pipeline — DMA-get block *i+1* and DMA-put
//! block *i−1* while computing block *i*. DMA requests contend for the
//! shared memory interface, which a single-server fluid queue models; MFC
//! queue depth and local-store capacity are enforced, not assumed.
//!
//! In **materialized** mode the kernel really executes on bytes that
//! traveled through the simulated local store; in **virtual** mode only
//! timing is computed. Both modes take the identical event path, so timing
//! can never diverge between them (a unit test pins this).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use accelmr_des::{SimDuration, SimTime};

use crate::config::{CellConfig, CellConfigError};
use crate::kernel::{ComputeKernel, DataKernel};
use crate::localstore::{LocalStore, LsBuffer};

/// Input to a data-parallel offload run.
pub enum DataInput<'a> {
    /// Timing-only run over `len` virtual bytes.
    Virtual(u64),
    /// Functional run: the kernel transforms a copy of these bytes.
    Real(&'a [u8]),
}

impl DataInput<'_> {
    /// Input length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            DataInput::Virtual(n) => *n,
            DataInput::Real(b) => b.len() as u64,
        }
    }

    /// `true` for zero-length inputs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What one offload session did and how long it took.
#[derive(Clone, Debug)]
pub struct OffloadReport {
    /// Wall time of the session, including start-up costs.
    pub elapsed: SimDuration,
    /// Start-up portion (context creation if cold + session start).
    pub startup: SimDuration,
    /// Number of SPU work blocks processed.
    pub blocks: u64,
    /// Bytes DMA'd into local stores.
    pub bytes_in: u64,
    /// Bytes DMA'd back to main memory.
    pub bytes_out: u64,
    /// MFC transfer commands issued (blocks may split into ≤16 KB chunks).
    pub dma_requests: u64,
    /// Peak in-flight MFC commands observed on any single SPE.
    pub peak_mfc_queue: usize,
    /// Per-SPE compute-busy time.
    pub spe_busy: Vec<SimDuration>,
    /// Total time the memory interface was transferring.
    pub bus_busy: SimDuration,
    /// Transformed bytes (materialized runs only).
    pub output: Option<Vec<u8>>,
    /// Per-SPE results of a compute run (e.g. Pi inside-counts).
    pub unit_results: Vec<u64>,
}

impl OffloadReport {
    /// Effective throughput in bytes/second over input bytes.
    pub fn throughput_bps(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes_in as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean SPE utilization over the session (0..=1).
    pub fn mean_spe_utilization(&self) -> f64 {
        if self.spe_busy.is_empty() || self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        let total: f64 = self.spe_busy.iter().map(|d| d.as_secs_f64()).sum();
        total / (self.spe_busy.len() as f64 * self.elapsed.as_secs_f64())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[allow(clippy::enum_variant_names)]
enum Ev {
    FetchDone { spe: usize, block: u64, buf: usize },
    ComputeDone { spe: usize, block: u64, buf: usize },
    PutDone { spe: usize, buf: usize },
}

struct SpeRun {
    /// Blocks assigned to this SPE (stripe), next index to fetch.
    assigned: Vec<u64>,
    next_fetch: usize,
    /// Fetched blocks awaiting compute.
    ready: VecDeque<(u64, usize)>,
    computing: bool,
    free_buffers: Vec<usize>,
    inflight_mfc: usize,
    busy: SimDuration,
}

/// Shared memory-interface arbiter: a deterministic single-server queue.
struct Bus {
    free_at: SimTime,
    busy: SimDuration,
    bytes_per_sec: f64,
    latency: SimDuration,
}

impl Bus {
    /// Serves `bytes` starting no earlier than `now`; returns the completion
    /// instant (including the fixed request latency, which does not occupy
    /// the bus).
    fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let occupancy = SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.free_at = start + occupancy;
        self.busy += occupancy;
        self.free_at + self.latency
    }
}

/// One simulated Cell processor. Contexts stay warm across sessions, so the
/// first offload pays [`CellConfig::context_create`] and later ones only
/// [`CellConfig::session_start`] — exactly the effect behind the small-N
/// shape of the paper's Figure 6.
pub struct CellMachine {
    cfg: CellConfig,
    stores: Vec<LocalStore>,
    materialized: bool,
    warm: bool,
}

impl CellMachine {
    /// Builds a machine. `materialized` selects functional simulation.
    pub fn new(cfg: CellConfig, materialized: bool) -> Result<Self, CellConfigError> {
        cfg.validate()?;
        let stores = (0..cfg.n_spes)
            .map(|_| LocalStore::new(cfg.local_store_bytes, cfg.code_stack_bytes, materialized))
            .collect();
        Ok(CellMachine {
            cfg,
            stores,
            materialized,
            warm: false,
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// `true` once SPU contexts exist (after any run or [`Self::warm_up`]).
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Pays the context-creation cost up front (the single-node bandwidth
    /// harness does this; the paper's Figure 2 numbers average warmed runs).
    pub fn warm_up(&mut self) -> SimDuration {
        if self.warm {
            SimDuration::ZERO
        } else {
            self.warm = true;
            self.cfg.context_create
        }
    }

    fn take_startup(&mut self) -> SimDuration {
        let cold = if self.warm {
            SimDuration::ZERO
        } else {
            self.warm = true;
            self.cfg.context_create
        };
        cold + self.cfg.session_start
    }

    /// Runs a data-parallel kernel over `input` in `block_size`-byte blocks.
    pub fn run_data(
        &mut self,
        input: DataInput<'_>,
        kernel: &dyn DataKernel,
        block_size: usize,
    ) -> Result<OffloadReport, CellConfigError> {
        self.run_data_at(input, kernel, block_size, 0)
    }

    /// Like [`CellMachine::run_data`], but kernel `exec` calls receive
    /// absolute offsets shifted by `base_offset` — required when the input
    /// is one record of a larger logical stream (CTR counter derivation).
    pub fn run_data_at(
        &mut self,
        input: DataInput<'_>,
        kernel: &dyn DataKernel,
        block_size: usize,
        base_offset: u64,
    ) -> Result<OffloadReport, CellConfigError> {
        self.cfg.check_block_size(block_size)?;
        let len = input.len();
        let startup = self.take_startup();
        if len == 0 {
            return Ok(OffloadReport {
                elapsed: startup,
                startup,
                blocks: 0,
                bytes_in: 0,
                bytes_out: 0,
                dma_requests: 0,
                peak_mfc_queue: 0,
                spe_busy: vec![SimDuration::ZERO; self.cfg.n_spes],
                bus_busy: SimDuration::ZERO,
                output: self.materialized.then(Vec::new),
                unit_results: Vec::new(),
            });
        }

        let n_spes = self.cfg.n_spes;
        let n_blocks = len.div_ceil(block_size as u64);
        let block_len = |b: u64| -> u64 {
            let start = b * block_size as u64;
            (len - start).min(block_size as u64)
        };

        // Materialized state: output buffer + per-SPE LS buffers (2 each,
        // used in place for input and output).
        let mut output = if self.materialized {
            match &input {
                DataInput::Real(bytes) => Some(bytes.to_vec()),
                DataInput::Virtual(_) => Some(vec![0u8; len as usize]),
            }
        } else {
            None
        };
        let mut ls_buffers: Vec<Vec<LsBuffer>> = Vec::with_capacity(n_spes);
        for store in &mut self.stores {
            store.reset();
            let bufs = (0..2)
                .map(|_| store.alloc(block_size, self.cfg.alignment))
                .collect::<Result<Vec<_>, _>>()?;
            ls_buffers.push(bufs);
        }

        // Stripe assignment: block i -> SPE i % n_spes (the paper's
        // round-robin "sent to the SPUs" distribution).
        let mut spes: Vec<SpeRun> = (0..n_spes)
            .map(|s| SpeRun {
                assigned: (0..n_blocks)
                    .filter(|b| (b % n_spes as u64) == s as u64)
                    .collect(),
                next_fetch: 0,
                ready: VecDeque::new(),
                computing: false,
                free_buffers: vec![0, 1],
                inflight_mfc: 0,
                busy: SimDuration::ZERO,
            })
            .collect();

        let mut bus = Bus {
            free_at: SimTime::ZERO + startup,
            busy: SimDuration::ZERO,
            bytes_per_sec: self.cfg.bus_bytes_per_sec,
            latency: self.cfg.dma_latency,
        };

        let mut queue: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |q: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>, at: SimTime, ev: Ev| {
            seq += 1;
            q.push(Reverse((at, seq, ev)));
        };

        let mut dma_requests = 0u64;
        let mut peak_mfc = 0usize;
        let mut bytes_in = 0u64;
        let mut bytes_out = 0u64;
        let mut puts_done = 0u64;
        let t0 = SimTime::ZERO + startup;
        let mut last_event = t0;

        // Issue initial fetches.
        for s in 0..n_spes {
            issue_fetches(
                &self.cfg,
                &mut spes,
                s,
                t0,
                &mut bus,
                &mut queue,
                &mut push,
                &mut dma_requests,
                &mut peak_mfc,
                &mut bytes_in,
                block_len,
            );
        }

        // Event loop.
        while let Some(Reverse((now, _, ev))) = queue.pop() {
            last_event = now;
            match ev {
                Ev::FetchDone { spe, block, buf } => {
                    spes[spe].inflight_mfc -= 1;
                    // Materialized: the bytes land in the local store now.
                    if let Some(out) = &output {
                        let start = (block * block_size as u64) as usize;
                        let blen = block_len(block) as usize;
                        let slice = out[start..start + blen].to_vec();
                        self.stores[spe].write(ls_buffers[spe][buf], 0, &slice);
                    }
                    spes[spe].ready.push_back((block, buf));
                    maybe_start_compute(
                        &self.cfg, &mut spes, spe, now, kernel, &mut queue, &mut push, block_len,
                    );
                }
                Ev::ComputeDone { spe, block, buf } => {
                    spes[spe].computing = false;
                    let blen = block_len(block) as usize;
                    // Functional execution in the local store.
                    if output.is_some() {
                        let abs = base_offset + block * block_size as u64;
                        if let Some(slice) =
                            self.stores[spe].slice_mut(ls_buffers[spe][buf], 0, blen)
                        {
                            kernel.exec(abs, slice);
                        }
                    }
                    // DMA-put the result.
                    let done = bus.transfer(now, blen as u64);
                    bytes_out += blen as u64;
                    dma_requests += (blen as u64).div_ceil(self.cfg.dma_max_transfer as u64);
                    spes[spe].inflight_mfc += 1;
                    peak_mfc = peak_mfc.max(spes[spe].inflight_mfc);
                    // Copy out of the LS into the output image.
                    if let Some(out) = &mut output {
                        let start = (block * block_size as u64) as usize;
                        if let Some(data) = self.stores[spe].read(ls_buffers[spe][buf], 0, blen) {
                            out[start..start + blen].copy_from_slice(data);
                        }
                    }
                    push(&mut queue, done, Ev::PutDone { spe, buf });
                    maybe_start_compute(
                        &self.cfg, &mut spes, spe, now, kernel, &mut queue, &mut push, block_len,
                    );
                }
                Ev::PutDone { spe, buf } => {
                    spes[spe].inflight_mfc -= 1;
                    spes[spe].free_buffers.push(buf);
                    puts_done += 1;
                    issue_fetches(
                        &self.cfg,
                        &mut spes,
                        spe,
                        now,
                        &mut bus,
                        &mut queue,
                        &mut push,
                        &mut dma_requests,
                        &mut peak_mfc,
                        &mut bytes_in,
                        block_len,
                    );
                }
            }
        }
        debug_assert_eq!(
            puts_done, n_blocks,
            "pipeline stalled: not all blocks completed"
        );

        Ok(OffloadReport {
            elapsed: last_event - SimTime::ZERO,
            startup,
            blocks: n_blocks,
            bytes_in,
            bytes_out,
            dma_requests,
            peak_mfc_queue: peak_mfc,
            spe_busy: spes.into_iter().map(|s| s.busy).collect(),
            bus_busy: bus.busy,
            output,
            unit_results: Vec::new(),
        })
    }

    /// Runs a compute-parallel kernel: `units` split evenly across SPEs.
    pub fn run_compute(&mut self, units: u64, kernel: &dyn ComputeKernel) -> OffloadReport {
        let startup = self.take_startup();
        let n = self.cfg.n_spes as u64;
        let base = units / n;
        let rem = units % n;
        let mut spe_busy = Vec::with_capacity(self.cfg.n_spes);
        let mut unit_results = Vec::with_capacity(self.cfg.n_spes);
        let mut max_busy = SimDuration::ZERO;
        for s in 0..self.cfg.n_spes {
            let my_units = base + u64::from((s as u64) < rem);
            let busy = if my_units == 0 {
                SimDuration::ZERO
            } else {
                self.cfg.dispatch_overhead
                    + self.cfg.cycles(kernel.cycles_per_unit() * my_units as f64)
            };
            max_busy = max_busy.max(busy);
            spe_busy.push(busy);
            unit_results.push(if my_units == 0 {
                0
            } else {
                kernel.exec(s, my_units)
            });
        }
        OffloadReport {
            elapsed: startup + max_busy,
            startup,
            blocks: 0,
            bytes_in: 0,
            bytes_out: 0,
            dma_requests: 0,
            peak_mfc_queue: 0,
            spe_busy,
            bus_busy: SimDuration::ZERO,
            output: None,
            unit_results,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn issue_fetches(
    cfg: &CellConfig,
    spes: &mut [SpeRun],
    spe: usize,
    now: SimTime,
    bus: &mut Bus,
    queue: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    push: &mut impl FnMut(&mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>, SimTime, Ev),
    dma_requests: &mut u64,
    peak_mfc: &mut usize,
    bytes_in: &mut u64,
    block_len: impl Fn(u64) -> u64,
) {
    loop {
        let s = &mut spes[spe];
        if s.next_fetch >= s.assigned.len()
            || s.free_buffers.is_empty()
            || s.inflight_mfc >= cfg.mfc_queue_depth
        {
            return;
        }
        let block = s.assigned[s.next_fetch];
        s.next_fetch += 1;
        let buf = s.free_buffers.pop().expect("checked non-empty");
        let blen = block_len(block);
        s.inflight_mfc += 1;
        *peak_mfc = (*peak_mfc).max(s.inflight_mfc);
        *bytes_in += blen;
        *dma_requests += blen.div_ceil(cfg.dma_max_transfer as u64);
        let done = bus.transfer(now + cfg.dispatch_overhead, blen);
        push(queue, done, Ev::FetchDone { spe, block, buf });
    }
}

#[allow(clippy::too_many_arguments)]
fn maybe_start_compute(
    cfg: &CellConfig,
    spes: &mut [SpeRun],
    spe: usize,
    now: SimTime,
    kernel: &dyn DataKernel,
    queue: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    push: &mut impl FnMut(&mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>, SimTime, Ev),
    block_len: impl Fn(u64) -> u64,
) {
    let s = &mut spes[spe];
    if s.computing {
        return;
    }
    let Some((block, buf)) = s.ready.pop_front() else {
        return;
    };
    s.computing = true;
    let cycles = kernel.cycles_per_byte() * block_len(block) as f64;
    let dur = cfg.cycles(cycles);
    s.busy += dur;
    push(queue, now + dur, Ev::ComputeDone { spe, block, buf });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AesCtrSpeKernel, IdentityKernel, PiSpeKernel};
    use accelmr_kernels::aes::modes::ctr_xor;
    use accelmr_kernels::{fill_deterministic, Aes128, AesImpl};
    use std::sync::Arc;

    fn machine(materialized: bool) -> CellMachine {
        CellMachine::new(CellConfig::default(), materialized).unwrap()
    }

    #[test]
    fn functional_run_produces_correct_ciphertext() {
        let mut m = machine(true);
        let key = Arc::new(Aes128::new(b"machine-test-key"));
        let kernel = AesCtrSpeKernel::new(key.clone(), 5);

        let mut input = vec![0u8; 300_000]; // spans many 4K blocks + tail
        fill_deterministic(9, 0, &mut input);
        let report = m.run_data(DataInput::Real(&input), &kernel, 4096).unwrap();

        let mut expect = input.clone();
        ctr_xor(&key, AesImpl::Scalar, 5, 0, &mut expect);
        assert_eq!(report.output.as_deref(), Some(expect.as_slice()));
        assert_eq!(report.blocks, 300_000u64.div_ceil(4096));
        assert_eq!(report.bytes_in, 300_000);
        assert_eq!(report.bytes_out, 300_000);
    }

    #[test]
    fn virtual_and_materialized_timing_agree() {
        let key = Arc::new(Aes128::new(&[1u8; 16]));
        let kernel = AesCtrSpeKernel::new(key, 0);
        let mut input = vec![0u8; 128 * 1024];
        fill_deterministic(3, 0, &mut input);

        let mut mv = machine(false);
        let rv = mv
            .run_data(DataInput::Virtual(input.len() as u64), &kernel, 4096)
            .unwrap();
        let mut mm = machine(true);
        let rm = mm.run_data(DataInput::Real(&input), &kernel, 4096).unwrap();
        assert_eq!(rv.elapsed, rm.elapsed);
        assert_eq!(rv.dma_requests, rm.dma_requests);
        assert_eq!(rv.bus_busy, rm.bus_busy);
    }

    #[test]
    fn cold_then_warm_sessions() {
        let mut m = machine(false);
        let kernel = IdentityKernel::new(1.0);
        let r1 = m.run_data(DataInput::Virtual(4096), &kernel, 4096).unwrap();
        let r2 = m.run_data(DataInput::Virtual(4096), &kernel, 4096).unwrap();
        let ctx = CellConfig::default().context_create;
        assert_eq!(r1.startup, ctx + CellConfig::default().session_start);
        assert_eq!(r2.startup, CellConfig::default().session_start);
        assert!(r1.elapsed > r2.elapsed);
    }

    #[test]
    fn warm_up_pays_context_once() {
        let mut m = machine(false);
        assert_eq!(m.warm_up(), CellConfig::default().context_create);
        assert_eq!(m.warm_up(), SimDuration::ZERO);
        assert!(m.is_warm());
    }

    #[test]
    fn steady_state_throughput_matches_calibration() {
        // 64 MB warm run: compute-bound at ~700 MB/s per Cell.
        let mut m = machine(false);
        m.warm_up();
        let key = Arc::new(Aes128::new(&[0u8; 16]));
        let kernel = AesCtrSpeKernel::new(key, 0);
        let r = m
            .run_data(DataInput::Virtual(64 << 20), &kernel, 4096)
            .unwrap();
        let mbps = r.throughput_bps() / 1e6;
        assert!((620.0..720.0).contains(&mbps), "throughput {mbps} MB/s");
        // SPEs nearly fully busy.
        assert!(
            r.mean_spe_utilization() > 0.9,
            "{}",
            r.mean_spe_utilization()
        );
    }

    #[test]
    fn empty_input_costs_only_startup() {
        let mut m = machine(true);
        let kernel = IdentityKernel::new(1.0);
        let r = m.run_data(DataInput::Virtual(0), &kernel, 4096).unwrap();
        assert_eq!(r.elapsed, r.startup);
        assert_eq!(r.blocks, 0);
    }

    #[test]
    fn mfc_queue_depth_never_exceeded() {
        let mut m = machine(false);
        let kernel = IdentityKernel::new(0.1); // DMA-bound: stresses the bus
        let r = m
            .run_data(DataInput::Virtual(8 << 20), &kernel, 16 * 1024)
            .unwrap();
        assert!(r.peak_mfc_queue <= CellConfig::default().mfc_queue_depth);
        assert!(r.peak_mfc_queue >= 1);
    }

    #[test]
    fn dma_requests_account_for_chunking() {
        let mut m = machine(false);
        let kernel = IdentityKernel::new(1.0);
        // 32 KB blocks split into two 16 KB MFC commands each direction.
        let r = m
            .run_data(DataInput::Virtual(1 << 20), &kernel, 32 * 1024)
            .unwrap();
        let blocks = (1u64 << 20) / (32 * 1024);
        assert_eq!(r.dma_requests, blocks * 2 * 2);
    }

    #[test]
    fn compute_run_splits_units_and_sums_results() {
        let mut m = machine(false);
        let kernel = PiSpeKernel::new(11, 0);
        let r = m.run_compute(100_000, &kernel);
        assert_eq!(r.unit_results.len(), 8);
        let total: u64 = r.unit_results.iter().sum();
        let est = 4.0 * total as f64 / 100_000.0;
        assert!((est - std::f64::consts::PI).abs() < 0.05, "{est}");
        // Elapsed ≈ startup + per-SPE compute of 12500 samples.
        let expect = CellConfig::default().context_create.as_secs_f64()
            + CellConfig::default().session_start.as_secs_f64()
            + 12_500.0 * 256.0 / 3.2e9;
        assert!((r.elapsed.as_secs_f64() - expect).abs() / expect < 0.01);
    }

    #[test]
    fn compute_run_with_fewer_units_than_spes() {
        let mut m = machine(false);
        let kernel = PiSpeKernel::new(1, 0);
        let r = m.run_compute(3, &kernel);
        let worked = r
            .spe_busy
            .iter()
            .filter(|d| **d > SimDuration::ZERO)
            .count();
        assert_eq!(worked, 3);
        assert!(r.unit_results.iter().sum::<u64>() <= 3);
    }

    #[test]
    fn rejects_oversized_blocks() {
        let mut m = machine(false);
        let kernel = IdentityKernel::new(1.0);
        assert!(m
            .run_data(DataInput::Virtual(1 << 20), &kernel, 128 * 1024)
            .is_err());
    }
}
