//! Closed-form estimator for offload sessions.
//!
//! Distributed experiments simulate thousands of offload sessions; replaying
//! the block-level event loop for each would dominate harness wall time. The
//! estimator computes session duration analytically from the *same*
//! [`CellConfig`] constants, and a property test pins it to the detailed
//! event model within a small tolerance — so the fast path can never drift
//! from the mechanism it summarizes.

use accelmr_des::SimDuration;

use crate::config::CellConfig;

/// Estimated duration of a data-parallel offload session (excluding
/// context-creation/session start-up, which the caller owns).
pub fn data_run_body(
    cfg: &CellConfig,
    bytes: u64,
    cycles_per_byte: f64,
    block_size: usize,
) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    let n_blocks = bytes.div_ceil(block_size as u64) as f64;
    // Aggregate steady-state rates.
    let compute_rate = cfg.n_spes as f64 * cfg.clock_hz / cycles_per_byte.max(1e-12);
    // Every byte crosses the memory interface twice (get + put).
    let bus_rate = cfg.bus_bytes_per_sec / 2.0;
    let steady = bytes as f64 / compute_rate.min(bus_rate);
    // Pipeline fill (first block's fetch) and drain (last block's put),
    // plus per-block dispatch amortized over SPEs.
    let fill = block_size as f64 / cfg.bus_bytes_per_sec
        + cfg.dma_latency.as_secs_f64()
        + cfg.dispatch_overhead.as_secs_f64();
    let drain = block_size.min(bytes as usize) as f64 / cfg.bus_bytes_per_sec
        + cfg.dma_latency.as_secs_f64();
    let dispatch = n_blocks * cfg.dispatch_overhead.as_secs_f64() / cfg.n_spes as f64;
    SimDuration::from_secs_f64(steady + fill + drain + dispatch)
}

/// Estimated duration of a compute-parallel session body: the slowest SPE's
/// share of `units`.
pub fn compute_run_body(cfg: &CellConfig, units: u64, cycles_per_unit: f64) -> SimDuration {
    if units == 0 {
        return SimDuration::ZERO;
    }
    let per_spe = units.div_ceil(cfg.n_spes as u64);
    cfg.cycles(cycles_per_unit * per_spe as f64) + cfg.dispatch_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ComputeKernel, DataKernel, IdentityKernel, PiSpeKernel};
    use crate::machine::{CellMachine, DataInput};

    struct FixedCost(f64);
    impl DataKernel for FixedCost {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn cycles_per_byte(&self) -> f64 {
            self.0
        }
        fn exec(&self, _: u64, _: &mut [u8]) {}
    }

    fn relative_error(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.max(1e-12)
    }

    #[test]
    fn data_estimate_tracks_detailed_model_compute_bound() {
        let cfg = CellConfig::default();
        for bytes in [1u64 << 20, 16 << 20, 64 << 20] {
            let mut m = CellMachine::new(cfg.clone(), false).unwrap();
            m.warm_up();
            let kernel = FixedCost(36.6);
            let detailed = m
                .run_data(DataInput::Virtual(bytes), &kernel, 4096)
                .unwrap();
            let body = detailed.elapsed - detailed.startup;
            let est = data_run_body(&cfg, bytes, 36.6, 4096);
            assert!(
                relative_error(est.as_secs_f64(), body.as_secs_f64()) < 0.05,
                "bytes={bytes} est={est} detailed={body}"
            );
        }
    }

    #[test]
    fn data_estimate_tracks_detailed_model_bus_bound() {
        let cfg = CellConfig::default();
        let mut m = CellMachine::new(cfg.clone(), false).unwrap();
        m.warm_up();
        let kernel = IdentityKernel::new(0.25); // DMA-dominated
        let bytes = 32u64 << 20;
        let detailed = m
            .run_data(DataInput::Virtual(bytes), &kernel, 16 * 1024)
            .unwrap();
        let body = detailed.elapsed - detailed.startup;
        let est = data_run_body(&cfg, bytes, 0.25, 16 * 1024);
        assert!(
            relative_error(est.as_secs_f64(), body.as_secs_f64()) < 0.10,
            "est={est} detailed={body}"
        );
    }

    #[test]
    fn compute_estimate_matches_machine_exactly_modulo_rounding() {
        let cfg = CellConfig::default();
        let mut m = CellMachine::new(cfg.clone(), false).unwrap();
        m.warm_up();
        let kernel = PiSpeKernel::new(0, 0);
        let units = 1_000_000u64;
        let r = m.run_compute(units, &kernel);
        let body = r.elapsed - r.startup;
        let est = compute_run_body(&cfg, units, kernel.cycles_per_unit());
        assert!(
            relative_error(est.as_secs_f64(), body.as_secs_f64()) < 0.001,
            "est={est} detailed={body}"
        );
    }

    #[test]
    fn zero_work_estimates_are_zero() {
        let cfg = CellConfig::default();
        assert_eq!(data_run_body(&cfg, 0, 36.6, 4096), SimDuration::ZERO);
        assert_eq!(compute_run_body(&cfg, 0, 256.0), SimDuration::ZERO);
    }
}
