//! Cell BE machine parameters.
//!
//! Defaults reflect the QS22 blades of the paper's MareIncognito testbed:
//! a 3.2 GHz Cell with eight SPEs, 256 KB local stores, an MFC per SPE with
//! a 16-deep command queue and 16 KB maximum transfer size, and an
//! EIB/memory interface able to move 8 bytes per cycle in each direction
//! (25.6 GB/s).

use accelmr_des::SimDuration;

/// Static description of one Cell BE processor.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Core clock, Hz (PPE and SPEs share it).
    pub clock_hz: f64,
    /// Number of Synergistic Processing Elements.
    pub n_spes: usize,
    /// Local store capacity per SPE, bytes.
    pub local_store_bytes: usize,
    /// Bytes reserved in each local store for kernel code + stack.
    pub code_stack_bytes: usize,
    /// Maximum size of one MFC DMA transfer, bytes.
    pub dma_max_transfer: usize,
    /// MFC command-queue depth (in-flight DMA requests per SPE).
    pub mfc_queue_depth: usize,
    /// Memory-interface bandwidth shared by all SPEs, bytes/second.
    pub bus_bytes_per_sec: f64,
    /// Fixed latency of one DMA request before data starts flowing.
    pub dma_latency: SimDuration,
    /// PPE-side cost to enqueue one work block to an SPU (mailbox write,
    /// bookkeeping).
    pub dispatch_overhead: SimDuration,
    /// One-time cost of creating SPU contexts and uploading kernel code —
    /// paid once per process; this is what makes the small-N end of the
    /// paper's Figure 6 so slow.
    pub context_create: SimDuration,
    /// Per-offload-session cost (argument marshalling, run/stop mailbox
    /// round-trips) — this shapes the small-size ramp of Figure 2.
    pub session_start: SimDuration,
    /// Required DMA alignment, bytes (Cell SIMD: 16-byte boundaries).
    pub alignment: usize,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            clock_hz: 3.2e9,
            n_spes: 8,
            local_store_bytes: 256 * 1024,
            code_stack_bytes: 64 * 1024,
            dma_max_transfer: 16 * 1024,
            mfc_queue_depth: 16,
            bus_bytes_per_sec: 25.6e9,
            dma_latency: SimDuration::from_nanos(120),
            dispatch_overhead: SimDuration::from_nanos(400),
            context_create: SimDuration::from_millis(450),
            session_start: SimDuration::from_millis(3),
            alignment: 16,
        }
    }
}

/// Errors from validating a configuration or a job against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellConfigError {
    /// A structural parameter is zero or otherwise degenerate.
    Degenerate(&'static str),
    /// Requested SPU buffers don't fit in the local store.
    LocalStoreOverflow {
        /// Bytes the buffering scheme needs.
        needed: usize,
        /// Bytes available after code/stack reservation.
        available: usize,
    },
    /// A buffer is not aligned to [`CellConfig::alignment`].
    Misaligned(&'static str),
}

impl std::fmt::Display for CellConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellConfigError::Degenerate(what) => write!(f, "degenerate config: {what}"),
            CellConfigError::LocalStoreOverflow { needed, available } => write!(
                f,
                "local store overflow: need {needed} bytes, have {available}"
            ),
            CellConfigError::Misaligned(what) => write!(f, "misaligned: {what}"),
        }
    }
}

impl std::error::Error for CellConfigError {}

impl CellConfig {
    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), CellConfigError> {
        if self.n_spes == 0 {
            return Err(CellConfigError::Degenerate("n_spes = 0"));
        }
        if self.clock_hz <= 0.0 || self.clock_hz.is_nan() {
            return Err(CellConfigError::Degenerate("clock_hz <= 0"));
        }
        if self.bus_bytes_per_sec <= 0.0 || self.bus_bytes_per_sec.is_nan() {
            return Err(CellConfigError::Degenerate("bus bandwidth <= 0"));
        }
        if self.dma_max_transfer == 0 || self.mfc_queue_depth == 0 {
            return Err(CellConfigError::Degenerate("MFC parameters zero"));
        }
        if self.local_store_bytes <= self.code_stack_bytes {
            return Err(CellConfigError::Degenerate(
                "local store smaller than code/stack reservation",
            ));
        }
        if self.alignment == 0 || !self.alignment.is_power_of_two() {
            return Err(CellConfigError::Degenerate("alignment not a power of two"));
        }
        Ok(())
    }

    /// Local-store bytes usable for data buffers.
    pub fn usable_ls_bytes(&self) -> usize {
        self.local_store_bytes - self.code_stack_bytes
    }

    /// Checks a double-buffered scheme (2 in + 2 out buffers of
    /// `block_size`, each padded to alignment) fits the local store.
    pub fn check_block_size(&self, block_size: usize) -> Result<(), CellConfigError> {
        if block_size == 0 {
            return Err(CellConfigError::Degenerate("block_size = 0"));
        }
        if !block_size.is_multiple_of(self.alignment) {
            return Err(CellConfigError::Misaligned("block_size"));
        }
        let needed = 4 * block_size;
        let available = self.usable_ls_bytes();
        if needed > available {
            return Err(CellConfigError::LocalStoreOverflow { needed, available });
        }
        Ok(())
    }

    /// Converts SPU cycles to simulated time.
    #[inline]
    pub fn cycles(&self, cycles: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles / self.clock_hz)
    }

    /// Pure wire time of moving `bytes` over the memory interface.
    #[inline]
    pub fn bus_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bus_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_hardware() {
        let c = CellConfig::default();
        c.validate().unwrap();
        assert_eq!(c.n_spes, 8);
        assert_eq!(c.local_store_bytes, 256 * 1024);
        assert_eq!(c.dma_max_transfer, 16 * 1024);
        assert_eq!(c.mfc_queue_depth, 16);
        // 8 bytes/cycle at 3.2 GHz.
        assert!((c.bus_bytes_per_sec - 8.0 * 3.2e9).abs() < 1.0);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let c = CellConfig {
            n_spes: 0,
            ..CellConfig::default()
        };
        assert!(matches!(c.validate(), Err(CellConfigError::Degenerate(_))));

        let c = CellConfig {
            code_stack_bytes: CellConfig::default().local_store_bytes,
            ..CellConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CellConfig {
            alignment: 3,
            ..CellConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn block_size_check() {
        let c = CellConfig::default();
        c.check_block_size(4096).unwrap();
        // 4 * 48K = 192K <= 192K usable: fits exactly.
        c.check_block_size(48 * 1024).unwrap();
        assert!(matches!(
            c.check_block_size(64 * 1024),
            Err(CellConfigError::LocalStoreOverflow { .. })
        ));
        assert!(matches!(
            c.check_block_size(100),
            Err(CellConfigError::Misaligned(_))
        ));
        assert!(c.check_block_size(0).is_err());
    }

    #[test]
    fn time_conversions() {
        let c = CellConfig::default();
        assert_eq!(c.cycles(3.2e9).as_nanos(), 1_000_000_000);
        assert_eq!(c.bus_time(25_600_000_000).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn error_display() {
        let e = CellConfigError::LocalStoreOverflow {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("overflow"));
    }
}
