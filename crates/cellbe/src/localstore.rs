//! SPE local store model.
//!
//! Each SPE owns 256 KB of private memory; all data it touches must be
//! DMA'd in and out explicitly. The model tracks a bump allocation map (the
//! offload runtime's buffer layout) and, in functional mode, holds real
//! bytes so kernels execute on data that physically traveled through the
//! simulated store.

use crate::config::CellConfigError;

/// One SPE's local store: an allocation map plus (optionally) real backing
/// bytes.
#[derive(Debug)]
pub struct LocalStore {
    capacity: usize,
    reserved: usize,
    cursor: usize,
    data: Option<Vec<u8>>,
}

/// A buffer allocated inside a local store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsBuffer {
    /// Offset of the buffer within the local store.
    pub offset: usize,
    /// Buffer length in bytes.
    pub len: usize,
}

impl LocalStore {
    /// Creates a store of `capacity` bytes with the first `reserved` bytes
    /// held back for code/stack. `materialized` allocates real backing
    /// memory (functional simulation); otherwise only the map is tracked.
    pub fn new(capacity: usize, reserved: usize, materialized: bool) -> Self {
        assert!(reserved <= capacity, "reservation exceeds capacity");
        LocalStore {
            capacity,
            reserved,
            cursor: reserved,
            data: materialized.then(|| vec![0u8; capacity]),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes still available for allocation.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.cursor
    }

    /// `true` when the store holds real bytes.
    pub fn is_materialized(&self) -> bool {
        self.data.is_some()
    }

    /// Allocates `len` bytes aligned to `align`.
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<LsBuffer, CellConfigError> {
        debug_assert!(align.is_power_of_two());
        let offset = (self.cursor + align - 1) & !(align - 1);
        let end = offset.checked_add(len).ok_or(CellConfigError::Degenerate(
            "local store allocation overflow",
        ))?;
        if end > self.capacity {
            return Err(CellConfigError::LocalStoreOverflow {
                needed: end - self.reserved,
                available: self.capacity - self.reserved,
            });
        }
        self.cursor = end;
        Ok(LsBuffer { offset, len })
    }

    /// Releases every allocation (buffers are reused across blocks; the
    /// offload runtime resets between sessions).
    pub fn reset(&mut self) {
        self.cursor = self.reserved;
    }

    /// Copies bytes into the store (the destination of a DMA get).
    /// No-op in virtual mode.
    pub fn write(&mut self, buf: LsBuffer, at: usize, bytes: &[u8]) {
        debug_assert!(at + bytes.len() <= buf.len, "write past buffer end");
        if let Some(data) = &mut self.data {
            data[buf.offset + at..buf.offset + at + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Reads bytes out of the store (the source of a DMA put). Returns
    /// `None` in virtual mode.
    pub fn read(&self, buf: LsBuffer, at: usize, len: usize) -> Option<&[u8]> {
        debug_assert!(at + len <= buf.len, "read past buffer end");
        self.data
            .as_ref()
            .map(|d| &d[buf.offset + at..buf.offset + at + len])
    }

    /// Mutable view of a buffer for in-place kernel execution.
    /// Returns `None` in virtual mode.
    pub fn slice_mut(&mut self, buf: LsBuffer, at: usize, len: usize) -> Option<&mut [u8]> {
        debug_assert!(at + len <= buf.len);
        self.data
            .as_mut()
            .map(|d| &mut d[buf.offset + at..buf.offset + at + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_capacity() {
        let mut ls = LocalStore::new(1024, 100, false);
        let a = ls.alloc(10, 16).unwrap();
        assert_eq!(a.offset % 16, 0);
        assert!(a.offset >= 100);
        let b = ls.alloc(10, 16).unwrap();
        assert!(b.offset >= a.offset + a.len);
        assert!(ls.alloc(2048, 16).is_err());
    }

    #[test]
    fn reset_reclaims_space() {
        let mut ls = LocalStore::new(256, 0, false);
        ls.alloc(200, 16).unwrap();
        assert!(ls.alloc(200, 16).is_err());
        ls.reset();
        ls.alloc(200, 16).unwrap();
    }

    #[test]
    fn materialized_round_trip() {
        let mut ls = LocalStore::new(512, 0, true);
        let buf = ls.alloc(64, 16).unwrap();
        ls.write(buf, 0, b"hello spu");
        assert_eq!(ls.read(buf, 0, 9).unwrap(), b"hello spu");
        // In-place mutation (what a kernel does).
        ls.slice_mut(buf, 0, 5).unwrap().copy_from_slice(b"HELLO");
        assert_eq!(ls.read(buf, 0, 9).unwrap(), b"HELLO spu");
    }

    #[test]
    fn virtual_mode_tracks_map_only() {
        let mut ls = LocalStore::new(512, 0, false);
        let buf = ls.alloc(64, 16).unwrap();
        assert!(!ls.is_materialized());
        ls.write(buf, 0, b"ignored");
        assert!(ls.read(buf, 0, 7).is_none());
        assert!(ls.slice_mut(buf, 0, 7).is_none());
    }

    #[test]
    #[should_panic(expected = "reservation exceeds capacity")]
    fn reservation_larger_than_capacity_panics() {
        LocalStore::new(10, 20, false);
    }
}
