//! # accelmr-cellbe — Cell Broadband Engine simulator
//!
//! A functional + timing model of the Cell BE processor the paper's QS22
//! blades carry: one PPE and eight SPEs with 256 KB private local stores,
//! per-SPE MFC DMA queues (16 commands deep, ≤16 KB per transfer), and a
//! shared memory interface moving 8 bytes/cycle each way at 3.2 GHz.
//!
//! The crate ships the paper's "direct" SPE offload library: a
//! double-buffered runtime ([`CellMachine::run_data`]) that stripes aligned
//! blocks across SPEs, overlapping DMA with compute, plus a compute-parallel
//! path ([`CellMachine::run_compute`]) for workloads like Monte Carlo Pi.
//! In materialized mode kernels really execute on bytes that traveled
//! through the simulated local stores, so end-to-end tests can verify real
//! ciphertext; in virtual mode the identical event path computes timing
//! only. A closed-form [`estimate`] module mirrors the event model for the
//! distributed experiments' fast path and is property-tested against it.

pub mod config;
pub mod estimate;
pub mod kernel;
pub mod localstore;
pub mod machine;

pub use config::{CellConfig, CellConfigError};
pub use kernel::{AesCtrSpeKernel, ComputeKernel, DataKernel, IdentityKernel, PiSpeKernel};
pub use localstore::{LocalStore, LsBuffer};
pub use machine::{CellMachine, DataInput, OffloadReport};
