//! Criterion wrapper around the smallest figure regenerations, so
//! `cargo bench` exercises the full simulated stack end to end and tracks
//! harness regressions. (The full-scale sweeps are the fig* binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use accelmr_hybrid::experiments::{fig2, fig6, Fig2Params, Fig6Params};
use accelmr_hybrid::experiments::dist::{run_encrypt_job, run_pi_job, AesMapper, PiMapper};
use accelmr_mapred::MrConfig;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_single_node_sweep", |b| {
        let params = Fig2Params {
            sizes_mb: vec![1, 16, 256],
            ..Fig2Params::default()
        };
        b.iter(|| black_box(fig2(&params).series.len()));
    });

    group.bench_function("fig6_single_node_sweep", |b| {
        let params = Fig6Params {
            samples: vec![1_000, 1_000_000, 1_000_000_000],
            seed: 1,
        };
        b.iter(|| black_box(fig6(&params).series.len()));
    });

    group.bench_function("fig5_point_4nodes_8gb_cell", |b| {
        b.iter(|| {
            let r = run_encrypt_job(1, 4, 8 << 30, AesMapper::Cell, &MrConfig::default());
            black_box(r.elapsed)
        });
    });

    group.bench_function("fig8_point_4nodes_1e9_cell", |b| {
        b.iter(|| {
            let (r, _) = run_pi_job(2, 4, 1_000_000_000, PiMapper::Cell, &MrConfig::default());
            black_box(r.elapsed)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
