//! Criterion microbenches of the simulation substrates: DES event loop,
//! max-min flow solver, Cell machine event model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use accelmr_cellbe::{CellConfig, CellMachine, DataInput, IdentityKernel};
use accelmr_des::prelude::*;
use accelmr_net::{max_min_rates, FlowDemand, LinkId, LinkTable};

fn bench_des(c: &mut Criterion) {
    struct Bouncer {
        peer: Option<ActorId>,
        left: u32,
    }
    #[derive(Debug)]
    struct Ball;
    impl Actor for Bouncer {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            match ev {
                Event::Start => {
                    if let Some(p) = self.peer {
                        ctx.send(p, Ball);
                    }
                }
                Event::Msg { from, .. } => {
                    if self.left == 0 {
                        ctx.stop();
                    } else {
                        self.left -= 1;
                        ctx.send_after(from, Ball, SimDuration::from_nanos(10));
                    }
                }
                _ => {}
            }
        }
    }

    let mut group = c.benchmark_group("des_engine");
    let events = 20_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("ping_pong_dispatch", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let a = sim.spawn(Box::new(Bouncer { peer: None, left: events as u32 }));
            sim.spawn(Box::new(Bouncer { peer: Some(a), left: events as u32 }));
            black_box(sim.run().events)
        });
    });
    group.finish();
}

fn bench_flow_solver(c: &mut Criterion) {
    let mut links = LinkTable::new();
    for _ in 0..64 {
        links.add(125.0e6);
    }
    let flows: Vec<FlowDemand> = (0..128)
        .map(|i| FlowDemand {
            links: vec![LinkId(i % 64), LinkId((i * 7 + 3) % 64)],
            cap: if i % 3 == 0 { 8.5e6 } else { f64::INFINITY },
        })
        .collect();
    let mut group = c.benchmark_group("net");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("max_min_128_flows_64_links", |b| {
        b.iter(|| black_box(max_min_rates(&links, &flows)));
    });
    group.finish();
}

fn bench_cell_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cellbe");
    let bytes = 16u64 << 20;
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("event_model_16mb_4k_blocks", |b| {
        let kernel = IdentityKernel::new(36.6);
        b.iter(|| {
            let mut m = CellMachine::new(CellConfig::default(), false).unwrap();
            m.warm_up();
            black_box(
                m.run_data(DataInput::Virtual(bytes), &kernel, 4096)
                    .unwrap()
                    .blocks,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_des, bench_flow_solver, bench_cell_machine);
criterion_main!(benches);
