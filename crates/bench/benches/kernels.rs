//! Criterion microbenches of the *real* compute kernels (actual wall time,
//! not simulated time): AES-128 across implementations, Monte Carlo Pi,
//! radix sort, checksums.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use accelmr_kernels::aes::modes::{ctr_xor, ecb_encrypt};
use accelmr_kernels::pi::{count_inside_lanes, count_inside_scalar};
use accelmr_kernels::sort::{generate_records, radix_sort};
use accelmr_kernels::{checksum, fill_deterministic, Aes128, AesImpl};

fn bench_aes(c: &mut Criterion) {
    let key = Aes128::new(b"benchmark-key!!!");
    let mut group = c.benchmark_group("aes128_ecb");
    let len = 64 * 1024;
    group.throughput(Throughput::Bytes(len as u64));
    for imp in AesImpl::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &imp, |b, &imp| {
            let mut buf = vec![0u8; len];
            fill_deterministic(1, 0, &mut buf);
            b.iter(|| ecb_encrypt(&key, imp, black_box(&mut buf)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("aes128_ctr");
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("lanes4", |b| {
        let mut buf = vec![0u8; len];
        b.iter(|| ctr_xor(&key, AesImpl::Lanes4, 7, 0, black_box(&mut buf)));
    });
    group.finish();
}

fn bench_pi(c: &mut Criterion) {
    let mut group = c.benchmark_group("pi_montecarlo");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut rng = accelmr_des::Xoshiro256::seed_from_u64(3);
            black_box(count_inside_scalar(&mut rng, n))
        });
    });
    group.bench_function("lanes4", |b| {
        b.iter(|| {
            let mut rng = accelmr_des::Xoshiro256::seed_from_u64(3);
            black_box(count_inside_lanes(&mut rng, n))
        });
    });
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    let n = 100_000;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("radix_graysort_records", |b| {
        let records = generate_records(5, 0, n);
        b.iter(|| {
            let mut v = records.clone();
            radix_sort(&mut v);
            black_box(v.len())
        });
    });
    group.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum");
    let len = 64 * 1024;
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("fnv1a", |b| {
        let mut buf = vec![0u8; len];
        fill_deterministic(2, 0, &mut buf);
        b.iter(|| black_box(checksum(&buf)));
    });
    group.finish();
}

criterion_group!(benches, bench_aes, bench_pi, bench_sort, bench_checksum);
criterion_main!(benches);
