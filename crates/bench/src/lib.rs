//! Shared helpers for the benchmark harness binaries.

#![warn(missing_docs)]

/// Returns `true` when `--quick` was passed: figure binaries then run a
/// scaled-down sweep (useful in CI; the default regenerates the paper's
/// full parameter ranges).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a figure's table, prefixed with timing of the harness itself.
pub fn emit(fig: &accelmr_hybrid::experiments::Figure, started: std::time::Instant) {
    print!("{}", fig.to_table());
    eprintln!(
        "[{}] regenerated in {:.1}s wall",
        fig.id,
        started.elapsed().as_secs_f64()
    );
}
