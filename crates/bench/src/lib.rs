//! Shared helpers for the benchmark harness binaries.

/// Returns `true` when `--quick` was passed: figure binaries then run a
/// scaled-down sweep (useful in CI; the default regenerates the paper's
/// full parameter ranges).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Renders the engine's event-core counters ([`accelmr_des::QueueStats`])
/// as a one-line JSON object for a bench section, so queue-health
/// regressions (depth blow-ups, lost rearm batching) show up in the
/// `BENCH_perf.json` trajectory.
pub fn queue_stats_json(q: &accelmr_des::QueueStats) -> String {
    format!(
        "{{ \"pushes\": {}, \"peak_depth\": {}, \"cancelled_drops\": {}, \"dead_actor_drops\": {}, \"timer_rearms\": {}, \"timer_slots\": {} }}",
        q.pushes, q.peak_depth, q.cancelled_drops, q.dead_actor_drops, q.timer_rearms, q.timer_slots
    )
}

/// Renders per-actor-class dispatch costs ([`accelmr_des::ActorCost`],
/// collected under [`Sim::enable_profiling`](accelmr_des::Sim::enable_profiling))
/// as a JSON array for a bench section. Each row carries the class label,
/// its event count, and the mean host-nanoseconds per event — the number
/// the heartbeat-path scalability bar is pinned against.
pub fn actor_costs_json(costs: &[accelmr_des::ActorCost]) -> String {
    let rows: Vec<String> = costs
        .iter()
        .map(|c| {
            format!(
                "{{ \"class\": \"{}\", \"events\": {}, \"nanos_per_event\": {:.0} }}",
                c.class,
                c.events,
                c.nanos as f64 / c.events.max(1) as f64
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// Prints a figure's table, prefixed with timing of the harness itself.
pub fn emit(fig: &accelmr_hybrid::experiments::Figure, started: std::time::Instant) {
    print!("{}", fig.to_table());
    eprintln!(
        "[{}] regenerated in {:.1}s wall",
        fig.id,
        started.elapsed().as_secs_f64()
    );
}

/// Rewrites one named section of a multi-bench JSON file, preserving the
/// others — `BENCH_perf.json` holds one top-level object per bench bin
/// (`net_scale`, `churn_scale`), and each bin owns only its section.
///
/// `section_json` must be a JSON object (starts with `{`). The file format
/// is exactly what this function writes: a top-level object whose values
/// are objects; anything unparseable (including the pre-section flat
/// format) is treated as empty and overwritten.
pub fn update_bench_section(path: &str, name: &str, section_json: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut sections = parse_bench_sections(&existing);
    match sections.iter_mut().find(|(k, _)| k == name) {
        Some((_, body)) => *body = section_json.to_string(),
        None => sections.push((name.to_string(), section_json.to_string())),
    }
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (key, body)) in sections.iter().enumerate() {
        let sep = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  \"{key}\": {body}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Extracts `(key, object-body)` pairs from a top-level JSON object whose
/// values are objects. Returns empty on any shape it does not understand —
/// the caller then rebuilds the file from scratch.
fn parse_bench_sections(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = match s.find('{') {
        Some(i) => i + 1,
        None => return out,
    };
    loop {
        // Next key.
        let Some(q1) = s[i..].find('"').map(|p| i + p) else {
            return out;
        };
        let Some(q2) = s[q1 + 1..].find('"').map(|p| q1 + 1 + p) else {
            return Vec::new();
        };
        let key = s[q1 + 1..q2].to_string();
        // Its value must be an object.
        let Some(start) = s[q2 + 1..].find('{').map(|p| q2 + 1 + p) else {
            return Vec::new();
        };
        if s[q2 + 1..start].trim() != ":" {
            return Vec::new();
        }
        // Match braces, skipping string contents.
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        let mut end = None;
        for (j, &b) in bytes.iter().enumerate().skip(start) {
            if in_str {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_str = false;
                }
                continue;
            }
            match b {
                b'"' => in_str = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else {
            return Vec::new();
        };
        out.push((key, s[start..=end].to_string()));
        i = end + 1;
        // More sections, or the closing brace?
        match s[i..].trim_start().chars().next() {
            Some(',') => {
                i += s[i..].find(',').expect("comma present") + 1;
            }
            _ => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_parse_roundtrip_and_merge() {
        let dir = std::env::temp_dir().join("accelmr_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        update_bench_section(path, "net_scale", "{\n    \"a\": 1\n  }").unwrap();
        update_bench_section(path, "churn_scale", "{\n    \"b\": \"x{y}\"\n  }").unwrap();
        let s = std::fs::read_to_string(path).unwrap();
        assert!(s.contains("\"net_scale\""), "{s}");
        assert!(s.contains("\"churn_scale\""), "{s}");
        // Updating one section preserves the other.
        update_bench_section(path, "net_scale", "{ \"a\": 2 }").unwrap();
        let s = std::fs::read_to_string(path).unwrap();
        assert!(s.contains("\"a\": 2"), "{s}");
        assert!(s.contains("x{y}"), "{s}");
        let sections = parse_bench_sections(&s);
        assert_eq!(sections.len(), 2);
        // A flat legacy file is treated as empty and rebuilt.
        std::fs::write(path, "{ \"bench\": \"net_scale\", \"runs\": [] }").unwrap();
        update_bench_section(path, "net_scale", "{ \"a\": 3 }").unwrap();
        let s = std::fs::read_to_string(path).unwrap();
        assert!(s.contains("\"a\": 3"), "{s}");
        assert!(!s.contains("runs"), "{s}");
    }
}
