//! net_scale — **wall-clock** benchmark of the fabric's fluid engines.
//!
//! Every other BENCH file in this repo tracks *simulated* makespans; this
//! one tracks how fast the simulator itself runs, so engine-speed
//! regressions are visible. It drives a terasort-style shuffle — waves of
//! all-at-once fetches, every reducer pulling from `k` mapper nodes with
//! per-stream caps and per-reducer size skew — at 16/64/256/1024 nodes on
//! both rate engines:
//!
//! * `reference` — the pre-optimization engine: one global
//!   `max_min_rates` solve (with per-flow allocations) on every flow
//!   start/finish.
//! * `incremental` — the production engine: same-instant starts coalesced
//!   into one solve, component-local re-solves on the allocation-free
//!   `MaxMinSolver`, heap-driven completions.
//!
//! The reference engine is quadratic-with-allocations in the wave size, so
//! it is only run up to 256 nodes; 1024 nodes is incremental-only. For
//! every size run on both engines the simulated makespans must agree to
//! 1e-6 s — the perf rewrite is not allowed to move a single completion.
//!
//! Writes `BENCH_perf.json` (or `BENCH_perf.quick.json` under `--quick`,
//! which CI smoke-runs) and, in full mode, asserts the ≥10x speedup bar at
//! 256 nodes.

use std::time::Instant;

use accelmr_des::prelude::*;
use accelmr_des::QueueStats;
use accelmr_net::{Fabric, FlowDone, FluidEngine, NetConfig, NetHandle, NodeId};

/// Drives `waves` shuffle waves: each wave starts every fetch at one
/// instant and the next wave begins when the last flow of the previous
/// one completes.
struct ShuffleDriver {
    net: NetHandle,
    nodes: u32,
    fanin: u32,
    bytes_base: u64,
    waves: u32,
    wave: u32,
    inflight: u64,
    completed: u64,
    next_tag: u64,
}

impl ShuffleDriver {
    fn start_wave(&mut self, ctx: &mut Ctx<'_>) {
        self.wave += 1;
        // Per-reducer size skew: flows into one reducer share a size (so
        // its incast completes together) while reducers differ, giving
        // ~nodes distinct completion instants per wave — the staggered
        // completion pattern a real sorted-run shuffle produces.
        for r in 0..self.nodes {
            let bytes = self.bytes_base + u64::from(r % 16) * (self.bytes_base / 32);
            for i in 0..self.fanin {
                let s = (r + 1 + i * 3) % self.nodes;
                let tag = self.next_tag;
                self.next_tag += 1;
                self.net.start_flow(
                    ctx,
                    NodeId(s),
                    NodeId(r),
                    bytes,
                    Some(20.0e6), // the runtime's per-stream shuffle cap
                    tag,
                );
                self.inflight += 1;
            }
        }
    }
}

impl Actor for ShuffleDriver {
    fn name(&self) -> String {
        "bench.shuffle_driver".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => self.start_wave(ctx),
            Event::Msg { msg, .. } if msg.peek::<FlowDone>().is_some() => {
                self.inflight -= 1;
                self.completed += 1;
                if self.inflight == 0 {
                    if self.wave < self.waves {
                        self.start_wave(ctx);
                    } else {
                        ctx.stop();
                    }
                }
            }
            _ => {}
        }
    }
}

struct Sample {
    engine: &'static str,
    nodes: u32,
    flows: u64,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    solver_calls: u64,
    makespan_s: f64,
    queue: QueueStats,
}

fn run_scenario(engine: FluidEngine, nodes: u32, waves: u32) -> Sample {
    let fanin = nodes.saturating_sub(1).min(16);
    let cfg = NetConfig {
        fluid: engine,
        ..NetConfig::default()
    };
    let mut sim = Sim::new(7);
    let fabric = sim.spawn(Box::new(Fabric::new(cfg, nodes as usize)));
    let driver = sim.spawn(Box::new(ShuffleDriver {
        net: NetHandle { fabric },
        nodes,
        fanin,
        bytes_base: 8 << 20,
        waves,
        wave: 0,
        inflight: 0,
        completed: 0,
        next_tag: 0,
    }));
    let started = Instant::now();
    let summary = sim.run();
    let wall_s = started.elapsed().as_secs_f64();
    let flows = sim
        .actor_ref::<ShuffleDriver>(driver)
        .expect("driver")
        .completed;
    assert_eq!(
        flows,
        u64::from(nodes) * u64::from(fanin) * u64::from(waves)
    );
    Sample {
        engine: match engine {
            FluidEngine::Incremental => "incremental",
            FluidEngine::Reference => "reference",
        },
        nodes,
        flows,
        wall_s,
        events: summary.events,
        events_per_sec: summary.events as f64 / wall_s.max(1e-9),
        solver_calls: sim.stats().counter("net.solver_calls"),
        makespan_s: summary.end_time.as_secs_f64(),
        queue: sim.stats().queue(),
    }
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let (sizes, waves, ref_limit) = if quick {
        (vec![16u32, 64], 2u32, 64u32)
    } else {
        (vec![16u32, 64, 256, 1024], 3u32, 256u32)
    };

    println!("# net_scale — terasort-style shuffle waves, wall-clock per engine");
    println!(
        "{:>6} {:>12} {:>8} {:>10} {:>9} {:>13} {:>12} {:>11}",
        "nodes", "engine", "flows", "wall(s)", "events", "events/s", "solver calls", "makespan(s)"
    );

    let mut samples: Vec<Sample> = Vec::new();
    for &n in &sizes {
        let incr = run_scenario(FluidEngine::Incremental, n, waves);
        let row = |s: &Sample| {
            println!(
                "{:>6} {:>12} {:>8} {:>10.3} {:>9} {:>13.0} {:>12} {:>11.3}",
                s.nodes,
                s.engine,
                s.flows,
                s.wall_s,
                s.events,
                s.events_per_sec,
                s.solver_calls,
                s.makespan_s
            );
        };
        row(&incr);
        if n <= ref_limit {
            let reference = run_scenario(FluidEngine::Reference, n, waves);
            row(&reference);
            assert!(
                (incr.makespan_s - reference.makespan_s).abs() < 1e-6,
                "{n} nodes: incremental makespan {} != reference {}",
                incr.makespan_s,
                reference.makespan_s
            );
            samples.push(reference);
        }
        samples.push(incr);
    }

    let wall = |engine: &str, nodes: u32| {
        samples
            .iter()
            .find(|s| s.engine == engine && s.nodes == nodes)
            .map(|s| s.wall_s)
    };
    let headline = if quick { 64 } else { 256 };
    let speedup = match (wall("reference", headline), wall("incremental", headline)) {
        (Some(r), Some(i)) => r / i.max(1e-9),
        _ => f64::NAN,
    };
    println!("\n{headline}-node shuffle: incremental is {speedup:.1}x faster wall-clock");
    if !quick {
        assert!(
            speedup >= 10.0,
            "acceptance bar: >=10x at 256 nodes, got {speedup:.1}x"
        );
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{ \"nodes\": {}, \"engine\": \"{}\", \"flows\": {}, \"wall_s\": {:.4}, \"events\": {}, \"events_per_sec\": {:.0}, \"solver_calls\": {}, \"makespan_s\": {:.6}, \"queue\": {} }}",
                s.nodes, s.engine, s.flows, s.wall_s, s.events, s.events_per_sec, s.solver_calls, s.makespan_s, accelmr_bench::queue_stats_json(&s.queue)
            )
        })
        .collect();
    let section = format!(
        "{{\n    \"scenario\": \"terasort-style shuffle, {waves} waves, fan-in min(nodes-1,16), 20 MB/s stream cap\",\n    \"quick\": {quick},\n    \"speedup_at_{headline}_nodes\": {speedup:.2},\n    \"runs\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    );
    // Quick runs write next to the baseline, never over it: the committed
    // BENCH_perf.json always holds full-scale numbers. Each bench bin owns
    // one section of the file (churn_scale writes the other).
    let out = if quick {
        "BENCH_perf.quick.json"
    } else {
        "BENCH_perf.json"
    };
    accelmr_bench::update_bench_section(out, "net_scale", &section)
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out} (net_scale section)");
}
