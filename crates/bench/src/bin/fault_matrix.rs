//! fault_matrix — robustness sweep of the chaos plane: fault class ×
//! intensity on the 256-node terasort.
//!
//! Each cell injects one fault class through a deterministic
//! [`FaultPlan`] — network partitions that
//! stall and heal, NIC degradation, gray compute failures, heartbeat
//! loss (false-positive death), transient stalls, and a mixed seeded
//! storm — against the hardened runtime profile (I/O timeouts with
//! exponential backoff and failover, progressive blacklisting, epoch
//! fencing, the job-level liveness watchdog). The acceptance bar per
//! cell:
//!
//! * **termination** — the run completes or fails with a typed
//!   `JobError`; it never hangs (the drained
//!   simulation returning at all proves it);
//! * **exactly-once** — the output digest equals the fault-free
//!   baseline's and the reduce aggregate equals the input size: no
//!   record lost to a stalled transfer, none double-counted through a
//!   fenced zombie report;
//! * **bounded inflation** — the makespan stays within a constant factor
//!   of the fault-free baseline (faults cost time, not correctness).
//!
//! Writes the `fault_matrix` section of `BENCH_perf.json`
//! (`BENCH_perf.quick.json` under `--quick`, the CI smoke path),
//! including the robustness counters (`mr.attempt_retries`,
//! `mr.blacklist_entries`, `dfs.read_retries`, `net.partitions_healed`,
//! fencing/resurrection/watchdog activity) per cell.

use std::time::Instant;

use accelmr_des::SimDuration;
use accelmr_dfs::DfsConfig;
use accelmr_hybrid::presets;
use accelmr_mapred::{ClusterBuilder, FaultPlan, MrConfig};
use accelmr_net::NodeId;

/// One fault class of the sweep.
#[derive(Clone, Copy, Debug)]
enum Class {
    Partition,
    Degrade,
    Gray,
    HeartbeatLoss,
    Stall,
    /// Mixed storm from the seeded generator.
    Storm,
}

struct Scenario {
    workers: usize,
    /// Input blocks (64 MB each, replication 3).
    blocks: u64,
    reducers: usize,
}

struct Cell {
    name: &'static str,
    class: Class,
    victims: usize,
    window_s: u64,
}

struct Outcome {
    succeeded: bool,
    typed_error: Option<String>,
    makespan_s: f64,
    digest: (u64, u64),
    kv_total: u64,
    wall_s: f64,
    events: u64,
    attempt_retries: u64,
    read_retries: u64,
    blacklist_entries: u64,
    partitions_healed: u64,
    fenced_reports: u64,
    resurrections: u64,
    speculative_launches: u64,
    jobs_stalled: u64,
}

/// Victim nodes for a cell: a fixed stride through the worker id space
/// (deterministic, head node excluded, no dependence on map iteration).
fn victims(sc: &Scenario, count: usize) -> Vec<NodeId> {
    let stride = (sc.workers / count.max(1)).max(1);
    (0..count)
        .map(|i| NodeId(1 + ((i * stride) % sc.workers) as u32))
        .collect()
}

/// Builds the plan for one cell: faults staggered 3 s apart from t=20 s
/// (mid-map for every scenario size), each healing after the cell's
/// window.
fn plan_for(sc: &Scenario, cell: &Cell) -> FaultPlan {
    let window = SimDuration::from_secs(cell.window_s);
    let start = SimDuration::from_secs(20);
    if matches!(cell.class, Class::Storm) {
        let nodes: Vec<NodeId> = (1..=sc.workers as u32).map(NodeId).collect();
        return FaultPlan::storm(
            2009,
            &nodes,
            cell.victims,
            start,
            SimDuration::from_secs(40),
            window,
        );
    }
    let mut plan = FaultPlan::new();
    for (i, &node) in victims(sc, cell.victims).iter().enumerate() {
        let at = start + SimDuration::from_secs(3 * i as u64);
        plan = match cell.class {
            Class::Partition => plan.partition_at(at, node, window),
            Class::Degrade => plan.degrade_at(at, node, 0.05, window),
            Class::Gray => plan.gray_at(at, node, 0.2, window),
            Class::HeartbeatLoss => plan.heartbeat_loss_at(at, node, window),
            Class::Stall => plan.stall_at(at, node, window),
            Class::Storm => unreachable!(),
        };
    }
    plan
}

fn run(sc: &Scenario, plan: FaultPlan) -> Outcome {
    // The hardened profile is the point of the sweep: fetch/read timeouts
    // with backoff and failover, blacklisting with probation decay, the
    // stall watchdog — plus speculation, so gray nodes get raced.
    let mr = MrConfig {
        tt_dead_after: SimDuration::from_secs(12),
        max_attempts: 30,
        speculative: true,
        // Stock hardened I/O timeouts: generous enough that
        // contention-slowed but healthy transfers never thrash the retry
        // path, so nonzero retry counters below always mean real faults.
        ..MrConfig::hardened()
    };
    let dfs = DfsConfig {
        dead_after: SimDuration::from_secs(12),
        ..DfsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(sc.workers)
        .mr(mr)
        .dfs(dfs)
        .deploy();

    let started = Instant::now();
    let mut session = cluster.session();
    session.faults(plan);
    session.submit(
        presets::terasort_replicated("/gray", sc.blocks * (64 << 20), sc.reducers, 3)
            .map_tasks(sc.blocks as usize),
    );
    let result = session.run();
    let wall_s = started.elapsed().as_secs_f64();

    // A zero-length drain returns the cumulative event count.
    let now = cluster.sim.now();
    let events = cluster.sim.run_until(now).events;
    let stats = cluster.sim.stats();
    Outcome {
        succeeded: result.succeeded,
        typed_error: result.error.map(|e| e.to_string()),
        makespan_s: result.elapsed.as_secs_f64(),
        digest: result.digest,
        kv_total: result.kv.iter().map(|&(_, v)| v).sum(),
        wall_s,
        events,
        attempt_retries: stats.counter("mr.attempt_retries"),
        read_retries: stats.counter("dfs.read_retries"),
        blacklist_entries: stats.counter("mr.blacklist_entries"),
        partitions_healed: stats.counter("net.partitions_healed"),
        fenced_reports: stats.counter("mr.fenced_reports"),
        resurrections: stats.counter("mr.tt_resurrections"),
        speculative_launches: stats.counter("mr.speculative_launches"),
        jobs_stalled: stats.counter("mr.jobs_stalled"),
    }
}

fn cell_json(cell: &Cell, o: &Outcome, baseline: &Outcome) -> String {
    let inflation = o.makespan_s / baseline.makespan_s.max(1e-9);
    format!(
        "{{ \"cell\": \"{}\", \"victims\": {}, \"window_s\": {}, \"succeeded\": {}, \"error\": {}, \"makespan_s\": {:.3}, \"makespan_inflation\": {inflation:.3}, \"digest_exact\": {}, \"wall_s\": {:.4}, \"events\": {}, \"counters\": {{ \"mr.attempt_retries\": {}, \"dfs.read_retries\": {}, \"mr.blacklist_entries\": {}, \"net.partitions_healed\": {}, \"mr.fenced_reports\": {}, \"mr.tt_resurrections\": {}, \"mr.speculative_launches\": {}, \"mr.jobs_stalled\": {} }} }}",
        cell.name,
        cell.victims,
        cell.window_s,
        o.succeeded,
        o.typed_error
            .as_ref()
            .map_or("null".into(), |e| format!("\"{e}\"")),
        o.makespan_s,
        o.digest == baseline.digest && o.kv_total == baseline.kv_total,
        o.wall_s,
        o.events,
        o.attempt_retries,
        o.read_retries,
        o.blacklist_entries,
        o.partitions_healed,
        o.fenced_reports,
        o.resurrections,
        o.speculative_launches,
        o.jobs_stalled,
    )
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let sc = if quick {
        Scenario {
            workers: 64,
            blocks: 4 * 64,
            reducers: 8,
        }
    } else {
        Scenario {
            workers: 256,
            blocks: 4 * 256,
            reducers: 32,
        }
    };
    let cells: Vec<Cell> = if quick {
        vec![
            Cell {
                name: "partition/hi",
                class: Class::Partition,
                victims: 4,
                window_s: 45,
            },
            Cell {
                name: "degrade/hi",
                class: Class::Degrade,
                victims: 4,
                window_s: 45,
            },
            Cell {
                name: "gray/hi",
                class: Class::Gray,
                victims: 4,
                window_s: 45,
            },
            Cell {
                name: "hb_loss/hi",
                class: Class::HeartbeatLoss,
                victims: 4,
                window_s: 30,
            },
            Cell {
                name: "stall/hi",
                class: Class::Stall,
                victims: 4,
                window_s: 30,
            },
            Cell {
                name: "storm",
                class: Class::Storm,
                victims: 10,
                window_s: 30,
            },
        ]
    } else {
        vec![
            Cell {
                name: "partition/lo",
                class: Class::Partition,
                victims: 1,
                window_s: 30,
            },
            Cell {
                name: "partition/hi",
                class: Class::Partition,
                victims: 12,
                window_s: 45,
            },
            Cell {
                name: "degrade/lo",
                class: Class::Degrade,
                victims: 1,
                window_s: 30,
            },
            Cell {
                name: "degrade/hi",
                class: Class::Degrade,
                victims: 12,
                window_s: 45,
            },
            Cell {
                name: "gray/lo",
                class: Class::Gray,
                victims: 1,
                window_s: 30,
            },
            Cell {
                name: "gray/hi",
                class: Class::Gray,
                victims: 12,
                window_s: 45,
            },
            Cell {
                name: "hb_loss/lo",
                class: Class::HeartbeatLoss,
                victims: 1,
                window_s: 25,
            },
            Cell {
                name: "hb_loss/hi",
                class: Class::HeartbeatLoss,
                victims: 12,
                window_s: 25,
            },
            Cell {
                name: "stall/lo",
                class: Class::Stall,
                victims: 1,
                window_s: 30,
            },
            Cell {
                name: "stall/hi",
                class: Class::Stall,
                victims: 12,
                window_s: 30,
            },
            Cell {
                name: "storm",
                class: Class::Storm,
                victims: 25,
                window_s: 30,
            },
        ]
    };

    println!(
        "# fault_matrix — {}-node terasort, fault class x intensity",
        sc.workers
    );
    let baseline = run(&sc, FaultPlan::new());
    assert!(baseline.succeeded, "fault-free baseline failed");
    assert_eq!(
        baseline.kv_total,
        sc.blocks * (64 << 20),
        "baseline aggregate is not the input size"
    );
    println!(
        "  baseline: makespan {:.1} s sim, wall {:.2} s, {} events",
        baseline.makespan_s, baseline.wall_s, baseline.events
    );

    let mut rows = Vec::new();
    for cell in &cells {
        let o = run(&sc, plan_for(&sc, cell));
        let inflation = o.makespan_s / baseline.makespan_s.max(1e-9);
        println!(
            "  {:>14}: {} makespan {:>7.1} s ({inflation:.2}x) retries {{fetch {}, read {}}} blacklist {} healed {} fenced {} resurrected {} spec {}",
            cell.name,
            if o.succeeded { "ok  " } else { "FAIL" },
            o.makespan_s,
            o.attempt_retries,
            o.read_retries,
            o.blacklist_entries,
            o.partitions_healed,
            o.fenced_reports,
            o.resurrections,
            o.speculative_launches,
        );
        // Termination with a typed outcome: success, or a typed JobError.
        assert!(
            o.succeeded || o.typed_error.is_some(),
            "{}: failed without a typed JobError",
            cell.name
        );
        // Exactly-once: every completing cell reproduces the baseline
        // digest and the input-size aggregate.
        if o.succeeded {
            assert_eq!(
                o.digest, baseline.digest,
                "{}: digest drifted under faults",
                cell.name
            );
            assert_eq!(
                o.kv_total, baseline.kv_total,
                "{}: reduce aggregate drifted (lost or double-counted records)",
                cell.name
            );
        }
        // Bounded makespan inflation: faults cost time, not unbounded time.
        assert!(
            inflation < 4.0,
            "{}: makespan inflated {inflation:.2}x (> 4x baseline)",
            cell.name
        );
        rows.push(cell_json(cell, &o, &baseline));
    }

    let body = format!(
        "{{\n    \"scenario\": \"terasort, 64 MB blocks x{}, replication 3, {} reducers, {} workers, hardened profile + speculation\",\n    \"quick\": {quick},\n    \"baseline\": {{ \"makespan_s\": {:.3}, \"wall_s\": {:.4}, \"events\": {} }},\n    \"cells\": [\n      {}\n    ]\n  }}",
        sc.blocks,
        sc.reducers,
        sc.workers,
        baseline.makespan_s,
        baseline.wall_s,
        baseline.events,
        rows.join(",\n      "),
    );
    let out = if quick {
        "BENCH_perf.quick.json"
    } else {
        "BENCH_perf.json"
    };
    accelmr_bench::update_bench_section(out, "fault_matrix", &body)
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out} (fault_matrix section)");
}
