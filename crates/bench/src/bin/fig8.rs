//! Regenerates the paper's Figure 8: distributed Pi estimation at 1e11
//! samples across 4..64 nodes (Java / Cell / Cell with 10x samples).

use accelmr_hybrid::experiments::{fig8, DistPiParams};

fn main() {
    let t = std::time::Instant::now();
    let mut params = DistPiParams::default();
    if accelmr_bench::quick_mode() {
        params.fig8_nodes = vec![4, 16];
        params.fig8_samples = 10_000_000_000;
        params.fig8_tenx = 100_000_000_000;
    }
    accelmr_bench::emit(&fig8(&params), t);
}
