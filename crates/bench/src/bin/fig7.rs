//! Regenerates the paper's Figure 7: distributed Pi estimation on a fixed
//! 50-node cluster, sweeping the sample count.

use accelmr_hybrid::experiments::{fig7, DistPiParams};

fn main() {
    let t = std::time::Instant::now();
    let mut params = DistPiParams::default();
    if accelmr_bench::quick_mode() {
        params.fig7_nodes = 8;
        params.fig7_samples = vec![30_000, 30_000_000, 30_000_000_000];
    }
    accelmr_bench::emit(&fig7(&params), t);
}
