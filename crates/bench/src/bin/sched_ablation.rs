//! Scheduler-policy ablation on the half-accelerated clusters from
//! `core::hetero` — the mixed-cluster scenario the paper's §V anticipated.
//!
//! Compares `Fifo`, `LocalityFirst` and `AdaptiveHetero` on:
//!
//! * **pi-mixed** — the CPU-bound Pi workload, where placement-blind
//!   scheduling lets the plain nodes set the job time;
//! * **aes-mixed** — the data-bound AES workload, where the record feed
//!   path bounds everything and policies should be near-equal (the
//!   control: adaptivity must not *hurt* feed-bound jobs).
//!
//! The **fairness** section drives an N-tenant mixed pi/terasort batch
//! through the *job-level* policies: a batch tenant's two big terasorts
//! against an interactive tenant's stream of small deadline-carrying pi
//! jobs. FIFO head-of-line blocking shows up as the light tenant's p99
//! job latency and missed deadlines; `FairShare` collapses the p99 and
//! `DeadlineSlack` restores the deadline hit-rate. The job-level policies
//! run with the balanced preemption budget
//! ([`PreemptionTuning::balanced`]): kill-and-requeue closes the deadline
//! gap dispatch alone cannot (a full hit-rate is the acceptance bar,
//! asserted here and grepped by CI from the quick JSON) while the wasted
//! requeued runtime stays under 10% of the batch's total slot-seconds.
//!
//! Writes the `BENCH_sched.json` baseline next to the working directory;
//! CI smoke-runs `--quick` to keep the path green.

use accelmr_des::{SimDuration, SimTime};
use accelmr_hybrid::hetero::{AdaptiveAesKernel, AdaptivePiKernel, MixedEnvFactory};
use accelmr_hybrid::presets;
use accelmr_mapred::{
    ClusterBuilder, JobBuilder, JobResult, MrConfig, PreemptionTuning, PreloadSpec,
    SchedulerPolicy, SumReducer,
};

const RECORD_BYTES: u64 = 64 << 20;

fn policies() -> [(&'static str, SchedulerPolicy); 3] {
    [
        ("fifo", SchedulerPolicy::Fifo),
        ("locality-first", SchedulerPolicy::LocalityFirst),
        ("adaptive", SchedulerPolicy::adaptive()),
    ]
}

fn mixed_cluster(seed: u64, policy: SchedulerPolicy) -> accelmr_mapred::MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .env(MixedEnvFactory::half())
        .scheduler(policy)
        .deploy()
}

/// Runs the job twice on one cluster (cold, then warm): adaptive policies
/// pay a probe cost on the first job and schedule the second from the
/// learned model; static policies repeat themselves.
fn run_pi(policy: SchedulerPolicy, samples: u64, seed: u64) -> (JobResult, JobResult) {
    let mut c = mixed_cluster(seed, policy);
    let job = || {
        JobBuilder::new("pi-mixed")
            .synthetic(samples)
            .kernel(AdaptivePiKernel::new(3))
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            })
    };
    let mut session = c.session();
    session.submit(job());
    let cold = session.run();
    let mut session = c.session();
    session.submit(job());
    (cold, session.run())
}

fn run_aes(policy: SchedulerPolicy, bytes: u64, seed: u64) -> (JobResult, JobResult) {
    let mut c = mixed_cluster(seed, policy);
    let job = |path: &str, preload: bool| {
        let b = JobBuilder::new("aes-mixed")
            .input_file(path)
            .record_bytes(RECORD_BYTES)
            .kernel(AdaptiveAesKernel::new())
            .digest_output();
        if preload {
            b.preload(
                PreloadSpec::new(path, bytes, 7)
                    .block_size(RECORD_BYTES)
                    .replication(1),
            )
        } else {
            b
        }
    };
    let mut session = c.session();
    session.submit(job("/input", true));
    let cold = session.run();
    let mut session = c.session();
    session.submit(job("/input", false));
    (cold, session.run())
}

struct Row {
    policy: &'static str,
    cold_s: f64,
    warm_s: f64,
    local_frac: f64,
    attempts: u32,
    tp_spread: Option<f64>,
}

fn row(policy: &'static str, cold: &JobResult, warm: &JobResult) -> Row {
    let local_frac = warm.local_reads as f64 / (warm.local_reads + warm.remote_reads).max(1) as f64;
    let tp_spread = (!warm.node_throughput.is_empty()).then(|| {
        let max = warm
            .node_throughput
            .iter()
            .map(|e| e.throughput)
            .fold(f64::MIN, f64::max);
        let min = warm
            .node_throughput
            .iter()
            .map(|e| e.throughput)
            .fold(f64::MAX, f64::min);
        max / min
    });
    Row {
        policy,
        cold_s: cold.elapsed.as_secs_f64(),
        warm_s: warm.elapsed.as_secs_f64(),
        local_frac,
        attempts: cold.attempts,
        tp_spread,
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n# {title}");
    println!(
        "{:>16} {:>10} {:>10} {:>8} {:>9} {:>10}",
        "policy", "cold(s)", "warm(s)", "local%", "attempts", "tp spread"
    );
    for r in rows {
        println!(
            "{:>16} {:>10.1} {:>10.1} {:>7.0}% {:>9} {:>10}",
            r.policy,
            r.cold_s,
            r.warm_s,
            r.local_frac * 100.0,
            r.attempts,
            r.tp_spread
                .map(|s| format!("{s:.1}x"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn json_workload(name: &str, rows: &[Row]) -> String {
    let mut fields: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{ \"cold_s\": {:.3}, \"warm_s\": {:.3} }}",
                r.policy, r.cold_s, r.warm_s
            )
        })
        .collect();
    let locality = rows.iter().find(|r| r.policy == "locality-first");
    let adaptive = rows.iter().find(|r| r.policy == "adaptive");
    if let (Some(l), Some(a)) = (locality, adaptive) {
        fields.push(format!(
            "    \"adaptive_speedup_vs_locality\": {{ \"cold\": {:.3}, \"warm\": {:.3} }}",
            l.cold_s / a.cold_s,
            l.warm_s / a.warm_s
        ));
    }
    format!("  \"{}\": {{\n{}\n  }}", name, fields.join(",\n"))
}

/// Per-policy outcome of the fairness batch.
struct FairnessRow {
    policy: &'static str,
    light_p50_s: f64,
    light_p99_s: f64,
    heavy_makespan_s: f64,
    deadline_hits: usize,
    deadline_total: usize,
    /// Attempts killed-and-requeued by the policy's reclaim hook.
    preempted: u32,
    /// Runtime discarded by those kills, billed to the beneficiaries.
    wasted_slot_s: f64,
    /// Total billed occupancy across the whole batch.
    slot_s: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// The N-tenant mixed batch: tenant "batch" submits two terasorts at t=0;
/// tenant "interactive" submits `n_light` small pi jobs staggered
/// `stagger` apart, each with a deadline `deadline_after` past its
/// submission. Same workload under every policy; only job-level dispatch
/// differs. All rows run with the balanced preemption budget — inert for
/// FIFO (no reclaim hook), live for the reclaiming policies.
fn run_fairness(
    policy: SchedulerPolicy,
    name: &'static str,
    heavy_bytes: u64,
    light_samples: u64,
    n_light: usize,
    stagger: SimDuration,
    deadline_after: SimDuration,
) -> FairnessRow {
    let mut c = ClusterBuilder::new()
        .seed(17)
        .workers(4)
        .env(MixedEnvFactory::half())
        .mr(MrConfig {
            scheduler: policy,
            preemption: PreemptionTuning::balanced(),
            ..MrConfig::default()
        })
        .deploy();
    let mut session = c.session();
    // 16 reducers per terasort: reduce waves churn slots in the batch's
    // tail, where reduces (rightly) cannot be preempted — a monolithic
    // reduce phase would wall off the last deadline jobs no matter what
    // the kill budget allows.
    let heavy: Vec<_> = (0..2)
        .map(|i| {
            session.submit(
                presets::terasort(&format!("/sort-{i}"), heavy_bytes, 16)
                    .name(format!("terasort-{i}"))
                    .tenant("batch"),
            )
        })
        .collect();
    let light: Vec<_> = (0..n_light)
        .map(|i| {
            let at = stagger.saturating_mul(i as u64);
            session.submit_after(
                at,
                JobBuilder::new(format!("pi-{i}"))
                    .synthetic(light_samples)
                    .kernel(AdaptivePiKernel::new(i as u64))
                    .rpc_aggregate(SumReducer {
                        cycles_per_byte: 1.0,
                    })
                    .tenant("interactive")
                    .deadline_at(SimTime::ZERO + at + deadline_after),
            )
        })
        .collect();
    let results = session.run_until_complete();
    assert!(results.iter().all(|r| r.succeeded), "{name}: job failed");
    let mut latencies: Vec<f64> = light
        .iter()
        .map(|h| h.result().elapsed.as_secs_f64())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let hits = light
        .iter()
        .filter(|h| h.result().deadline_met == Some(true))
        .count();
    let heavy_makespan_s = heavy
        .iter()
        .map(|h| h.result().elapsed.as_secs_f64())
        .fold(0.0, f64::max);
    FairnessRow {
        policy: name,
        light_p50_s: percentile(&latencies, 0.50),
        light_p99_s: percentile(&latencies, 0.99),
        heavy_makespan_s,
        deadline_hits: hits,
        deadline_total: n_light,
        preempted: results.iter().map(|r| r.preempted_attempts).sum(),
        wasted_slot_s: results.iter().map(|r| r.wasted_slot_seconds).sum(),
        slot_s: results.iter().map(|r| r.slot_seconds).sum(),
    }
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let (samples, bytes) = if quick {
        (200_000_000u64, 1u64 << 30)
    } else {
        (4_000_000_000u64, 8u64 << 30)
    };

    println!("# scheduler ablation — half-accelerated 4-node cluster");
    println!(
        "# pi: {samples} samples, aes: {} GiB{}",
        bytes >> 30,
        if quick { " (--quick)" } else { "" }
    );

    let pi_rows: Vec<Row> = policies()
        .iter()
        .map(|&(name, policy)| {
            let (cold, warm) = run_pi(policy, samples, 11);
            row(name, &cold, &warm)
        })
        .collect();
    print_rows("pi-mixed (CPU-bound: adaptivity pays)", &pi_rows);

    let aes_rows: Vec<Row> = policies()
        .iter()
        .map(|&(name, policy)| {
            let (cold, warm) = run_aes(policy, bytes, 12);
            row(name, &cold, &warm)
        })
        .collect();
    print_rows(
        "aes-mixed (feed-bound: adaptive pays a one-job probe cost, then matches)",
        &aes_rows,
    );

    // The adaptive policy must never lose the CPU-bound comparison — this
    // is the acceptance bar the hetero test also enforces.
    let t = |rows: &[Row], p: &str| rows.iter().find(|r| r.policy == p).unwrap().cold_s;
    assert!(
        t(&pi_rows, "adaptive") < t(&pi_rows, "locality-first"),
        "adaptive regressed on the CPU-bound mixed cluster"
    );

    // Fairness: the 2-tenant mixed pi/terasort batch under the job-level
    // policies.
    let (heavy_bytes, light_samples, n_light, stagger_s, deadline_s) = if quick {
        (8u64 << 30, 200_000_000u64, 4usize, 20u64, 100u64)
    } else {
        (16u64 << 30, 200_000_000u64, 8usize, 20, 100)
    };
    let fairness: Vec<FairnessRow> = [
        ("fifo", SchedulerPolicy::Fifo),
        ("fair-share", SchedulerPolicy::FairShare),
        ("deadline-slack", SchedulerPolicy::DeadlineSlack),
    ]
    .into_iter()
    .map(|(name, policy)| {
        run_fairness(
            policy,
            name,
            heavy_bytes,
            light_samples,
            n_light,
            SimDuration::from_secs(stagger_s),
            SimDuration::from_secs(deadline_s),
        )
    })
    .collect();
    println!("\n# fairness — 2 tenants: 2x terasort (batch) vs {n_light} staggered pi (interactive, deadlined), balanced preemption");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "policy",
        "light p50(s)",
        "light p99(s)",
        "heavy mk(s)",
        "deadlines",
        "preempted",
        "wasted(s)"
    );
    for r in &fairness {
        println!(
            "{:>16} {:>12.1} {:>12.1} {:>12.1} {:>7}/{} {:>9} {:>10.1}",
            r.policy,
            r.light_p50_s,
            r.light_p99_s,
            r.heavy_makespan_s,
            r.deadline_hits,
            r.deadline_total,
            r.preempted,
            r.wasted_slot_s
        );
    }
    let frow = |p: &str| fairness.iter().find(|r| r.policy == p).unwrap();
    // Acceptance bars: fair-share beats FIFO's head-of-line p99 for the
    // light tenant; deadline-slack's reclaim closes the whole deadline gap
    // (a full hit-rate, not just better than FIFO) without discarding more
    // than 10% of the batch's slot-seconds as preempted runtime.
    assert!(
        frow("fair-share").light_p99_s < frow("fifo").light_p99_s,
        "fair-share lost the light-tenant p99 to FIFO"
    );
    let dl = frow("deadline-slack");
    assert_eq!(
        dl.deadline_hits, dl.deadline_total,
        "deadline-slack with preemption missed a deadline ({}/{})",
        dl.deadline_hits, dl.deadline_total
    );
    for r in &fairness {
        assert!(
            r.wasted_slot_s <= 0.10 * r.slot_s,
            "{}: wasted {:.1} slot-s exceeds 10% of total {:.1}",
            r.policy,
            r.wasted_slot_s,
            r.slot_s
        );
    }
    let fairness_json = {
        let rows: Vec<String> = fairness
            .iter()
            .map(|r| {
                format!(
                    "    \"{}\": {{ \"light_p50_s\": {:.3}, \"light_p99_s\": {:.3}, \
                     \"heavy_makespan_s\": {:.3}, \"deadline_hits\": {}, \"deadline_total\": {}, \
                     \"preempted\": {}, \"wasted_slot_s\": {:.3}, \"total_slot_s\": {:.3} }}",
                    r.policy,
                    r.light_p50_s,
                    r.light_p99_s,
                    r.heavy_makespan_s,
                    r.deadline_hits,
                    r.deadline_total,
                    r.preempted,
                    r.wasted_slot_s,
                    r.slot_s
                )
            })
            .collect();
        format!(
            "  \"fairness\": {{\n{},\n    \"fair_share_light_p99_speedup_vs_fifo\": {:.3},\n    \
             \"deadline_hits_full\": {},\n    \"wasted_work_frac\": {:.4}\n  }}",
            rows.join(",\n"),
            frow("fifo").light_p99_s / frow("fair-share").light_p99_s,
            dl.deadline_hits == dl.deadline_total,
            dl.wasted_slot_s / dl.slot_s.max(1e-9)
        )
    };

    let json = format!(
        "{{\n  \"bench\": \"sched_ablation\",\n  \"cluster\": \"4 workers, half Cell-accelerated\",\n  \"quick\": {quick},\n{},\n{},\n{}\n}}\n",
        json_workload("pi_mixed", &pi_rows),
        json_workload("aes_mixed", &aes_rows),
        fairness_json,
    );
    // Quick runs write next to the baseline, never over it: the committed
    // BENCH_sched.json always holds full-scale numbers.
    let out = if quick {
        "BENCH_sched.quick.json"
    } else {
        "BENCH_sched.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out}");
}
