//! churn_scale — **wall-clock** benchmark of dynamic membership at
//! 1000-node scale.
//!
//! The paper's headline deployment property is a "dynamically variable
//! number of nodes"; this bin drives it three orders of magnitude past the
//! paper's testbed: a terasort over a 1000-worker cluster with ≥ 10% of
//! the nodes joining or leaving *mid-job*. Every layer's churn path is on
//! the clock at once:
//!
//! * fabric — links grow for joins, a crash aborts flows via the
//!   link→flows index (O(node degree), not O(all flows));
//! * DFS — departures are detected by heartbeat silence, replicas are
//!   pruned, and every under-replicated block is repaired by streaming a
//!   surviving replica through a pipeline (joins add repair capacity and
//!   enter the placement rotation);
//! * MapReduce — joined TaskTrackers register and pull work on their
//!   heartbeats, lost attempts *and lost map outputs* re-execute
//!   (exactly-once accounting preserved by contribution subtraction), and
//!   reduce fetch lists are rebuilt against the current output locations.
//!
//! Leaves are crash-shaped; detection takes a heartbeat-silence window, so
//! transfers begun in that window may still complete against the departed
//! node — the same approximation every heartbeat-based system lives with.
//!
//! Each run must finish with a successful job, zero under-replicated
//! blocks, and work dispatched onto joined nodes — the 1000-worker
//! scenario in single-digit seconds of wall clock. Writes the
//! `churn_scale` section of `BENCH_perf.json` (`BENCH_perf.quick.json`
//! under `--quick`, the CI smoke path) and, in full mode, a
//! `terasort_10k` section pinning the first 10,000-node run.

use std::time::Instant;

use accelmr_des::{ActorCost, QueueStats, SimDuration};
use accelmr_dfs::{DfsConfig, NameNode};
use accelmr_hybrid::presets;
use accelmr_mapred::{ChurnSchedule, ClusterBuilder, MrConfig};
use accelmr_net::NodeId;

struct Scenario {
    workers: usize,
    /// Input blocks (64 MB each, replication 3).
    blocks: u64,
    reducers: usize,
    joins: usize,
    /// Every `leave_stride`-th worker departs — strides > replica-set
    /// width guarantee at most one of a block's initial replicas leaves.
    leave_stride: usize,
    churn_start_s: u64,
    churn_window_s: u64,
}

struct Sample {
    workers: usize,
    joins: usize,
    leaves: usize,
    flows: u64,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    makespan_s: f64,
    replications: u64,
    abort_scanned: u64,
    joined_dispatches: u64,
    attempts: u32,
    solver_calls: u64,
    comp_visits: u64,
    solver_rounds: u64,
    queue: QueueStats,
    /// Chaos-plane robustness counters (zero in fault-free churn runs
    /// unless hardening knobs are enabled; surfaced so regressions in the
    /// counter plumbing are visible here too).
    attempt_retries: u64,
    read_retries: u64,
    blacklist_entries: u64,
    partitions_healed: u64,
    /// Per-actor-class dispatch costs (events + host nanos), collected
    /// with engine profiling on. The 1k→10k per-event cost ratio is
    /// pinned from these, so heartbeat-path O(cluster) regressions fail
    /// the bench instead of silently re-inflating the 10k run.
    actor_costs: Vec<ActorCost>,
}

/// Mean profiled host-nanoseconds per dispatched event across all actor
/// classes — the scalar the 1k→10k ratio bar compares.
fn nanos_per_event(costs: &[ActorCost]) -> f64 {
    let events: u64 = costs.iter().map(|c| c.events).sum();
    let nanos: u64 = costs.iter().map(|c| c.nanos).sum();
    nanos as f64 / events.max(1) as f64
}

fn run(sc: &Scenario) -> Sample {
    // Elastic-deployment tuning: a 12 s silence window keeps repair and
    // re-execution latency proportionate to churn, and generous attempt
    // budgets absorb fetch aborts from mid-shuffle departures.
    let mr = MrConfig {
        tt_dead_after: SimDuration::from_secs(12),
        max_attempts: 30,
        ..MrConfig::default()
    };
    let dfs = DfsConfig {
        dead_after: SimDuration::from_secs(12),
        ..DfsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(sc.workers)
        .mr(mr)
        .dfs(dfs)
        .deploy();
    // Per-actor cost profiling: one clock read per dispatch, no effect on
    // event order or trace fingerprints.
    cluster.sim.enable_profiling();

    let leaves: Vec<NodeId> = (1..=sc.workers as u32)
        .step_by(sc.leave_stride)
        .map(NodeId)
        .collect();
    let n_leaves = leaves.len();

    let started = Instant::now();
    let mut session = cluster.session();
    let joined = session.churn(ChurnSchedule::wave(
        sc.joins,
        &leaves,
        SimDuration::from_secs(sc.churn_start_s),
        SimDuration::from_secs(sc.churn_window_s),
    ));
    assert_eq!(joined.len(), sc.joins);
    session.submit(
        presets::terasort_replicated("/gray", sc.blocks * (64 << 20), sc.reducers, 3)
            // One 64 MB record per map task: more dispatch waves than
            // slots, so late joiners find a non-empty queue.
            .map_tasks(sc.blocks as usize),
    );
    let result = session.run();

    // Drain past the last death-detection window so replication repair
    // finishes, then audit the NameNode. The returned summary carries the
    // cumulative event count of the whole simulation.
    let resume = cluster.sim.now();
    let summary = cluster.sim.run_until(resume + SimDuration::from_secs(180));
    let wall_s = started.elapsed().as_secs_f64();

    assert!(result.succeeded, "churn terasort failed");
    // One split per slot (the paper's NumMappers plan): the 3-waves-of-
    // blocks input makes the pending queue outlive the churn window.
    assert!(result.map_tasks as usize >= sc.workers);
    let joined_dispatches = result
        .dispatch_log
        .iter()
        .filter(|&&(_, n)| joined.contains(&n))
        .count() as u64;
    assert!(
        joined_dispatches > 0,
        "no work was dispatched onto joined nodes"
    );
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("cluster.nodes_joined"), sc.joins as u64);
    assert_eq!(stats.counter("cluster.nodes_left"), n_leaves as u64);
    assert!(stats.counter("dfs.replications_started") > 0);
    let nn = cluster
        .sim
        .actor_ref::<NameNode>(cluster.dfs.namenode)
        .expect("namenode alive");
    assert_eq!(
        nn.under_replicated_blocks(),
        0,
        "blocks did not re-reach target replication"
    );

    Sample {
        workers: sc.workers,
        joins: sc.joins,
        leaves: n_leaves,
        flows: stats.counter("net.flows_done"),
        events: summary.events,
        wall_s,
        events_per_sec: summary.events as f64 / wall_s.max(1e-9),
        makespan_s: result.elapsed.as_secs_f64(),
        replications: stats.counter("dfs.blocks_replicated"),
        abort_scanned: stats.counter("net.abort_flows_scanned"),
        joined_dispatches,
        attempts: result.attempts,
        solver_calls: stats.counter("net.solver_calls"),
        comp_visits: stats.counter("net.comp_flow_visits"),
        solver_rounds: stats.counter("net.solver_rounds"),
        queue: stats.queue(),
        attempt_retries: stats.counter("mr.attempt_retries"),
        read_retries: stats.counter("dfs.read_retries"),
        blacklist_entries: stats.counter("mr.blacklist_entries"),
        partitions_healed: stats.counter("net.partitions_healed"),
        actor_costs: stats.actor_costs(),
    }
}

/// Runs one scenario, prints its report, and rewrites `section` of the
/// bench JSON. `wall_bar_s` pins the wall-clock acceptance bar (skipped
/// under `--quick`, where the scenario is scaled down). Returns the
/// sample so the caller can pin cross-scenario ratios.
fn run_and_report(sc: &Scenario, section: &str, quick: bool, wall_bar_s: f64) -> Sample {
    println!(
        "# {section} — {}-node terasort under join/leave churn",
        sc.workers
    );
    let s = run(sc);
    let churned = s.joins + s.leaves;
    let pct = 100.0 * churned as f64 / sc.workers as f64;
    println!(
        "{:>6} workers  {:>3} joins  {:>3} leaves ({pct:.1}% churn)",
        s.workers, s.joins, s.leaves
    );
    println!(
        "  makespan {:>8.1} s sim   wall {:>6.2} s   {} events ({:.0}/s)   flows {}   attempts {}",
        s.makespan_s, s.wall_s, s.events, s.events_per_sec, s.flows, s.attempts
    );
    println!(
        "  re-replications {}   abort-scan visits {}   dispatches on joined nodes {}",
        s.replications, s.abort_scanned, s.joined_dispatches
    );
    println!(
        "  solver: {} calls, {} rounds, {} flow visits   queue: peak {} pending, {} pushes, {} timer rearms",
        s.solver_calls,
        s.solver_rounds,
        s.comp_visits,
        s.queue.peak_depth,
        s.queue.pushes,
        s.queue.timer_rearms
    );
    println!(
        "  per-event cost {:.0} ns mean; by actor class:",
        nanos_per_event(&s.actor_costs)
    );
    for c in &s.actor_costs {
        println!(
            "    {:>12}  {:>9} events  {:>6.0} ns/event",
            c.class,
            c.events,
            c.nanos as f64 / c.events.max(1) as f64
        );
    }
    if !quick {
        assert!(
            s.wall_s < wall_bar_s,
            "acceptance bar: {}-node churn terasort under {wall_bar_s:.0}s wall, got {:.2}s",
            sc.workers,
            s.wall_s
        );
    }

    let body = format!(
        "{{\n    \"scenario\": \"terasort, 64 MB blocks x{}, replication 3, {} reducers, churn wave {}j+{}l over [{}s, {}s]\",\n    \"quick\": {quick},\n    \"runs\": [\n      {{ \"workers\": {}, \"joins\": {}, \"leaves\": {}, \"churn_pct\": {pct:.1}, \"flows\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \"wall_s\": {:.4}, \"makespan_s\": {:.3}, \"attempts\": {}, \"rereplications\": {}, \"abort_flows_scanned\": {}, \"joined_node_dispatches\": {}, \"solver_calls\": {}, \"solver_rounds\": {}, \"queue\": {}, \"robustness\": {{ \"mr.attempt_retries\": {}, \"dfs.read_retries\": {}, \"mr.blacklist_entries\": {}, \"net.partitions_healed\": {} }}, \"nanos_per_event\": {:.0}, \"actor_costs\": {} }}\n    ]\n  }}",
        sc.blocks,
        sc.reducers,
        sc.joins,
        s.leaves,
        sc.churn_start_s,
        sc.churn_start_s + sc.churn_window_s,
        s.workers,
        s.joins,
        s.leaves,
        s.flows,
        s.events,
        s.events_per_sec,
        s.wall_s,
        s.makespan_s,
        s.attempts,
        s.replications,
        s.abort_scanned,
        s.joined_dispatches,
        s.solver_calls,
        s.solver_rounds,
        accelmr_bench::queue_stats_json(&s.queue),
        s.attempt_retries,
        s.read_retries,
        s.blacklist_entries,
        s.partitions_healed,
        nanos_per_event(&s.actor_costs),
        accelmr_bench::actor_costs_json(&s.actor_costs),
    );
    let out = if quick {
        "BENCH_perf.quick.json"
    } else {
        "BENCH_perf.json"
    };
    accelmr_bench::update_bench_section(out, section, &body)
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out} ({section} section)");
    s
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let sc = if quick {
        Scenario {
            workers: 128,
            // ~3 map dispatch waves (one record per task, 2 slots per
            // node): the pending queue outlives the churn window, so
            // joined nodes demonstrably pull work.
            blocks: 6 * 128,
            reducers: 16,
            joins: 12,
            leave_stride: 13,
            churn_start_s: 12,
            churn_window_s: 30,
        }
    } else {
        Scenario {
            workers: 1000,
            blocks: 6 * 1000,
            reducers: 64,
            joins: 60,
            leave_stride: 19,
            churn_start_s: 12,
            churn_window_s: 40,
        }
    };

    let base = run_and_report(&sc, "churn_scale", quick, 10.0);

    if quick {
        // CI smoke of the 10k scenario's *shape* at a scaled-down worker
        // count: same 3-blocks-per-worker input, reducer count, and ~6%
        // churn profile as the full 10k run, so a heartbeat-path
        // O(cluster) regression shows up as a collapsed events_per_sec in
        // the quick JSON (the CI step greps a floor) instead of waiting
        // for the next full 10k regeneration.
        let smoke = Scenario {
            workers: 1000,
            blocks: 3 * 1000,
            reducers: 64,
            joins: 60,
            leave_stride: 19,
            churn_start_s: 12,
            churn_window_s: 40,
        };
        run_and_report(&smoke, "terasort_10k", true, f64::INFINITY);
        return;
    }

    {
        // The ROADMAP's next-order-of-magnitude scenario: a 10k-node
        // terasort with the same ~11% churn profile. Shuffle work scales
        // as reducers x maps, so the reducer count is held at 64 and the
        // input at 3 blocks/worker (1.5 map waves — late joiners still
        // find a non-empty queue) to keep the fetch fan-out from
        // quadratically swamping the 10x node-count point. The first pin
        // (pre-rewrite) landed at ~30M events in ~100s wall; the
        // expiry-heap liveness sweeps and incremental slot accounting
        // brought it to ~47s (~640k events/s) with identical makespan,
        // attempts, and re-replication counts. The per-actor profile says
        // what remains: ~2/3 of the wall is the fluid fabric (flow
        // re-pricing across the 1.9M-flow shuffle fan-out), not the
        // control plane — the ROADMAP target (<10s, 2M+ events/s) now
        // points at the solver. Only the full bench regeneration pays for
        // this run; CI's --quick path stops above.
        let sc10k = Scenario {
            workers: 10_000,
            blocks: 3 * 10_000,
            reducers: 64,
            joins: 600,
            leave_stride: 19,
            churn_start_s: 12,
            churn_window_s: 40,
        };
        let big = run_and_report(&sc10k, "terasort_10k", false, 75.0);

        // The heartbeat-path scalability pin: per-event host cost must
        // stay roughly flat from 1k to 10k nodes. Before the expiry-heap
        // and incremental-slot rewrite the overall ratio was ~2.3x
        // (O(cluster) liveness sweeps and per-heartbeat SchedView
        // materialization); measured post-rewrite it is ~1.1x overall
        // and ~1.25x for the control-plane actors specifically (what is
        // left is cache pressure and solver-component growth, linear in
        // *work*, not cluster size). The bars give measured headroom
        // without readmitting an O(cluster) term.
        let ratio = nanos_per_event(&big.actor_costs) / nanos_per_event(&base.actor_costs);
        let control = |s: &Sample| -> Vec<ActorCost> {
            s.actor_costs
                .iter()
                .filter(|c| c.class == "dfs.namenode" || c.class == "mr.jobtracker")
                .cloned()
                .collect()
        };
        let cratio =
            nanos_per_event(&control(&big)) / nanos_per_event(&control(&base));
        println!(
            "\nper-event cost ratio 1k -> 10k nodes: {ratio:.2}x overall (bar 1.6x), {cratio:.2}x control-plane (bar 1.5x)"
        );
        assert!(
            ratio < 1.6,
            "per-event cost grew {ratio:.2}x from 1k to 10k nodes — an O(cluster) term is back"
        );
        assert!(
            cratio < 1.5,
            "NameNode/JobTracker per-event cost grew {cratio:.2}x from 1k to 10k nodes — a heartbeat-path O(cluster) scan is back"
        );
    }
}
