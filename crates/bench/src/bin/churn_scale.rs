//! churn_scale — **wall-clock** benchmark of dynamic membership at
//! 1000-node scale.
//!
//! The paper's headline deployment property is a "dynamically variable
//! number of nodes"; this bin drives it three orders of magnitude past the
//! paper's testbed: a terasort over a 1000-worker cluster with ≥ 10% of
//! the nodes joining or leaving *mid-job*. Every layer's churn path is on
//! the clock at once:
//!
//! * fabric — links grow for joins, a crash aborts flows via the
//!   link→flows index (O(node degree), not O(all flows));
//! * DFS — departures are detected by heartbeat silence, replicas are
//!   pruned, and every under-replicated block is repaired by streaming a
//!   surviving replica through a pipeline (joins add repair capacity and
//!   enter the placement rotation);
//! * MapReduce — joined TaskTrackers register and pull work on their
//!   heartbeats, lost attempts *and lost map outputs* re-execute
//!   (exactly-once accounting preserved by contribution subtraction), and
//!   reduce fetch lists are rebuilt against the current output locations.
//!
//! Leaves are crash-shaped; detection takes a heartbeat-silence window, so
//! transfers begun in that window may still complete against the departed
//! node — the same approximation every heartbeat-based system lives with.
//!
//! The run must finish with a successful job, zero under-replicated
//! blocks, and work dispatched onto joined nodes — in single-digit
//! seconds of wall clock. Writes the `churn_scale` section of
//! `BENCH_perf.json` (`BENCH_perf.quick.json` under `--quick`, the CI
//! smoke path).

use std::time::Instant;

use accelmr_des::SimDuration;
use accelmr_dfs::{DfsConfig, NameNode};
use accelmr_hybrid::presets;
use accelmr_mapred::{ChurnSchedule, ClusterBuilder, MrConfig};
use accelmr_net::NodeId;

struct Scenario {
    workers: usize,
    /// Input blocks (64 MB each, replication 3).
    blocks: u64,
    reducers: usize,
    joins: usize,
    /// Every `leave_stride`-th worker departs — strides > replica-set
    /// width guarantee at most one of a block's initial replicas leaves.
    leave_stride: usize,
    churn_start_s: u64,
    churn_window_s: u64,
}

struct Sample {
    workers: usize,
    joins: usize,
    leaves: usize,
    flows: u64,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    makespan_s: f64,
    replications: u64,
    abort_scanned: u64,
    joined_dispatches: u64,
    attempts: u32,
}

fn run(sc: &Scenario) -> Sample {
    // Elastic-deployment tuning: a 12 s silence window keeps repair and
    // re-execution latency proportionate to churn, and generous attempt
    // budgets absorb fetch aborts from mid-shuffle departures.
    let mr = MrConfig {
        tt_dead_after: SimDuration::from_secs(12),
        max_attempts: 30,
        ..MrConfig::default()
    };
    let dfs = DfsConfig {
        dead_after: SimDuration::from_secs(12),
        ..DfsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(sc.workers)
        .mr(mr)
        .dfs(dfs)
        .deploy();

    let leaves: Vec<NodeId> = (1..=sc.workers as u32)
        .step_by(sc.leave_stride)
        .map(NodeId)
        .collect();
    let n_leaves = leaves.len();

    let started = Instant::now();
    let mut session = cluster.session();
    let joined = session.churn(ChurnSchedule::wave(
        sc.joins,
        &leaves,
        SimDuration::from_secs(sc.churn_start_s),
        SimDuration::from_secs(sc.churn_window_s),
    ));
    assert_eq!(joined.len(), sc.joins);
    session.submit(
        presets::terasort_replicated("/gray", sc.blocks * (64 << 20), sc.reducers, 3)
            // One 64 MB record per map task: more dispatch waves than
            // slots, so late joiners find a non-empty queue.
            .map_tasks(sc.blocks as usize),
    );
    let result = session.run();

    // Drain past the last death-detection window so replication repair
    // finishes, then audit the NameNode. The returned summary carries the
    // cumulative event count of the whole simulation.
    let resume = cluster.sim.now();
    let summary = cluster.sim.run_until(resume + SimDuration::from_secs(180));
    let wall_s = started.elapsed().as_secs_f64();

    assert!(result.succeeded, "churn terasort failed");
    // One split per slot (the paper's NumMappers plan): the 3-waves-of-
    // blocks input makes the pending queue outlive the churn window.
    assert!(result.map_tasks as usize >= sc.workers);
    let joined_dispatches = result
        .dispatch_log
        .iter()
        .filter(|&&(_, n)| joined.contains(&n))
        .count() as u64;
    assert!(
        joined_dispatches > 0,
        "no work was dispatched onto joined nodes"
    );
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("cluster.nodes_joined"), sc.joins as u64);
    assert_eq!(stats.counter("cluster.nodes_left"), n_leaves as u64);
    assert!(stats.counter("dfs.replications_started") > 0);
    let nn = cluster
        .sim
        .actor_ref::<NameNode>(cluster.dfs.namenode)
        .expect("namenode alive");
    assert_eq!(
        nn.under_replicated_blocks(),
        0,
        "blocks did not re-reach target replication"
    );

    Sample {
        workers: sc.workers,
        joins: sc.joins,
        leaves: n_leaves,
        flows: stats.counter("net.flows_done"),
        events: summary.events,
        wall_s,
        events_per_sec: summary.events as f64 / wall_s.max(1e-9),
        makespan_s: result.elapsed.as_secs_f64(),
        replications: stats.counter("dfs.blocks_replicated"),
        abort_scanned: stats.counter("net.abort_flows_scanned"),
        joined_dispatches,
        attempts: result.attempts,
    }
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let sc = if quick {
        Scenario {
            workers: 128,
            // ~3 map dispatch waves (one record per task, 2 slots per
            // node): the pending queue outlives the churn window, so
            // joined nodes demonstrably pull work.
            blocks: 6 * 128,
            reducers: 16,
            joins: 12,
            leave_stride: 13,
            churn_start_s: 12,
            churn_window_s: 30,
        }
    } else {
        Scenario {
            workers: 1000,
            blocks: 6 * 1000,
            reducers: 64,
            joins: 60,
            leave_stride: 19,
            churn_start_s: 12,
            churn_window_s: 40,
        }
    };

    println!(
        "# churn_scale — {}-node terasort under join/leave churn",
        sc.workers
    );
    let s = run(&sc);
    let churned = s.joins + s.leaves;
    let pct = 100.0 * churned as f64 / sc.workers as f64;
    println!(
        "{:>6} workers  {:>3} joins  {:>3} leaves ({pct:.1}% churn)",
        s.workers, s.joins, s.leaves
    );
    println!(
        "  makespan {:>8.1} s sim   wall {:>6.2} s   {} events ({:.0}/s)   flows {}   attempts {}",
        s.makespan_s, s.wall_s, s.events, s.events_per_sec, s.flows, s.attempts
    );
    println!(
        "  re-replications {}   abort-scan visits {}   dispatches on joined nodes {}",
        s.replications, s.abort_scanned, s.joined_dispatches
    );
    if !quick {
        assert!(
            s.wall_s < 10.0,
            "acceptance bar: 1000-node churn terasort in single-digit seconds, got {:.2}s",
            s.wall_s
        );
    }

    let section = format!(
        "{{\n    \"scenario\": \"terasort, 64 MB blocks x{}, replication 3, {} reducers, churn wave {}j+{}l over [{}s, {}s]\",\n    \"quick\": {quick},\n    \"runs\": [\n      {{ \"workers\": {}, \"joins\": {}, \"leaves\": {}, \"churn_pct\": {pct:.1}, \"flows\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \"wall_s\": {:.4}, \"makespan_s\": {:.3}, \"attempts\": {}, \"rereplications\": {}, \"abort_flows_scanned\": {}, \"joined_node_dispatches\": {} }}\n    ]\n  }}",
        sc.blocks,
        sc.reducers,
        sc.joins,
        s.leaves,
        sc.churn_start_s,
        sc.churn_start_s + sc.churn_window_s,
        s.workers,
        s.joins,
        s.leaves,
        s.flows,
        s.events,
        s.events_per_sec,
        s.wall_s,
        s.makespan_s,
        s.attempts,
        s.replications,
        s.abort_scanned,
        s.joined_dispatches,
    );
    let out = if quick {
        "BENCH_perf.quick.json"
    } else {
        "BENCH_perf.json"
    };
    accelmr_bench::update_bench_section(out, "churn_scale", &section)
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out} (churn_scale section)");
}
