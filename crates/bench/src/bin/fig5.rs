//! Regenerates the paper's Figure 5: distributed encryption of a fixed
//! 120 GB data set across 4..64 nodes (Empty / Java / Cell mappers).

use accelmr_hybrid::experiments::{fig5, DistEncryptParams};

fn main() {
    let t = std::time::Instant::now();
    let mut params = DistEncryptParams {
        nodes: vec![4, 8, 16, 32, 64],
        ..DistEncryptParams::default()
    };
    if accelmr_bench::quick_mode() {
        params.nodes = vec![4, 16];
        params.total_gb = 24;
    }
    accelmr_bench::emit(&fig5(&params), t);
}
