//! Regenerates the paper's Figure 6: raw node Pi estimation performance.

use accelmr_hybrid::experiments::{fig6, Fig6Params};

fn main() {
    let t = std::time::Instant::now();
    let mut params = Fig6Params::default();
    if accelmr_bench::quick_mode() {
        params.samples = vec![1_000, 1_000_000, 1_000_000_000];
    }
    accelmr_bench::emit(&fig6(&params), t);
}
