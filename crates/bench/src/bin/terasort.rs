//! Regenerates the Terasort-style per-node feed-rate experiment (paper
//! §IV-A closing observation: ~5.5 MB/s per node).

use accelmr_hybrid::experiments::{terasort_feed_rate, TerasortParams};

fn main() {
    let t = std::time::Instant::now();
    let mut params = TerasortParams::default();
    if accelmr_bench::quick_mode() {
        params.nodes = vec![4];
    }
    accelmr_bench::emit(&terasort_feed_rate(&params), t);
}
