//! Regenerates the paper's Figure 4: distributed encryption, proportional
//! data set (1 GB per mapper, 2 mappers per node).

use accelmr_hybrid::experiments::{fig4, DistEncryptParams};

fn main() {
    let t = std::time::Instant::now();
    let mut params = DistEncryptParams::default();
    if accelmr_bench::quick_mode() {
        params.nodes = vec![4, 12];
    }
    accelmr_bench::emit(&fig4(&params), t);
}
