//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. record feed pipelining on/off, and the feed-cap sweep;
//! 2. SPU work-block size (the paper's 4 KB choice);
//! 3. heartbeat interval's contribution to the Hadoop floor;
//! 4. locality-aware vs FIFO scheduling.

use accelmr_cellbe::{CellConfig, CellMachine, DataInput};
use accelmr_hybrid::experiments::dist::{run_encrypt_job, run_pi_job, AesMapper, PiMapper};
use accelmr_hybrid::kernels::{job_key, JOB_NONCE};
use accelmr_mapred::{MrConfig, SchedulerPolicy};

fn main() {
    let nodes = 4;
    let bytes: u64 = 8 << 30;

    println!("# ablation 1 — record feed pipelining (8 GB, 4 nodes, Java mapper)");
    for (label, pipelined) in [("pipelined", true), ("stop-and-wait", false)] {
        let cfg = MrConfig {
            pipelined_reads: pipelined,
            ..MrConfig::default()
        };
        let r = run_encrypt_job(1, nodes, bytes, AesMapper::Java, &cfg);
        println!("{label:>16} {:>10.1} s", r.elapsed.as_secs_f64());
    }

    println!("\n# ablation 1b — feed cap sweep (Cell mapper; linear in 1/cap)");
    for cap_mbps in [4.25, 8.5, 17.0, 34.0] {
        let cfg = MrConfig {
            record_feed_cap: Some(cap_mbps * 1e6),
            ..MrConfig::default()
        };
        let r = run_encrypt_job(2, nodes, bytes, AesMapper::Cell, &cfg);
        println!("{cap_mbps:>13.2} MB/s {:>10.1} s", r.elapsed.as_secs_f64());
    }

    println!("\n# ablation 2 — SPU block size (64 MB offload, warm Cell)");
    let key = job_key();
    let kernel = accelmr_cellbe::AesCtrSpeKernel::new(key, JOB_NONCE);
    for block_kb in [4usize, 8, 16, 32, 48] {
        let mut m = CellMachine::new(CellConfig::default(), false).unwrap();
        m.warm_up();
        let r = m
            .run_data(DataInput::Virtual(64 << 20), &kernel, block_kb * 1024)
            .unwrap();
        println!(
            "{block_kb:>10} KB {:>10.1} MB/s  (dma req {}, peak MFC {})",
            r.throughput_bps() / 1e6,
            r.dma_requests,
            r.peak_mfc_queue
        );
    }

    println!("\n# ablation 3 — heartbeat interval vs tiny-job floor (Pi, 1e6 samples)");
    for hb_secs in [1u64, 3, 6, 12] {
        let cfg = MrConfig {
            heartbeat_interval: accelmr_des::SimDuration::from_secs(hb_secs),
            tt_dead_after: accelmr_des::SimDuration::from_secs(hb_secs * 10),
            ..MrConfig::default()
        };
        let (r, _) = run_pi_job(3, nodes, 1_000_000, PiMapper::Cell, &cfg);
        println!("{hb_secs:>10} s hb {:>10.1} s job", r.elapsed.as_secs_f64());
    }

    // Note: with paper-style splits (split >> block) locality is bounded
    // by round-robin placement at ~1/N regardless of policy; the policy's
    // win shows with block-sized splits (see mapred's locality test).
    println!("\n# ablation 4 — scheduler policy (8 GB, 4 nodes, Cell mapper)");
    for (label, policy) in [
        ("locality-first", SchedulerPolicy::LocalityFirst),
        ("fifo", SchedulerPolicy::Fifo),
    ] {
        let cfg = MrConfig {
            scheduler: policy,
            ..MrConfig::default()
        };
        let r = run_encrypt_job(4, nodes, bytes, AesMapper::Cell, &cfg);
        let frac = r.local_reads as f64 / (r.local_reads + r.remote_reads).max(1) as f64;
        println!(
            "{label:>16} {:>10.1} s  ({:.0}% local reads)",
            r.elapsed.as_secs_f64(),
            frac * 100.0
        );
    }
}
