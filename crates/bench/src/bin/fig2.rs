//! Regenerates the paper's Figure 2: raw node encryption bandwidth vs size.

use accelmr_hybrid::experiments::{fig2, Fig2Params};

fn main() {
    let t = std::time::Instant::now();
    let mut params = Fig2Params::default();
    if accelmr_bench::quick_mode() {
        params.sizes_mb = vec![1, 16, 256];
    }
    accelmr_bench::emit(&fig2(&params), t);
}
