//! des_core — **wall-clock** microbenchmark of the event engine itself.
//!
//! The macro benches (`net_scale`, `churn_scale`) measure the simulator
//! with the full fabric/DFS/MapReduce stack on top; this bin isolates the
//! `accelmr-des` core so queue regressions are attributable. Three
//! workloads, one per hot path of the calendar-queue overhaul:
//!
//! * `timer_wheel` — thousands of staggered periodic timers rearming in
//!   place (the heartbeat shape: `Payload::Timer` is inline, the rearm
//!   path reuses the arming's slot, and the wheel absorbs the spread of
//!   deadlines).
//! * `msg_bursts` — actors fanning boxed messages out in same-instant
//!   bursts with short random hops (the shuffle shape: the `now_fifo`
//!   tier must make same-instant delivery comparison-free).
//! * `cancel_churn` — timers armed and immediately re-armed before firing
//!   (the retry/timeout shape: a cancel is one generation bump, and the
//!   stale queue entry is dropped on pop without a hash lookup).
//!
//! Writes the `des_core` section of `BENCH_perf.json`
//! (`BENCH_perf.quick.json` under `--quick`, the CI smoke path).

use std::time::Instant;

use accelmr_des::prelude::*;

const TAG_TICK: u64 = 1;
const TAG_RETRY: u64 = 2;

/// A heartbeat-shaped actor: one periodic timer, re-armed in place for a
/// fixed number of firings. Intervals are staggered per actor so firings
/// spread across wheel buckets instead of synchronizing.
struct TimerLoop {
    interval: SimDuration,
    remaining: u64,
}

impl Actor for TimerLoop {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                ctx.after(self.interval, TAG_TICK);
            }
            Event::Timer { tag: TAG_TICK, .. } => {
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.rearm_after(self.interval, TAG_TICK);
                }
            }
            _ => {}
        }
    }
}

/// A token forwarded around the ring; `hops` counts down to extinction.
#[derive(Debug, Clone, Copy)]
struct Token {
    hops: u32,
}

/// A shuffle-shaped actor: each received token is forwarded to a pseudo-
/// random peer, usually at the *same instant* (exercising the FIFO tier),
/// sometimes a short hop ahead (exercising near-future bucket pushes).
struct BurstNode {
    peers: Vec<ActorId>,
    fanout: u32,
}

impl Actor for BurstNode {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                for _ in 0..self.fanout {
                    let to = self.peers[(ctx.rng().next_u64() as usize) % self.peers.len()];
                    ctx.send(to, Token { hops: 40 });
                }
            }
            Event::Msg { msg, .. } => {
                if let Some(tok) = msg.peek::<Token>() {
                    if tok.hops == 0 {
                        return;
                    }
                    let next = Token { hops: tok.hops - 1 };
                    let to = self.peers[(ctx.rng().next_u64() as usize) % self.peers.len()];
                    // 3 of 4 hops stay at the current instant; the rest
                    // jump a few microseconds out.
                    match ctx.rng().next_u64() % 4 {
                        0 => {
                            let ahead = SimDuration::from_nanos(1 + ctx.rng().next_u64() % 4_000);
                            ctx.send_after(to, next, ahead);
                        }
                        _ => ctx.send(to, next),
                    }
                }
            }
            _ => {}
        }
    }
}

/// A timeout-shaped actor: every tick pushes a long "retry" deadline
/// further out. The reschedule bumps the slot's generation, so the
/// previously queued arming goes stale and the pop path must drop it —
/// one cancelled entry per tick, no hash lookups.
struct CancelChurn {
    interval: SimDuration,
    remaining: u64,
    retry: Option<TimerHandle>,
}

impl Actor for CancelChurn {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                ctx.after(self.interval, TAG_TICK);
            }
            Event::Timer { tag: TAG_TICK, .. } => {
                self.remaining -= 1;
                let deadline = ctx.now() + self.interval * 8;
                self.retry = Some(match self.retry {
                    Some(h) => ctx.reschedule_at(h, deadline, TAG_RETRY),
                    None => ctx.after_at(deadline, TAG_RETRY),
                });
                if self.remaining > 0 {
                    ctx.rearm_after(self.interval, TAG_TICK);
                }
            }
            Event::Timer { tag: TAG_RETRY, .. } => {
                self.retry = None;
            }
            _ => {}
        }
    }
}

struct Sample {
    workload: &'static str,
    actors: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    pushes: u64,
    peak_depth: u64,
    cancelled_drops: u64,
    timer_rearms: u64,
}

fn finish(workload: &'static str, actors: usize, mut sim: Sim, started: Instant) -> Sample {
    let summary = sim.run();
    let wall_s = started.elapsed().as_secs_f64();
    let q = sim.stats().queue();
    Sample {
        workload,
        actors,
        events: summary.events,
        wall_s,
        events_per_sec: summary.events as f64 / wall_s.max(1e-9),
        pushes: q.pushes,
        peak_depth: q.peak_depth,
        cancelled_drops: q.cancelled_drops,
        timer_rearms: q.timer_rearms,
    }
}

fn timer_wheel(actors: usize, firings: u64) -> Sample {
    let mut sim = Sim::new(1);
    for i in 0..actors {
        sim.spawn(Box::new(TimerLoop {
            // 1 ms base with a per-actor prime-stride stagger.
            interval: SimDuration::from_nanos(1_000_000 + (i as u64 % 97) * 1_013),
            remaining: firings,
        }));
    }
    finish("timer_wheel", actors, sim, Instant::now())
}

fn msg_bursts(actors: usize, fanout: u32) -> Sample {
    let mut sim = Sim::new(2);
    let ids: Vec<ActorId> = (0..actors)
        .map(|_| {
            sim.spawn(Box::new(BurstNode {
                peers: Vec::new(),
                fanout,
            }))
        })
        .collect();
    // Peer tables are installed before `run`, so every `Start` burst sees
    // the full ring.
    for &id in &ids {
        sim.actor_mut::<BurstNode>(id).expect("spawned").peers = ids.clone();
    }
    finish("msg_bursts", actors, sim, Instant::now())
}

fn cancel_churn(actors: usize, ticks: u64) -> Sample {
    let mut sim = Sim::new(3);
    for i in 0..actors {
        sim.spawn(Box::new(CancelChurn {
            interval: SimDuration::from_nanos(500_000 + (i as u64 % 61) * 997),
            remaining: ticks,
            retry: None,
        }));
    }
    finish("cancel_churn", actors, sim, Instant::now())
}

fn main() {
    let quick = accelmr_bench::quick_mode();
    let (n, firings, fanout, ticks) = if quick {
        (512usize, 40u64, 4u32, 40u64)
    } else {
        (8_192usize, 200u64, 8u32, 200u64)
    };

    println!("# des_core — event-engine microbench (calendar queue hot paths)");
    println!(
        "{:>12} {:>7} {:>9} {:>8} {:>12} {:>10} {:>10} {:>9} {:>8}",
        "workload",
        "actors",
        "events",
        "wall(s)",
        "events/s",
        "pushes",
        "peak",
        "cancelled",
        "rearms"
    );
    let samples = [
        timer_wheel(n, firings),
        msg_bursts(n, fanout),
        cancel_churn(n / 2, ticks),
    ];
    for s in &samples {
        println!(
            "{:>12} {:>7} {:>9} {:>8.3} {:>12.0} {:>10} {:>10} {:>9} {:>8}",
            s.workload,
            s.actors,
            s.events,
            s.wall_s,
            s.events_per_sec,
            s.pushes,
            s.peak_depth,
            s.cancelled_drops,
            s.timer_rearms
        );
    }
    // Workload-shape sanity: the rearm path and the cancel path must have
    // actually been exercised, or the numbers measure nothing.
    assert!(samples[0].timer_rearms > 0, "timer_wheel never re-armed");
    assert!(
        samples[2].cancelled_drops > 0,
        "cancel_churn never dropped a stale arming"
    );

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{ \"workload\": \"{}\", \"actors\": {}, \"events\": {}, \"wall_s\": {:.4}, \"events_per_sec\": {:.0}, \"pushes\": {}, \"peak_depth\": {}, \"cancelled_drops\": {}, \"timer_rearms\": {} }}",
                s.workload,
                s.actors,
                s.events,
                s.wall_s,
                s.events_per_sec,
                s.pushes,
                s.peak_depth,
                s.cancelled_drops,
                s.timer_rearms
            )
        })
        .collect();
    let section = format!(
        "{{\n    \"scenario\": \"engine-only: staggered periodic timers, same-instant message bursts, cancel-heavy retries\",\n    \"quick\": {quick},\n    \"runs\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    );
    let out = if quick {
        "BENCH_perf.quick.json"
    } else {
        "BENCH_perf.json"
    };
    accelmr_bench::update_bench_section(out, "des_core", &section)
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("\nwrote {out} (des_core section)");
}
