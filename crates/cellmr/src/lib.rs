//! # accelmr-cellmr — MapReduce framework for the Cell BE
//!
//! A reproduction of the intra-node MapReduce runtime (de Kruijf &
//! Sankaralingam, UW-Madison TR1625) that the paper wraps behind its second
//! JNI library. The framework's defining overhead — the PPE copying input
//! into framework-managed buffers before SPEs see any data — is modeled
//! explicitly and is what separates the "MapReduce Cell" curve from the
//! direct "Cell BE" curve in the paper's Figure 2.
//!
//! Two job shapes:
//! * [`CellMrRuntime::run_map`] — map-only byte transforms (AES encryption);
//! * [`CellMrRuntime::run_mapreduce`] — full key/value map → partition →
//!   sort → reduce → merge pipeline with per-phase timing.

pub mod config;
pub mod runtime;

pub use config::CellMrConfig;
pub use runtime::{CellMapFn, CellMrReport, CellMrRuntime, CellReduceFn};
