//! Configuration of the MapReduce-for-Cell framework.

use accelmr_des::SimDuration;

/// Framework parameters. Defaults model the runtime of de Kruijf &
/// Sankaralingam that the paper wraps behind its second native library,
/// including the overhead the paper calls out: input data is copied again
/// into framework-managed buffers by the PPE before any SPE sees it.
#[derive(Clone, Debug)]
pub struct CellMrConfig {
    /// Framework record granularity, bytes (the unit handed to one SPU map
    /// invocation). The paper uses 4 KB blocks.
    pub record_size: usize,
    /// PPE bandwidth for the staging copy into framework buffers, B/s.
    pub staging_bytes_per_sec: f64,
    /// PPE-side bookkeeping per record (queue entry, state update).
    pub per_record_overhead: SimDuration,
    /// SPU cycles per emitted key/value pair in the partition phase.
    pub partition_cycles_per_pair: f64,
    /// SPU cycles per comparison in the per-partition sort phase.
    pub sort_cycles_per_compare: f64,
    /// SPU cycles per pair in the reduce phase (framework overhead, added
    /// to the user reduce function's own cost).
    pub reduce_cycles_per_pair: f64,
    /// PPE cycles per pair in the final merge of per-SPE outputs.
    pub merge_cycles_per_pair: f64,
}

impl Default for CellMrConfig {
    fn default() -> Self {
        CellMrConfig {
            record_size: 4 * 1024,
            staging_bytes_per_sec: 1.6e9,
            per_record_overhead: SimDuration::from_micros(2),
            partition_cycles_per_pair: 20.0,
            sort_cycles_per_compare: 24.0,
            reduce_cycles_per_pair: 30.0,
            merge_cycles_per_pair: 16.0,
        }
    }
}

impl CellMrConfig {
    /// Time for the PPE to stage `bytes` into framework buffers.
    pub fn staging_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.staging_bytes_per_sec)
    }

    /// Serial PPE bookkeeping time for `records` records.
    pub fn bookkeeping_time(&self, records: u64) -> SimDuration {
        self.per_record_overhead.saturating_mul(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_time_linear() {
        let c = CellMrConfig::default();
        assert_eq!(c.staging_time(1_600_000_000).as_nanos(), 1_000_000_000);
        assert_eq!(c.staging_time(0), SimDuration::ZERO);
    }

    #[test]
    fn bookkeeping_scales_with_records() {
        let c = CellMrConfig::default();
        assert_eq!(c.bookkeeping_time(1000), SimDuration::from_millis(2));
    }
}
