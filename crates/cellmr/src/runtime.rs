//! The MapReduce-for-Cell runtime.
//!
//! Mirrors the framework the paper links against for the single-node
//! "MapReduce Cell" configuration of Figure 2: the PPE first copies input
//! into framework-managed buffers (the overhead the paper measures), then
//! records flow through map → partition → sort → reduce → merge with the
//! map/partition/sort/reduce phases on the SPEs and the final merge on the
//! PPE. Two entry points exist:
//!
//! * [`CellMrRuntime::run_map`] — map-only jobs over raw bytes (the AES
//!   encryption workload); output bytes are produced for real in
//!   materialized mode.
//! * [`CellMrRuntime::run_mapreduce`] — full key/value jobs; pairs are
//!   computed for real, timing comes from the same calibrated constants.

use accelmr_cellbe::machine::{CellMachine, DataInput, OffloadReport};
use accelmr_cellbe::{CellConfig, CellConfigError, DataKernel};
use accelmr_des::SimDuration;

use crate::config::CellMrConfig;

/// User map function for key/value jobs.
pub trait CellMapFn: Send + Sync {
    /// SPU cycles per input byte of the map function itself.
    fn cycles_per_byte(&self) -> f64;
    /// Maps one record (at absolute `offset`) to zero or more pairs.
    fn map(&self, offset: u64, record: &[u8], emit: &mut dyn FnMut(u64, u64));
}

/// User reduce function for key/value jobs.
pub trait CellReduceFn: Send + Sync {
    /// SPU cycles per reduced value (user function body).
    fn cycles_per_value(&self) -> f64;
    /// Folds all values of one key into a single value.
    fn reduce(&self, key: u64, values: &[u64]) -> u64;
}

/// Phase-by-phase timing of one framework job.
#[derive(Clone, Debug, Default)]
pub struct CellMrReport {
    /// PPE staging copy into framework buffers.
    pub staging: SimDuration,
    /// SPU map phase (includes DMA, from the machine model).
    pub map: SimDuration,
    /// SPU partition phase.
    pub partition: SimDuration,
    /// SPU per-partition sort phase.
    pub sort: SimDuration,
    /// SPU reduce phase.
    pub reduce: SimDuration,
    /// PPE merge of per-partition outputs.
    pub merge: SimDuration,
    /// Offload start-up (context + session).
    pub startup: SimDuration,
    /// End-to-end job time.
    pub total: SimDuration,
    /// Pairs emitted by map.
    pub map_pairs: u64,
    /// Pairs after reduce.
    pub reduced_pairs: u64,
    /// Records processed.
    pub records: u64,
}

impl CellMrReport {
    /// Effective throughput over `bytes` input.
    pub fn throughput_bps(&self, bytes: u64) -> f64 {
        if self.total == SimDuration::ZERO {
            0.0
        } else {
            bytes as f64 / self.total.as_secs_f64()
        }
    }
}

/// The framework runtime: owns a [`CellMachine`] and the framework config.
pub struct CellMrRuntime {
    machine: CellMachine,
    cfg: CellMrConfig,
}

impl CellMrRuntime {
    /// Builds a runtime over a Cell machine model.
    pub fn new(
        cell: CellConfig,
        cfg: CellMrConfig,
        materialized: bool,
    ) -> Result<Self, CellConfigError> {
        Ok(CellMrRuntime {
            machine: CellMachine::new(cell, materialized)?,
            cfg,
        })
    }

    /// Direct access to the underlying machine (warm-up, inspection).
    pub fn machine_mut(&mut self) -> &mut CellMachine {
        &mut self.machine
    }

    /// Framework configuration.
    pub fn config(&self) -> &CellMrConfig {
        &self.cfg
    }

    /// Map-only job over raw bytes (the encryption workload). Semantics
    /// match [`CellMachine::run_data`] plus the framework's staging copy and
    /// per-record bookkeeping; returns the machine report (with output in
    /// materialized mode) and the framework report with phase breakdown.
    pub fn run_map(
        &mut self,
        input: DataInput<'_>,
        kernel: &dyn DataKernel,
    ) -> Result<(OffloadReport, CellMrReport), CellConfigError> {
        self.run_map_at(input, kernel, 0)
    }

    /// Like [`CellMrRuntime::run_map`], with kernel offsets shifted by
    /// `base_offset` (records of a larger logical stream).
    pub fn run_map_at(
        &mut self,
        input: DataInput<'_>,
        kernel: &dyn DataKernel,
        base_offset: u64,
    ) -> Result<(OffloadReport, CellMrReport), CellConfigError> {
        let bytes = input.len();
        let records = bytes.div_ceil(self.cfg.record_size as u64);
        let staging = self.cfg.staging_time(bytes);
        let machine_report =
            self.machine
                .run_data_at(input, kernel, self.cfg.record_size, base_offset)?;

        // The PPE enqueues records while SPEs drain them; whichever is
        // slower bounds the map phase.
        let machine_body = machine_report.elapsed - machine_report.startup;
        let ppe_serial = self.cfg.bookkeeping_time(records);
        let map = machine_body.max(ppe_serial);

        let total = machine_report.startup + staging + map;
        let report = CellMrReport {
            staging,
            map,
            startup: machine_report.startup,
            total,
            records,
            ..CellMrReport::default()
        };
        Ok((machine_report, report))
    }

    /// Full map/partition/sort/reduce/merge job over key/value pairs.
    /// Returns the reduced pairs sorted by key plus the phase report.
    pub fn run_mapreduce(
        &mut self,
        input: &[u8],
        map_fn: &dyn CellMapFn,
        reduce_fn: &dyn CellReduceFn,
    ) -> Result<(Vec<(u64, u64)>, CellMrReport), CellConfigError> {
        let n_spes = self.machine.config().n_spes;
        let record_size = self.cfg.record_size;
        let bytes = input.len() as u64;
        let records = bytes.div_ceil(record_size as u64);

        let staging = self.cfg.staging_time(bytes);

        // ---- Map phase: real pair production + machine timing. ----
        struct CostOnly(f64);
        impl DataKernel for CostOnly {
            fn name(&self) -> &'static str {
                "cellmr-map"
            }
            fn cycles_per_byte(&self) -> f64 {
                self.0
            }
            fn exec(&self, _: u64, _: &mut [u8]) {}
        }
        let timing_kernel = CostOnly(map_fn.cycles_per_byte());
        let machine_report =
            self.machine
                .run_data(DataInput::Virtual(bytes), &timing_kernel, record_size)?;
        let machine_body = machine_report.elapsed - machine_report.startup;
        let map_time = machine_body.max(self.cfg.bookkeeping_time(records));

        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut offset = 0usize;
        while offset < input.len() {
            let end = (offset + record_size).min(input.len());
            map_fn.map(offset as u64, &input[offset..end], &mut |k, v| {
                pairs.push((k, v))
            });
            offset = end;
        }
        let map_pairs = pairs.len() as u64;

        // ---- Partition phase: hash pairs to SPE-owned partitions. ----
        let cell = self.machine.config();
        let partition_time =
            cell.cycles(self.cfg.partition_cycles_per_pair * map_pairs as f64) / n_spes as u64;
        let mut partitions: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_spes];
        for (k, v) in pairs {
            let mut s = k;
            let slot = (accelmr_des::splitmix64(&mut s) % n_spes as u64) as usize;
            partitions[slot].push((k, v));
        }

        // ---- Sort phase: each SPE sorts its partition; slowest binds. ----
        let mut sort_time = SimDuration::ZERO;
        for p in &mut partitions {
            let n = p.len() as f64;
            let compares = if n > 1.0 { n * n.log2() } else { 0.0 };
            sort_time = sort_time.max(cell.cycles(self.cfg.sort_cycles_per_compare * compares));
            p.sort_unstable_by_key(|&(k, _)| k);
        }

        // ---- Reduce phase: group equal keys within each partition. ----
        let mut reduce_time = SimDuration::ZERO;
        let mut reduced: Vec<Vec<(u64, u64)>> = Vec::with_capacity(n_spes);
        for p in &partitions {
            let cycles =
                (self.cfg.reduce_cycles_per_pair + reduce_fn.cycles_per_value()) * p.len() as f64;
            reduce_time = reduce_time.max(cell.cycles(cycles));
            let mut out = Vec::new();
            let mut i = 0;
            while i < p.len() {
                let key = p[i].0;
                let mut j = i;
                while j < p.len() && p[j].0 == key {
                    j += 1;
                }
                let values: Vec<u64> = p[i..j].iter().map(|&(_, v)| v).collect();
                out.push((key, reduce_fn.reduce(key, &values)));
                i = j;
            }
            reduced.push(out);
        }

        // ---- Merge phase: PPE k-way merge of sorted partition outputs. ----
        let reduced_pairs: u64 = reduced.iter().map(|r| r.len() as u64).sum();
        let merge_time = cell.cycles(self.cfg.merge_cycles_per_pair * reduced_pairs as f64);
        let mut output: Vec<(u64, u64)> = reduced.into_iter().flatten().collect();
        output.sort_unstable_by_key(|&(k, _)| k);

        let total = machine_report.startup
            + staging
            + map_time
            + partition_time
            + sort_time
            + reduce_time
            + merge_time;
        let report = CellMrReport {
            staging,
            map: map_time,
            partition: partition_time,
            sort: sort_time,
            reduce: reduce_time,
            merge: merge_time,
            startup: machine_report.startup,
            total,
            map_pairs,
            reduced_pairs,
            records,
        };
        Ok((output, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_cellbe::AesCtrSpeKernel;
    use accelmr_kernels::aes::modes::ctr_xor;
    use accelmr_kernels::{fill_deterministic, Aes128, AesImpl};
    use std::sync::Arc;

    fn runtime(materialized: bool) -> CellMrRuntime {
        CellMrRuntime::new(CellConfig::default(), CellMrConfig::default(), materialized).unwrap()
    }

    #[test]
    fn map_only_encryption_is_correct_and_slower_than_direct() {
        let key = Arc::new(Aes128::new(b"cellmr-test-key!"));
        let kernel = AesCtrSpeKernel::new(key.clone(), 3);

        let mut input = vec![0u8; 256 * 1024];
        fill_deterministic(5, 0, &mut input);

        let mut fw = runtime(true);
        fw.machine_mut().warm_up();
        let (machine_report, fw_report) = fw.run_map(DataInput::Real(&input), &kernel).unwrap();

        let mut expect = input.clone();
        ctr_xor(&key, AesImpl::Scalar, 3, 0, &mut expect);
        assert_eq!(machine_report.output.as_deref(), Some(expect.as_slice()));

        // The framework total includes the staging copy the paper calls out,
        // so it must exceed the raw machine run.
        assert!(fw_report.total > machine_report.elapsed);
        assert_eq!(fw_report.records, (256 * 1024) / 4096);
    }

    #[test]
    fn framework_asymptotic_bandwidth_matches_figure_2() {
        // Large warm run: direct ≈ 700 MB/s, framework ≈ 430-530 MB/s
        // (staging serializes with map).
        let key = Arc::new(Aes128::new(&[0u8; 16]));
        let kernel = AesCtrSpeKernel::new(key, 0);
        let mut fw = runtime(false);
        fw.machine_mut().warm_up();
        let bytes = 256u64 << 20;
        let (_, report) = fw.run_map(DataInput::Virtual(bytes), &kernel).unwrap();
        let mbps = report.throughput_bps(bytes) / 1e6;
        assert!((400.0..560.0).contains(&mbps), "framework rate {mbps} MB/s");
    }

    struct CountWords;
    impl CellMapFn for CountWords {
        fn cycles_per_byte(&self) -> f64 {
            4.0
        }
        fn map(&self, _offset: u64, record: &[u8], emit: &mut dyn FnMut(u64, u64)) {
            // "Word" = byte value bucketed mod 17: a deterministic,
            // skew-free stand-in for tokenization.
            for &b in record {
                emit((b % 17) as u64, 1);
            }
        }
    }

    struct SumReduce;
    impl CellReduceFn for SumReduce {
        fn cycles_per_value(&self) -> f64 {
            2.0
        }
        fn reduce(&self, _key: u64, values: &[u64]) -> u64 {
            values.iter().sum()
        }
    }

    #[test]
    fn mapreduce_produces_exact_counts() {
        let mut input = vec![0u8; 64 * 1024];
        fill_deterministic(7, 0, &mut input);

        let mut fw = runtime(false);
        let (output, report) = fw.run_mapreduce(&input, &CountWords, &SumReduce).unwrap();

        // Reference counts.
        let mut expect = std::collections::BTreeMap::new();
        for &b in &input {
            *expect.entry((b % 17) as u64).or_insert(0u64) += 1;
        }
        let got: std::collections::BTreeMap<u64, u64> = output.iter().copied().collect();
        assert_eq!(got, expect);

        // Sorted by key, totals consistent.
        assert!(output.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(report.map_pairs, 64 * 1024);
        assert_eq!(report.reduced_pairs, output.len() as u64);
        let total: u64 = output.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, 64 * 1024);
    }

    #[test]
    fn mapreduce_report_phases_are_populated() {
        let mut input = vec![0u8; 32 * 1024];
        fill_deterministic(8, 0, &mut input);
        let mut fw = runtime(false);
        let (_, report) = fw.run_mapreduce(&input, &CountWords, &SumReduce).unwrap();
        for (name, phase) in [
            ("staging", report.staging),
            ("map", report.map),
            ("partition", report.partition),
            ("sort", report.sort),
            ("reduce", report.reduce),
            ("merge", report.merge),
        ] {
            assert!(phase > SimDuration::ZERO, "phase {name} is zero");
        }
        assert!(report.total >= report.staging + report.map);
    }

    #[test]
    fn empty_input_mapreduce() {
        let mut fw = runtime(false);
        let (output, report) = fw.run_mapreduce(&[], &CountWords, &SumReduce).unwrap();
        assert!(output.is_empty());
        assert_eq!(report.map_pairs, 0);
        assert_eq!(report.records, 0);
    }
}
