//! DFS wire protocol: requests and replies exchanged between clients,
//! the NameNode, and DataNodes (always via the network fabric).

use accelmr_des::ActorId;
use accelmr_net::NodeId;

use crate::config::BlockId;

/// One block of a file, with its placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockLoc {
    /// Block identifier.
    pub id: BlockId,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Block length (the final block may be short).
    pub len: u64,
    /// Nodes holding live replicas (dead nodes are excluded).
    pub replicas: Vec<NodeId>,
}

/// Client view of a file: metadata + block locations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileView {
    /// File path.
    pub path: String,
    /// Total length, bytes.
    pub len: u64,
    /// Block size used by the file.
    pub block_size: u64,
    /// Content seed (synthetic data is a pure function of `(seed, offset)`).
    pub seed: u64,
    /// Blocks in file order.
    pub blocks: Vec<BlockLoc>,
}

// ---------------- NameNode requests ----------------

/// Instantly installs a fully-written file across the cluster — the state
/// the paper's experiments start from (data already resident in HDFS).
/// Placement is balanced round-robin with `replication` distinct nodes per
/// block.
#[derive(Debug)]
pub struct PreloadFile {
    /// File path.
    pub path: String,
    /// Total length, bytes.
    pub len: u64,
    /// Block size (None = config default).
    pub block_size: Option<u64>,
    /// Replication (None = config default).
    pub replication: Option<usize>,
    /// Content seed.
    pub seed: u64,
    /// Who receives [`PreloadDone`].
    pub reply: ActorId,
}

/// Reply to [`PreloadFile`].
#[derive(Debug, Clone)]
pub struct PreloadDone {
    /// The installed file.
    pub view: FileView,
}

/// Asks for a file's block locations.
#[derive(Debug)]
pub struct GetLocations {
    /// File path.
    pub path: String,
    /// Who receives [`LocationsReply`].
    pub reply: ActorId,
    /// Node the reply RPC travels to.
    pub reply_node: NodeId,
    /// Correlation tag echoed in the reply.
    pub tag: u64,
}

/// Reply to [`GetLocations`].
#[derive(Debug, Clone)]
pub struct LocationsReply {
    /// Correlation tag.
    pub tag: u64,
    /// The file, or `None` if the path does not exist.
    pub view: Option<FileView>,
}

/// Creates an empty file for writing.
#[derive(Debug)]
pub struct CreateFile {
    /// File path.
    pub path: String,
    /// Replication (None = config default).
    pub replication: Option<usize>,
    /// Who receives [`CreateAck`].
    pub reply: ActorId,
    /// Node the reply RPC travels to.
    pub reply_node: NodeId,
}

/// Reply to [`CreateFile`].
#[derive(Debug, Clone, Copy)]
pub struct CreateAck {
    /// `false` if the path already existed.
    pub ok: bool,
}

/// Allocates the next block of a file being written, returning the
/// replication pipeline the writer must stream through.
#[derive(Debug)]
pub struct AllocBlock {
    /// File path (must have been created).
    pub path: String,
    /// Bytes the writer will put in this block.
    pub len: u64,
    /// Writer's node (the NameNode prefers a local first replica, as HDFS
    /// does).
    pub writer_node: NodeId,
    /// Who receives [`BlockAllocated`].
    pub reply: ActorId,
    /// Node the reply RPC travels to.
    pub reply_node: NodeId,
    /// Correlation tag.
    pub tag: u64,
}

/// Reply to [`AllocBlock`].
#[derive(Debug, Clone)]
pub struct BlockAllocated {
    /// Correlation tag.
    pub tag: u64,
    /// New block id.
    pub block: BlockId,
    /// Replication pipeline in streaming order.
    pub pipeline: Vec<NodeId>,
}

/// DataNode liveness beacon.
#[derive(Debug, Clone, Copy)]
pub struct DnHeartbeat {
    /// Reporting node.
    pub node: NodeId,
}

/// Asks the NameNode which DataNodes are currently considered live
/// (testing / introspection).
#[derive(Debug)]
pub struct GetLiveNodes {
    /// Who receives [`LiveNodesReply`].
    pub reply: ActorId,
}

/// Reply to [`GetLiveNodes`].
#[derive(Debug, Clone)]
pub struct LiveNodesReply {
    /// Live DataNodes, ascending.
    pub nodes: Vec<NodeId>,
}

/// Admits a freshly-spawned DataNode into the cluster (dynamic
/// membership, control plane — sent directly, not over the fabric). The
/// NameNode adds the node to the placement rotation, starts tracking its
/// liveness, and immediately scans for under-replicated blocks the new
/// capacity could host.
#[derive(Debug, Clone, Copy)]
pub struct AddDataNode {
    /// Joining node.
    pub node: NodeId,
    /// Its DataNode actor.
    pub actor: ActorId,
}

/// Teaches an existing DataNode about a joined peer (control plane), so
/// replication pipelines can forward through it.
#[derive(Debug, Clone, Copy)]
pub struct AddPeer {
    /// The peer's node.
    pub node: NodeId,
    /// The peer's DataNode actor.
    pub actor: ActorId,
}

/// NameNode → source DataNode: stream a locally-held block through
/// `pipeline` (re-replication of an under-replicated block). Each hop
/// installs the block; the final hop acks `ack_to` with [`WriteAck`]
/// carrying `tag`.
#[derive(Debug, Clone)]
pub struct ReplicateBlock {
    /// Block to copy (the source must hold a replica).
    pub block: BlockId,
    /// Target nodes, in streaming order (never includes the source).
    pub pipeline: Vec<NodeId>,
    /// Who receives the final [`WriteAck`] (the NameNode).
    pub ack_to: ActorId,
    /// Node the ack RPC travels to.
    pub ack_node: NodeId,
    /// Correlation tag (the NameNode's pending-replication key).
    pub tag: u64,
}

/// Source DataNode → NameNode: a [`ReplicateBlock`] could not start (the
/// block is unknown locally, or the first hop is unreachable).
#[derive(Debug, Clone, Copy)]
pub struct ReplicationFailed {
    /// Correlation tag from the [`ReplicateBlock`].
    pub tag: u64,
}

/// Installs block metadata on a DataNode (preload control plane).
#[derive(Debug, Clone, Copy)]
pub struct AddBlockMeta {
    /// Block id.
    pub block: BlockId,
    /// Content seed of the owning file.
    pub seed: u64,
    /// Absolute offset of the block in the file's content stream.
    pub base_offset: u64,
    /// Block length.
    pub len: u64,
}

// ---------------- DataNode requests ----------------

/// Reads a byte range of one block; the data streams to `reader_node` as a
/// fluid flow and [`RangeData`] arrives at `reader` when the last byte does.
#[derive(Debug)]
pub struct ReadRange {
    /// Block to read.
    pub block: BlockId,
    /// Offset within the block.
    pub offset_in_block: u64,
    /// Bytes to read.
    pub len: u64,
    /// Node where the reader runs (flow destination).
    pub reader_node: NodeId,
    /// Actor receiving [`RangeData`].
    pub reader: ActorId,
    /// Optional per-stream rate cap (the RecordReader feed ceiling).
    pub cap_bytes_per_sec: Option<f64>,
    /// Correlation tag.
    pub tag: u64,
}

/// Delivered to the reader when a [`ReadRange`] flow completes.
#[derive(Debug)]
pub struct RangeData {
    /// Correlation tag.
    pub tag: u64,
    /// Bytes read (length always set; content only in materialized mode).
    pub len: u64,
    /// Materialized content, when the DataNode runs materialized.
    pub bytes: Option<Vec<u8>>,
}

/// Error reply when a [`ReadRange`] referenced an unknown block.
#[derive(Debug, Clone, Copy)]
pub struct ReadError {
    /// Correlation tag.
    pub tag: u64,
}

/// Streams one block from a writer into the replication pipeline.
#[derive(Debug)]
pub struct WriteBlock {
    /// Block id (from [`BlockAllocated`]).
    pub block: BlockId,
    /// Bytes being written.
    pub len: u64,
    /// Content seed and base offset for later materialization.
    pub seed: u64,
    /// Absolute offset of this block in its file's content stream.
    pub base_offset: u64,
    /// Node the bytes come from (writer or upstream DataNode).
    pub from_node: NodeId,
    /// Remaining pipeline after this DataNode.
    pub rest: Vec<NodeId>,
    /// Writer actor to ack when the pipeline finishes.
    pub ack_to: ActorId,
    /// Writer's node (the ack RPC travels there).
    pub ack_node: NodeId,
    /// Correlation tag for the ack.
    pub tag: u64,
}

/// Final acknowledgment of a pipeline write.
#[derive(Debug, Clone, Copy)]
pub struct WriteAck {
    /// Correlation tag.
    pub tag: u64,
    /// The written block.
    pub block: BlockId,
}
