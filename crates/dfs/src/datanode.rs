//! The DataNode: block storage and streaming.

use accelmr_des::prelude::*;
use accelmr_des::FxHashMap;
use accelmr_net::{NetHandle, NodeId};

use crate::config::{BlockId, DfsConfig};
use crate::msgs::*;

#[derive(Clone, Copy, Debug)]
struct BlockMeta {
    seed: u64,
    base_offset: u64,
    len: u64,
}

/// Asks a DataNode to shut down cleanly-but-abruptly (crash injection):
/// it stops heartbeating, drops its blocks, and kills its actor. In-flight
/// flows must be aborted separately via [`accelmr_net::AbortNode`].
#[derive(Debug, Clone, Copy)]
pub struct Shutdown;

/// Internal completion note for an inbound pipeline write.
#[derive(Debug)]
struct WriteLanded {
    block: BlockId,
    len: u64,
    seed: u64,
    base_offset: u64,
    rest: Vec<NodeId>,
    ack_to: ActorId,
    ack_node: NodeId,
    tag: u64,
}

/// One storage server, co-resident with a TaskTracker on every worker node.
pub struct DataNode {
    cfg: DfsConfig,
    net: NetHandle,
    node: NodeId,
    namenode: ActorId,
    head_node: NodeId,
    /// Peer DataNode actors for pipeline forwarding, indexed by node.
    peers: FxHashMap<NodeId, ActorId>,
    blocks: FxHashMap<BlockId, BlockMeta>,
    materialized: bool,
}

impl DataNode {
    /// Builds a DataNode on `node`. The NameNode id and peer registry are
    /// delivered post-spawn via [`DataNode::rewire`] (see `deploy_dfs`).
    pub fn new(
        cfg: DfsConfig,
        net: NetHandle,
        node: NodeId,
        head_node: NodeId,
        materialized: bool,
    ) -> Self {
        DataNode {
            cfg,
            net,
            node,
            namenode: ActorId::ENGINE,
            head_node,
            peers: FxHashMap::default(),
            blocks: FxHashMap::default(),
            materialized,
        }
    }

    /// Installs the NameNode id and peer DataNode registry.
    pub fn rewire(&mut self, namenode: ActorId, peers: FxHashMap<NodeId, ActorId>) {
        self.namenode = namenode;
        self.peers = peers;
    }

    /// Number of blocks stored (tests/introspection).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn materialize(&self, meta: BlockMeta, offset_in_block: u64, len: u64) -> Option<Vec<u8>> {
        if !self.materialized {
            return None;
        }
        let mut buf = vec![0u8; len as usize];
        accelmr_kernels::fill_deterministic(
            meta.seed,
            meta.base_offset + offset_in_block,
            &mut buf,
        );
        Some(buf)
    }
}

impl Actor for DataNode {
    fn name(&self) -> String {
        format!("dfs.datanode@{}", self.node)
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                // Stagger first heartbeat deterministically to avoid a
                // thundering herd at the NameNode.
                let interval = self.cfg.heartbeat_interval.as_nanos();
                let jitter = SimDuration::from_nanos(ctx.rng().next_below(interval.max(1)));
                ctx.after(jitter, TIMER_HEARTBEAT);
            }
            Event::Timer {
                tag: TIMER_HEARTBEAT,
                ..
            } => {
                let hb = DnHeartbeat { node: self.node };
                let (net, node, head, nn) = (self.net, self.node, self.head_node, self.namenode);
                net.unicast(ctx, node, head, nn, 128, hb);
                // In-place rearm: the heartbeat chain holds one timer slot
                // for the actor's whole lifetime.
                ctx.rearm_after(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
            }
            Event::Timer { .. } => {}
            Event::Msg { msg, .. } => {
                if let Some(peer) = msg.peek::<AddPeer>() {
                    // A node joined: learn its DataNode so write and
                    // re-replication pipelines can forward through it.
                    self.peers.insert(peer.node, peer.actor);
                } else if msg.is::<ReplicateBlock>() {
                    let req = msg.downcast::<ReplicateBlock>().expect("checked");
                    let meta = self.blocks.get(&req.block).copied();
                    let first = req
                        .pipeline
                        .split_first()
                        .and_then(|(&f, rest)| self.peers.get(&f).map(|&a| (f, a, rest.to_vec())));
                    let (net, node) = (self.net, self.node);
                    match (meta, first) {
                        (Some(meta), Some((first_node, first_actor, rest))) => {
                            ctx.stats().incr("dfs.replications_forwarded");
                            net.unicast(
                                ctx,
                                node,
                                first_node,
                                first_actor,
                                128,
                                WriteBlock {
                                    block: req.block,
                                    len: meta.len,
                                    seed: meta.seed,
                                    base_offset: meta.base_offset,
                                    from_node: node,
                                    rest,
                                    ack_to: req.ack_to,
                                    ack_node: req.ack_node,
                                    tag: req.tag,
                                },
                            );
                        }
                        _ => {
                            // Unknown block or unreachable first hop: tell
                            // the NameNode so it can repair elsewhere.
                            ctx.stats().incr("dfs.replication_rejects");
                            net.unicast(
                                ctx,
                                node,
                                req.ack_node,
                                req.ack_to,
                                64,
                                ReplicationFailed { tag: req.tag },
                            );
                        }
                    }
                } else if let Some(add) = msg.peek::<AddBlockMeta>() {
                    self.blocks.insert(
                        add.block,
                        BlockMeta {
                            seed: add.seed,
                            base_offset: add.base_offset,
                            len: add.len,
                        },
                    );
                } else if let Some(req) = msg.peek::<ReadRange>() {
                    let Some(&meta) = self.blocks.get(&req.block) else {
                        let (net, node) = (self.net, self.node);
                        net.unicast(
                            ctx,
                            node,
                            req.reader_node,
                            req.reader,
                            64,
                            ReadError { tag: req.tag },
                        );
                        ctx.stats().incr("dfs.read_errors");
                        return;
                    };
                    debug_assert!(
                        req.offset_in_block + req.len <= meta.len,
                        "read past block end"
                    );
                    let bytes = self.materialize(meta, req.offset_in_block, req.len);
                    ctx.stats().add("dfs.bytes_served", req.len);
                    ctx.stats().incr("dfs.reads");
                    let payload = RangeData {
                        tag: req.tag,
                        len: req.len,
                        bytes,
                    };
                    // Readers fan out their segment requests in one
                    // instant and RPC latency is uniform, so the flows of
                    // one read wave start at the same simulated instant —
                    // the fabric coalesces them into a single re-solve.
                    let (net, node) = (self.net, self.node);
                    net.start_flow_with(
                        ctx,
                        node,
                        req.reader_node,
                        req.len,
                        req.cap_bytes_per_sec,
                        req.reader,
                        req.tag,
                        payload,
                    );
                } else if msg.is::<WriteBlock>() {
                    let req = msg.downcast::<WriteBlock>().expect("checked");
                    // Stream the bytes in from the previous pipeline stage,
                    // then commit and forward.
                    let landed = WriteLanded {
                        block: req.block,
                        len: req.len,
                        seed: req.seed,
                        base_offset: req.base_offset,
                        rest: req.rest,
                        ack_to: req.ack_to,
                        ack_node: req.ack_node,
                        tag: req.tag,
                    };
                    let me = ctx.self_id();
                    let (net, node) = (self.net, self.node);
                    net.start_flow_with(
                        ctx,
                        req.from_node,
                        node,
                        req.len,
                        None,
                        me,
                        req.tag,
                        landed,
                    );
                } else if msg.is::<WriteLanded>() {
                    let w = msg.downcast::<WriteLanded>().expect("checked");
                    self.blocks.insert(
                        w.block,
                        BlockMeta {
                            seed: w.seed,
                            base_offset: w.base_offset,
                            len: w.len,
                        },
                    );
                    ctx.stats().add("dfs.bytes_written", w.len);
                    let (net, node) = (self.net, self.node);
                    if let Some((&next, rest)) = w.rest.split_first() {
                        if let Some(&next_actor) = self.peers.get(&next) {
                            net.unicast(
                                ctx,
                                node,
                                next,
                                next_actor,
                                128,
                                WriteBlock {
                                    block: w.block,
                                    len: w.len,
                                    seed: w.seed,
                                    base_offset: w.base_offset,
                                    from_node: node,
                                    rest: rest.to_vec(),
                                    ack_to: w.ack_to,
                                    ack_node: w.ack_node,
                                    tag: w.tag,
                                },
                            );
                        }
                    } else {
                        net.unicast(
                            ctx,
                            node,
                            w.ack_node,
                            w.ack_to,
                            64,
                            WriteAck {
                                tag: w.tag,
                                block: w.block,
                            },
                        );
                    }
                } else if msg.is::<Shutdown>() {
                    ctx.stats().incr("dfs.datanodes_shutdown");
                    let me = ctx.self_id();
                    ctx.kill(me);
                }
            }
        }
    }
}

const TIMER_HEARTBEAT: u64 = 1;
