//! # accelmr-dfs — HDFS-like distributed file system simulation
//!
//! The data substrate of the paper's deployment: a NameNode managing the
//! namespace and block map on the head node, and a DataNode per worker
//! serving 64 MB blocks. Matches the mechanisms the paper leans on:
//!
//! * block placement balanced across nodes (what makes splits local),
//! * replication pipelines on write,
//! * heartbeat-based liveness with dead-node exclusion,
//! * streaming reads as fluid flows with an optional per-stream cap — the
//!   loopback DataNode→TaskTracker feed ceiling the paper identifies as the
//!   limiting factor for data-intensive jobs.
//!
//! Content is synthetic and deterministic (`(seed, offset)` pure function),
//! so DataNodes can *materialize* any range for functional runs, and
//! readers can independently verify every byte.
//!
//! ## Invariants callers rely on
//!
//! * **Dynamic membership.** The DataNode set is no longer fixed at
//!   deploy: [`msgs::AddDataNode`] admits a joined node into the placement
//!   rotation mid-run (existing DataNodes learn the peer via
//!   [`msgs::AddPeer`]), and [`DfsHandle::datanodes`] is a live
//!   [`accelmr_net::NodeRegistry`], not a snapshot — a read routed to a
//!   departed node fails fast instead of hanging.
//! * **Replication repair.** When a DataNode dies (heartbeat silence) or
//!   capacity joins, the NameNode re-replicates every block below its
//!   target by streaming a surviving replica through a
//!   [`msgs::ReplicateBlock`] pipeline; blocks converge back to target
//!   replication as long as one live replica survives. Replication-1
//!   files (the paper's configuration) have nothing to repair from — data
//!   on a dead node is simply gone, as in the paper's deployment.
//! * **Burst-friendly reads.** A reader fans all segment requests of a
//!   record out in one simulated instant; the resulting DataNode flows
//!   start together and are priced by a single fabric re-solve. Keep new
//!   call sites burst-shaped (see `accelmr_net`).

pub mod cluster;
pub mod config;
pub mod datanode;
pub mod msgs;
pub mod namenode;

pub use cluster::{deploy_dfs, DfsHandle};
pub use config::{BlockId, DfsConfig};
pub use datanode::{DataNode, Shutdown};
pub use msgs::*;
pub use namenode::NameNode;
