//! # accelmr-dfs — HDFS-like distributed file system simulation
//!
//! The data substrate of the paper's deployment: a NameNode managing the
//! namespace and block map on the head node, and a DataNode per worker
//! serving 64 MB blocks. Matches the mechanisms the paper leans on:
//!
//! * block placement balanced across nodes (what makes splits local),
//! * replication pipelines on write,
//! * heartbeat-based liveness with dead-node exclusion,
//! * streaming reads as fluid flows with an optional per-stream cap — the
//!   loopback DataNode→TaskTracker feed ceiling the paper identifies as the
//!   limiting factor for data-intensive jobs.
//!
//! Content is synthetic and deterministic (`(seed, offset)` pure function),
//! so DataNodes can *materialize* any range for functional runs, and
//! readers can independently verify every byte.

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod datanode;
pub mod msgs;
pub mod namenode;

pub use cluster::{deploy_dfs, DfsHandle};
pub use config::{BlockId, DfsConfig};
pub use datanode::{DataNode, Shutdown};
pub use msgs::*;
pub use namenode::NameNode;
