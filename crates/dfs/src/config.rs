//! DFS configuration and core identifiers.

use accelmr_des::SimDuration;

/// Globally unique block identifier (allocated by the NameNode).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// File system parameters. Defaults match the paper's deployment: 64 MB
/// HDFS blocks, replication level 1 ("one single copy of each block was
/// present in the cluster"), 3-second DataNode heartbeats.
#[derive(Clone, Debug)]
pub struct DfsConfig {
    /// Default block size, bytes.
    pub block_size: u64,
    /// Default replication factor.
    pub replication: usize,
    /// DataNode heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// A DataNode missing heartbeats for this long is declared dead.
    pub dead_after: SimDuration,
    /// NameNode metadata operation service time (namespace lock + lookup).
    pub namenode_op_time: SimDuration,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            block_size: 64 << 20,
            replication: 1,
            heartbeat_interval: SimDuration::from_secs(3),
            dead_after: SimDuration::from_secs(30),
            namenode_op_time: SimDuration::from_micros(300),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = DfsConfig::default();
        assert_eq!(c.block_size, 64 << 20);
        assert_eq!(c.replication, 1);
        assert_eq!(c.heartbeat_interval, SimDuration::from_secs(3));
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(17).to_string(), "blk_17");
    }
}
