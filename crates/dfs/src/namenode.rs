//! The NameNode: namespace, block map, placement, liveness.

use accelmr_des::prelude::*;
use accelmr_des::FxHashMap;
use accelmr_net::{NetHandle, NodeId};

use crate::config::{BlockId, DfsConfig};
use crate::msgs::*;

struct FileMeta {
    len: u64,
    block_size: u64,
    seed: u64,
    replication: usize,
    /// `(id, offset, len)` per block, in file order.
    blocks: Vec<(BlockId, u64, u64)>,
}

/// The metadata master. Runs on the head node (node 0 in the paper's
/// deployment, a Power6 JS22 blade).
pub struct NameNode {
    cfg: DfsConfig,
    net: NetHandle,
    my_node: NodeId,
    /// Registered DataNodes: `(node, actor)`.
    datanodes: Vec<(NodeId, ActorId)>,
    files: FxHashMap<String, FileMeta>,
    block_map: FxHashMap<BlockId, Vec<NodeId>>,
    next_block: u64,
    placement_cursor: usize,
    last_heartbeat: FxHashMap<NodeId, SimTime>,
    dead: Vec<NodeId>,
}

impl NameNode {
    /// Builds a NameNode for a fixed DataNode registry.
    pub fn new(
        cfg: DfsConfig,
        net: NetHandle,
        my_node: NodeId,
        datanodes: Vec<(NodeId, ActorId)>,
    ) -> Self {
        NameNode {
            cfg,
            net,
            my_node,
            datanodes,
            files: FxHashMap::default(),
            block_map: FxHashMap::default(),
            next_block: 0,
            placement_cursor: 0,
            last_heartbeat: FxHashMap::default(),
            dead: Vec::new(),
        }
    }

    fn is_live(&self, node: NodeId) -> bool {
        !self.dead.contains(&node)
    }

    /// Chooses `replication` distinct live nodes, preferring `prefer` first
    /// (HDFS writes the first replica locally when possible), then
    /// round-robin for balance.
    fn place(&mut self, replication: usize, prefer: Option<NodeId>) -> Vec<NodeId> {
        let mut chosen = Vec::with_capacity(replication);
        if let Some(p) = prefer {
            if self.is_live(p) && self.datanodes.iter().any(|&(n, _)| n == p) {
                chosen.push(p);
            }
        }
        let n = self.datanodes.len();
        let mut scanned = 0;
        while chosen.len() < replication && scanned < 2 * n {
            let (node, _) = self.datanodes[self.placement_cursor % n];
            self.placement_cursor += 1;
            scanned += 1;
            if self.is_live(node) && !chosen.contains(&node) {
                chosen.push(node);
            }
        }
        chosen
    }

    fn view_of(&self, path: &str) -> Option<FileView> {
        let meta = self.files.get(path)?;
        let blocks = meta
            .blocks
            .iter()
            .map(|&(id, offset, len)| BlockLoc {
                id,
                offset,
                len,
                replicas: self
                    .block_map
                    .get(&id)
                    .map(|nodes| nodes.iter().copied().filter(|&n| self.is_live(n)).collect())
                    .unwrap_or_default(),
            })
            .collect();
        Some(FileView {
            path: path.to_string(),
            len: meta.len,
            block_size: meta.block_size,
            seed: meta.seed,
            blocks,
        })
    }

    fn alloc_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }
}

impl Actor for NameNode {
    fn name(&self) -> String {
        "dfs.namenode".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                let now = ctx.now();
                for &(node, _) in &self.datanodes {
                    self.last_heartbeat.insert(node, now);
                }
                ctx.after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer {
                tag: TIMER_LIVENESS,
                ..
            } => {
                let now = ctx.now();
                for &(node, _) in &self.datanodes {
                    let last = self
                        .last_heartbeat
                        .get(&node)
                        .copied()
                        .unwrap_or(SimTime::ZERO);
                    let stale = now.since(last) > self.cfg.dead_after;
                    if stale && !self.dead.contains(&node) {
                        self.dead.push(node);
                        ctx.stats().incr("dfs.datanodes_declared_dead");
                    }
                }
                ctx.stats().set_gauge(
                    "dfs.live_datanodes",
                    (self.datanodes.len() - self.dead.len()) as f64,
                );
                ctx.after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer { .. } => {}
            Event::Msg { msg, .. } => {
                if msg.is::<PreloadFile>() {
                    let req = msg.downcast::<PreloadFile>().expect("checked");
                    let block_size = req.block_size.unwrap_or(self.cfg.block_size);
                    let replication = req.replication.unwrap_or(self.cfg.replication);
                    let mut blocks = Vec::new();
                    let mut offset = 0u64;
                    while offset < req.len {
                        let len = (req.len - offset).min(block_size);
                        let id = self.alloc_id();
                        let nodes = self.place(replication, None);
                        // Install metadata on every replica holder.
                        for &node in &nodes {
                            if let Some(&(_, dn)) = self.datanodes.iter().find(|&&(n, _)| n == node)
                            {
                                ctx.send(
                                    dn,
                                    AddBlockMeta {
                                        block: id,
                                        seed: req.seed,
                                        base_offset: offset,
                                        len,
                                    },
                                );
                            }
                        }
                        self.block_map.insert(id, nodes);
                        blocks.push((id, offset, len));
                        offset += len;
                    }
                    self.files.insert(
                        req.path.clone(),
                        FileMeta {
                            len: req.len,
                            block_size,
                            seed: req.seed,
                            replication,
                            blocks,
                        },
                    );
                    ctx.stats().incr("dfs.files_preloaded");
                    let view = self.view_of(&req.path).expect("just inserted");
                    ctx.send_after(req.reply, PreloadDone { view }, self.cfg.namenode_op_time);
                } else if let Some(req) = msg.peek::<GetLocations>() {
                    let view = self.view_of(&req.path);
                    ctx.stats().incr("dfs.get_locations");
                    let reply = LocationsReply { tag: req.tag, view };
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(ctx, my, req.reply_node, req.reply, 256, reply);
                } else if let Some(req) = msg.peek::<CreateFile>() {
                    let ok = !self.files.contains_key(&req.path);
                    if ok {
                        let replication = req.replication.unwrap_or(self.cfg.replication);
                        self.files.insert(
                            req.path.clone(),
                            FileMeta {
                                len: 0,
                                block_size: self.cfg.block_size,
                                seed: 0,
                                replication,
                                blocks: Vec::new(),
                            },
                        );
                        ctx.stats().incr("dfs.files_created");
                    }
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(ctx, my, req.reply_node, req.reply, 64, CreateAck { ok });
                } else if let Some(req) = msg.peek::<AllocBlock>() {
                    let path = req.path.clone();
                    let (len, writer_node, reply, reply_node, tag) =
                        (req.len, req.writer_node, req.reply, req.reply_node, req.tag);
                    let id = self.alloc_id();
                    let replication = self
                        .files
                        .get(&path)
                        .map(|f| f.replication)
                        .unwrap_or(self.cfg.replication);
                    let pipeline = self.place(replication, Some(writer_node));
                    if let Some(meta) = self.files.get_mut(&path) {
                        let offset = meta.len;
                        meta.blocks.push((id, offset, len));
                        meta.len += len;
                    }
                    self.block_map.insert(id, pipeline.clone());
                    ctx.stats().incr("dfs.blocks_allocated");
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(
                        ctx,
                        my,
                        reply_node,
                        reply,
                        128,
                        BlockAllocated {
                            tag,
                            block: id,
                            pipeline,
                        },
                    );
                } else if let Some(hb) = msg.peek::<DnHeartbeat>() {
                    self.last_heartbeat.insert(hb.node, ctx.now());
                    ctx.stats().incr("dfs.heartbeats");
                } else if let Some(req) = msg.peek::<GetLiveNodes>() {
                    let mut nodes: Vec<NodeId> = self
                        .datanodes
                        .iter()
                        .map(|&(n, _)| n)
                        .filter(|&n| self.is_live(n))
                        .collect();
                    nodes.sort_unstable();
                    ctx.send(req.reply, LiveNodesReply { nodes });
                }
            }
        }
    }
}

const TIMER_LIVENESS: u64 = 1;
