//! The NameNode: namespace, block map, placement, liveness, replication
//! repair, dynamic membership.
//!
//! Membership is no longer fixed at deploy: [`AddDataNode`] admits a
//! joined node into the placement rotation mid-run, and a DataNode falling
//! silent is declared dead, its replicas dropped from the block map, and
//! every block left under its target replication is repaired by streaming
//! a surviving replica through a [`ReplicateBlock`] pipeline.

use accelmr_des::prelude::*;
use accelmr_des::{ExpiryHeap, FxHashMap, FxHashSet};
use accelmr_net::{NetHandle, NodeId};

use crate::config::{BlockId, DfsConfig};
use crate::msgs::*;

struct FileMeta {
    len: u64,
    block_size: u64,
    seed: u64,
    replication: usize,
    /// `(id, offset, len)` per block, in file order.
    blocks: Vec<(BlockId, u64, u64)>,
}

/// One block's placement state.
struct BlockInfo {
    /// Nodes believed to hold a replica (dead nodes are pruned on death).
    replicas: Vec<NodeId>,
    /// Replication target (the owning file's replication factor).
    target: usize,
}

/// An in-flight re-replication: `source` streaming `block` to `targets`.
struct PendingRepl {
    block: BlockId,
    source: NodeId,
    targets: Vec<NodeId>,
}

/// The metadata master. Runs on the head node (node 0 in the paper's
/// deployment, a Power6 JS22 blade).
pub struct NameNode {
    cfg: DfsConfig,
    net: NetHandle,
    my_node: NodeId,
    /// Registered DataNodes: `(node, actor)`, ascending by node.
    datanodes: Vec<(NodeId, ActorId)>,
    files: FxHashMap<String, FileMeta>,
    block_map: FxHashMap<BlockId, BlockInfo>,
    next_block: u64,
    placement_cursor: usize,
    last_heartbeat: FxHashMap<NodeId, SimTime>,
    /// Nodes declared dead by heartbeat silence. A set: placement probes
    /// membership per candidate and the liveness path per sweep, which was
    /// O(dead) with the former `Vec` — 527 leaves per probe at 10k nodes.
    dead: FxHashSet<NodeId>,
    /// Liveness deadlines, lazily invalidated: one entry per live node at
    /// `last_heartbeat + dead_after`, refreshed only when it surfaces in a
    /// sweep. Makes the periodic tick cost proportional to nodes whose
    /// deadline elapsed, not to cluster size.
    expiry: ExpiryHeap<NodeId>,
    /// In-flight re-replications by tag.
    pending_repl: FxHashMap<u64, PendingRepl>,
    /// Blocks with a re-replication in flight (no duplicate repairs).
    repl_in_flight: FxHashSet<BlockId>,
    next_repl_tag: u64,
    /// Repairs may be needed (a loss, failure, or capacity change since
    /// the last scan left blocks under target). Lets the periodic
    /// liveness tick skip the full block-map scan at steady state.
    repair_pending: bool,
}

impl NameNode {
    /// Builds a NameNode for an initial DataNode registry (more may join
    /// later via [`AddDataNode`]).
    pub fn new(
        cfg: DfsConfig,
        net: NetHandle,
        my_node: NodeId,
        mut datanodes: Vec<(NodeId, ActorId)>,
    ) -> Self {
        // Membership updates binary-search this list; callers may pass
        // workers in any order.
        datanodes.sort_unstable_by_key(|&(n, _)| n);
        NameNode {
            cfg,
            net,
            my_node,
            datanodes,
            files: FxHashMap::default(),
            block_map: FxHashMap::default(),
            next_block: 0,
            placement_cursor: 0,
            last_heartbeat: FxHashMap::default(),
            dead: FxHashSet::default(),
            expiry: ExpiryHeap::new(),
            pending_repl: FxHashMap::default(),
            repl_in_flight: FxHashSet::default(),
            next_repl_tag: 1,
            repair_pending: false,
        }
    }

    fn is_live(&self, node: NodeId) -> bool {
        !self.dead.contains(&node)
    }

    fn datanode_actor(&self, node: NodeId) -> Option<ActorId> {
        // The registry stays sorted by node (see `new` / `AddDataNode`).
        self.datanodes
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| self.datanodes[i].1)
    }

    /// Chooses `replication` distinct live nodes outside `exclude`,
    /// preferring `prefer` first (HDFS writes the first replica locally
    /// when possible), then round-robin for balance.
    fn place_excluding(
        &mut self,
        replication: usize,
        prefer: Option<NodeId>,
        exclude: &[NodeId],
    ) -> Vec<NodeId> {
        let mut chosen = Vec::with_capacity(replication);
        if let Some(p) = prefer {
            if self.is_live(p) && !exclude.contains(&p) && self.datanode_actor(p).is_some() {
                chosen.push(p);
            }
        }
        let n = self.datanodes.len();
        if n == 0 {
            return chosen;
        }
        let mut scanned = 0;
        while chosen.len() < replication && scanned < 2 * n {
            let (node, _) = self.datanodes[self.placement_cursor % n];
            self.placement_cursor += 1;
            scanned += 1;
            if self.is_live(node) && !chosen.contains(&node) && !exclude.contains(&node) {
                chosen.push(node);
            }
        }
        chosen
    }

    fn place(&mut self, replication: usize, prefer: Option<NodeId>) -> Vec<NodeId> {
        self.place_excluding(replication, prefer, &[])
    }

    fn view_of(&self, path: &str) -> Option<FileView> {
        let meta = self.files.get(path)?;
        let blocks = meta
            .blocks
            .iter()
            .map(|&(id, offset, len)| BlockLoc {
                id,
                offset,
                len,
                replicas: self
                    .block_map
                    .get(&id)
                    .map(|info| {
                        info.replicas
                            .iter()
                            .copied()
                            .filter(|&n| self.is_live(n))
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        Some(FileView {
            path: path.to_string(),
            len: meta.len,
            block_size: meta.block_size,
            seed: meta.seed,
            blocks,
        })
    }

    fn alloc_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    // ---------------- replication repair ----------------

    /// Number of blocks currently below their replication target
    /// (introspection for tests, benches, and examples).
    pub fn under_replicated_blocks(&self) -> usize {
        self.block_map
            .values()
            .filter(|info| info.replicas.len() < info.target)
            .count()
    }

    /// Live replica count per block of `path`, in file order
    /// (introspection; `None` when the path does not exist).
    pub fn replica_counts(&self, path: &str) -> Option<Vec<usize>> {
        let meta = self.files.get(path)?;
        Some(
            meta.blocks
                .iter()
                .map(|(id, _, _)| {
                    self.block_map
                        .get(id)
                        .map(|info| info.replicas.iter().filter(|&&n| self.is_live(n)).count())
                        .unwrap_or(0)
                })
                .collect(),
        )
    }

    /// Number of DataNodes currently considered live (introspection).
    pub fn live_datanode_count(&self) -> usize {
        self.datanodes.len() - self.dead.len()
    }

    /// A node left (declared dead): prune its replicas and cancel repairs
    /// it participated in, so the scan re-issues them off live nodes.
    fn on_node_lost(&mut self, node: NodeId) {
        self.repair_pending = true;
        // audit:allow(map-order): per-block replica prune is an independent mutation per entry; no events issue here
        for info in self.block_map.values_mut() {
            info.replicas.retain(|&n| n != node);
        }
        let mut cancelled: Vec<u64> = self
            .pending_repl
            .iter()
            .filter(|(_, p)| p.source == node || p.targets.contains(&node))
            .map(|(&tag, _)| tag)
            .collect();
        cancelled.sort_unstable();
        for tag in cancelled {
            let p = self.pending_repl.remove(&tag).expect("pending present");
            self.repl_in_flight.remove(&p.block);
        }
    }

    /// Scans for under-replicated blocks and starts one pipeline per block
    /// that has a live source, capacity to host a new replica, and no
    /// repair already in flight. Leaves `repair_pending` set iff some
    /// repairable block could not start (no capacity / rejected source),
    /// so the periodic tick keeps retrying it — and skips the scan
    /// entirely once everything startable is in flight or at target.
    fn replication_scan(&mut self, ctx: &mut Ctx<'_>) {
        let mut under: Vec<BlockId> = self
            .block_map
            .iter()
            .filter(|(id, info)| {
                info.replicas.len() < info.target
                    && !info.replicas.is_empty()
                    && !self.repl_in_flight.contains(id)
            })
            .map(|(&id, _)| id)
            .collect();
        // FxHashMap iteration order is seed-stable but insertion-history
        // dependent; sort so repair order is obviously deterministic.
        under.sort_unstable();
        let mut unstarted = 0usize;
        for block in under {
            if !self.start_replication(ctx, block) {
                unstarted += 1;
            }
        }
        self.repair_pending = unstarted > 0;
    }

    /// Returns whether a repair pipeline was actually issued.
    fn start_replication(&mut self, ctx: &mut Ctx<'_>, block: BlockId) -> bool {
        let (needed, source, exclude) = {
            let Some(info) = self.block_map.get(&block) else {
                return true; // gone: nothing left to retry
            };
            let Some(&source) = info.replicas.first() else {
                return true; // no surviving replica: unrepairable
            };
            (
                info.target - info.replicas.len(),
                source,
                info.replicas.clone(),
            )
        };
        let Some(src_actor) = self.datanode_actor(source) else {
            return false;
        };
        let targets = self.place_excluding(needed, None, &exclude);
        if targets.is_empty() {
            // No live node can host another replica yet; the next join or
            // periodic tick retries.
            return false;
        }
        let tag = self.next_repl_tag;
        self.next_repl_tag += 1;
        self.repl_in_flight.insert(block);
        self.pending_repl.insert(
            tag,
            PendingRepl {
                block,
                source,
                targets: targets.clone(),
            },
        );
        ctx.stats().incr("dfs.replications_started");
        let me = ctx.self_id();
        let (net, my) = (self.net, self.my_node);
        net.unicast(
            ctx,
            my,
            source,
            src_actor,
            128,
            ReplicateBlock {
                block,
                pipeline: targets,
                ack_to: me,
                ack_node: my,
                tag,
            },
        );
        true
    }

    /// A re-replication pipeline finished: commit the new replicas (those
    /// still live) and re-check the block.
    fn replication_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(p) = self.pending_repl.remove(&tag) else {
            return; // cancelled (participant died) — a fresh repair owns the block
        };
        self.repl_in_flight.remove(&p.block);
        if let Some(info) = self.block_map.get_mut(&p.block) {
            for t in p.targets {
                if !self.dead.contains(&t) && !info.replicas.contains(&t) {
                    info.replicas.push(t);
                }
            }
        }
        ctx.stats().incr("dfs.blocks_replicated");
        // Re-check only this block (a target may have died mid-copy, or
        // several replicas were lost at once): O(1) per ack instead of a
        // full-map rescan during mass repair. Damage elsewhere re-arms
        // the periodic scan through its own loss/failure events.
        let still_under = self
            .block_map
            .get(&p.block)
            .map(|info| info.replicas.len() < info.target && !info.replicas.is_empty())
            .unwrap_or(false);
        if still_under && !self.start_replication(ctx, p.block) {
            self.repair_pending = true;
        }
    }
}

impl Actor for NameNode {
    fn name(&self) -> String {
        "dfs.namenode".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                let now = ctx.now();
                for i in 0..self.datanodes.len() {
                    let node = self.datanodes[i].0;
                    self.last_heartbeat.insert(node, now);
                    self.expiry.schedule(now + self.cfg.dead_after, node);
                }
                ctx.after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer {
                tag: TIMER_LIVENESS,
                ..
            } => {
                let now = ctx.now();
                // Expiry-heap sweep: only nodes whose recorded deadline
                // elapsed are touched; heartbeats refreshed the
                // authoritative deadline (`last_heartbeat + dead_after`)
                // without touching the heap, so refreshed entries re-queue
                // here. Strict `<` preserves the former full scan's
                // `now - last > dead_after` rule exactly.
                let dead = &self.dead;
                let last = &self.last_heartbeat;
                let window = self.cfg.dead_after;
                let mut newly_dead = self.expiry.expired(now, |node| {
                    if dead.contains(&node) {
                        return None;
                    }
                    last.get(&node).map(|&l| l + window)
                });
                // The former scan declared deaths in ascending node order;
                // sort (and drop resurrection-superseded duplicates) to
                // keep that order bit for bit.
                newly_dead.sort_unstable();
                newly_dead.dedup();
                for &node in &newly_dead {
                    self.dead.insert(node);
                    ctx.stats().incr("dfs.datanodes_declared_dead");
                }
                for node in newly_dead {
                    self.on_node_lost(node);
                }
                // Periodic repair scan (not just on deaths): re-issues
                // repairs whose source rejected them or whose pipeline was
                // cancelled by a follow-on death. The dirty flag keeps the
                // steady-state tick O(1) — no block-map walk when nothing
                // has been lost, failed, or starved since the last scan.
                if self.repair_pending {
                    self.replication_scan(ctx);
                }
                ctx.stats().set_gauge(
                    "dfs.live_datanodes",
                    (self.datanodes.len() - self.dead.len()) as f64,
                );
                ctx.rearm_after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer { .. } => {}
            Event::Msg { msg, .. } => {
                if msg.is::<PreloadFile>() {
                    let req = msg.downcast::<PreloadFile>().expect("checked");
                    let block_size = req.block_size.unwrap_or(self.cfg.block_size);
                    let replication = req.replication.unwrap_or(self.cfg.replication);
                    let mut blocks = Vec::new();
                    let mut offset = 0u64;
                    while offset < req.len {
                        let len = (req.len - offset).min(block_size);
                        let id = self.alloc_id();
                        let nodes = self.place(replication, None);
                        // Install metadata on every replica holder.
                        for &node in &nodes {
                            if let Some(dn) = self.datanode_actor(node) {
                                ctx.send(
                                    dn,
                                    AddBlockMeta {
                                        block: id,
                                        seed: req.seed,
                                        base_offset: offset,
                                        len,
                                    },
                                );
                            }
                        }
                        self.block_map.insert(
                            id,
                            BlockInfo {
                                replicas: nodes,
                                target: replication,
                            },
                        );
                        blocks.push((id, offset, len));
                        offset += len;
                    }
                    self.files.insert(
                        req.path.clone(),
                        FileMeta {
                            len: req.len,
                            block_size,
                            seed: req.seed,
                            replication,
                            blocks,
                        },
                    );
                    ctx.stats().incr("dfs.files_preloaded");
                    let view = self.view_of(&req.path).expect("just inserted");
                    ctx.send_after(req.reply, PreloadDone { view }, self.cfg.namenode_op_time);
                } else if let Some(req) = msg.peek::<GetLocations>() {
                    let view = self.view_of(&req.path);
                    ctx.stats().incr("dfs.get_locations");
                    let reply = LocationsReply { tag: req.tag, view };
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(ctx, my, req.reply_node, req.reply, 256, reply);
                } else if let Some(req) = msg.peek::<CreateFile>() {
                    let ok = !self.files.contains_key(&req.path);
                    if ok {
                        let replication = req.replication.unwrap_or(self.cfg.replication);
                        self.files.insert(
                            req.path.clone(),
                            FileMeta {
                                len: 0,
                                block_size: self.cfg.block_size,
                                seed: 0,
                                replication,
                                blocks: Vec::new(),
                            },
                        );
                        ctx.stats().incr("dfs.files_created");
                    }
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(ctx, my, req.reply_node, req.reply, 64, CreateAck { ok });
                } else if let Some(req) = msg.peek::<AllocBlock>() {
                    let path = req.path.clone();
                    let (len, writer_node, reply, reply_node, tag) =
                        (req.len, req.writer_node, req.reply, req.reply_node, req.tag);
                    let id = self.alloc_id();
                    let replication = self
                        .files
                        .get(&path)
                        .map(|f| f.replication)
                        .unwrap_or(self.cfg.replication);
                    let pipeline = self.place(replication, Some(writer_node));
                    if let Some(meta) = self.files.get_mut(&path) {
                        let offset = meta.len;
                        meta.blocks.push((id, offset, len));
                        meta.len += len;
                    }
                    self.block_map.insert(
                        id,
                        BlockInfo {
                            replicas: pipeline.clone(),
                            target: replication,
                        },
                    );
                    ctx.stats().incr("dfs.blocks_allocated");
                    let (net, my) = (self.net, self.my_node);
                    net.unicast(
                        ctx,
                        my,
                        reply_node,
                        reply,
                        128,
                        BlockAllocated {
                            tag,
                            block: id,
                            pipeline,
                        },
                    );
                } else if let Some(hb) = msg.peek::<DnHeartbeat>() {
                    self.last_heartbeat.insert(hb.node, ctx.now());
                    ctx.stats().incr("dfs.heartbeats");
                } else if let Some(add) = msg.peek::<AddDataNode>() {
                    let (node, actor) = (add.node, add.actor);
                    match self.datanodes.binary_search_by_key(&node, |&(n, _)| n) {
                        Ok(i) => self.datanodes[i].1 = actor,
                        Err(i) => self.datanodes.insert(i, (node, actor)),
                    }
                    // A join (or re-join under a recycled id) starts with a
                    // clean bill of health. Seeding `last_heartbeat` here is
                    // what keeps a joiner alive through a liveness tick that
                    // fires before its first heartbeat; the fresh expiry
                    // entry supersedes any stale one left from a prior life.
                    self.dead.remove(&node);
                    self.last_heartbeat.insert(node, ctx.now());
                    self.expiry.schedule(ctx.now() + self.cfg.dead_after, node);
                    ctx.stats().incr("dfs.datanodes_joined");
                    // The new capacity may unblock repairs that had nowhere
                    // to place a replica.
                    self.replication_scan(ctx);
                } else if let Some(ack) = msg.peek::<WriteAck>() {
                    // Final hop of a re-replication pipeline.
                    let tag = ack.tag;
                    self.replication_done(ctx, tag);
                } else if let Some(fail) = msg.peek::<ReplicationFailed>() {
                    let tag = fail.tag;
                    if let Some(p) = self.pending_repl.remove(&tag) {
                        self.repl_in_flight.remove(&p.block);
                        ctx.stats().incr("dfs.replications_failed");
                        // The source may hold only allocation-time
                        // metadata (its client write still in flight):
                        // rotate it to the back so the next attempt
                        // streams from a different replica, and let the
                        // liveness tick's periodic scan re-issue rather
                        // than retrying in a tight RPC loop.
                        if let Some(info) = self.block_map.get_mut(&p.block) {
                            if info.replicas.first() == Some(&p.source) && info.replicas.len() > 1 {
                                info.replicas.rotate_left(1);
                            }
                        }
                        self.repair_pending = true;
                    }
                } else if let Some(req) = msg.peek::<GetLiveNodes>() {
                    let mut nodes: Vec<NodeId> = self
                        .datanodes
                        .iter()
                        .map(|&(n, _)| n)
                        .filter(|&n| self.is_live(n))
                        .collect();
                    nodes.sort_unstable();
                    ctx.send(req.reply, LiveNodesReply { nodes });
                }
            }
        }
    }
}

const TIMER_LIVENESS: u64 = 1;
