//! Cluster assembly and the client-side handle.

use accelmr_des::prelude::*;
use accelmr_des::FxHashMap;
use accelmr_net::{NetHandle, NodeId, NodeRegistry};

use crate::config::{BlockId, DfsConfig};
use crate::datanode::DataNode;
use crate::msgs::*;
use crate::namenode::NameNode;

/// Cheap clonable handle to a deployed DFS, used by every client actor.
#[derive(Clone)]
pub struct DfsHandle {
    /// The NameNode actor.
    pub namenode: ActorId,
    /// The head node the NameNode runs on.
    pub head_node: NodeId,
    /// Live `node → DataNode actor` registry. Shared (not a snapshot):
    /// joins and departures are visible to every handle clone immediately,
    /// so reads fail fast off departed nodes instead of hanging.
    pub datanodes: NodeRegistry,
    /// The network fabric.
    pub net: NetHandle,
}

impl DfsHandle {
    /// DataNode actor serving `node`, if one exists.
    pub fn datanode_on(&self, node: NodeId) -> Option<ActorId> {
        self.datanodes.get(node)
    }

    /// Sends a [`GetLocations`] request from `my_node`; the reply arrives
    /// at the calling actor as [`LocationsReply`] with `tag`.
    pub fn get_locations(&self, ctx: &mut Ctx<'_>, my_node: NodeId, path: &str, tag: u64) {
        let req = GetLocations {
            path: path.to_string(),
            reply: ctx.self_id(),
            reply_node: my_node,
            tag,
        };
        self.net
            .unicast(ctx, my_node, self.head_node, self.namenode, 256, req);
    }

    /// Reads `[offset_in_block, offset_in_block + len)` of `block` from the
    /// DataNode on `dn_node`; the calling actor receives [`RangeData`] (or
    /// [`ReadError`] / [`accelmr_net::FlowAborted`]) with `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        my_node: NodeId,
        dn_node: NodeId,
        block: BlockId,
        offset_in_block: u64,
        len: u64,
        cap_bytes_per_sec: Option<f64>,
        tag: u64,
    ) -> bool {
        let Some(dn) = self.datanode_on(dn_node) else {
            return false;
        };
        let req = ReadRange {
            block,
            offset_in_block,
            len,
            reader_node: my_node,
            reader: ctx.self_id(),
            cap_bytes_per_sec,
            tag,
        };
        self.net.unicast(ctx, my_node, dn_node, dn, 256, req);
        true
    }

    /// Creates an empty file; the caller receives [`CreateAck`].
    pub fn create_file(
        &self,
        ctx: &mut Ctx<'_>,
        my_node: NodeId,
        path: &str,
        replication: Option<usize>,
    ) {
        let req = CreateFile {
            path: path.to_string(),
            replication,
            reply: ctx.self_id(),
            reply_node: my_node,
        };
        self.net
            .unicast(ctx, my_node, self.head_node, self.namenode, 256, req);
    }

    /// Allocates the next block of `path`; the caller receives
    /// [`BlockAllocated`] with `tag`.
    pub fn alloc_block(&self, ctx: &mut Ctx<'_>, my_node: NodeId, path: &str, len: u64, tag: u64) {
        let req = AllocBlock {
            path: path.to_string(),
            len,
            writer_node: my_node,
            reply: ctx.self_id(),
            reply_node: my_node,
            tag,
        };
        self.net
            .unicast(ctx, my_node, self.head_node, self.namenode, 256, req);
    }

    /// Streams an allocated block into its pipeline; the caller receives
    /// [`WriteAck`] with `tag` when the last replica lands.
    #[allow(clippy::too_many_arguments)]
    pub fn write_block(
        &self,
        ctx: &mut Ctx<'_>,
        my_node: NodeId,
        block: BlockId,
        len: u64,
        seed: u64,
        base_offset: u64,
        pipeline: &[NodeId],
        tag: u64,
    ) -> bool {
        let Some((&first, rest)) = pipeline.split_first() else {
            return false;
        };
        let Some(dn) = self.datanode_on(first) else {
            return false;
        };
        let req = WriteBlock {
            block,
            len,
            seed,
            base_offset,
            from_node: my_node,
            rest: rest.to_vec(),
            ack_to: ctx.self_id(),
            ack_node: my_node,
            tag,
        };
        self.net.unicast(ctx, my_node, first, dn, 256, req);
        true
    }
}

/// Spawns a NameNode on `head_node` plus one DataNode per worker node and
/// wires them together. `materialized` makes DataNodes serve real bytes.
///
/// Actor ids form a cycle (DataNodes need the NameNode id, the NameNode
/// needs the DataNode registry), so DataNodes spawn first behind a
/// internal `PendingDataNode` shim and receive their wiring as the first posted
/// message — which the engine's FIFO-at-equal-time ordering guarantees
/// arrives before any protocol traffic or armed timer.
pub fn deploy_dfs(
    sim: &mut Sim,
    net: NetHandle,
    cfg: &DfsConfig,
    head_node: NodeId,
    workers: &[NodeId],
    materialized: bool,
) -> DfsHandle {
    let mut dns: Vec<(NodeId, ActorId)> = Vec::with_capacity(workers.len());
    let mut peers: FxHashMap<NodeId, ActorId> = FxHashMap::default();
    for &w in workers {
        let dn = DataNode::new(cfg.clone(), net, w, head_node, materialized);
        let id = sim.spawn(Box::new(PendingDataNode::new(dn)));
        peers.insert(w, id);
        dns.push((w, id));
    }
    let namenode = sim.spawn(Box::new(NameNode::new(
        cfg.clone(),
        net,
        head_node,
        dns.clone(),
    )));
    for &(_, dn) in &dns {
        sim.post(
            dn,
            Box::new(WireDataNode {
                namenode,
                peers: peers.clone(),
            }),
        );
    }
    DfsHandle {
        namenode,
        head_node,
        datanodes: NodeRegistry::new(dns),
        net,
    }
}

/// Wiring message delivered once at deployment.
#[derive(Debug)]
struct WireDataNode {
    namenode: ActorId,
    peers: FxHashMap<NodeId, ActorId>,
}

/// Wrapper that holds a DataNode until its wiring message arrives, then
/// delegates forever. Keeps `DataNode::new` free of placeholder ids.
struct PendingDataNode {
    inner: DataNode,
    wired: bool,
}

impl PendingDataNode {
    fn new(inner: DataNode) -> Self {
        PendingDataNode {
            inner,
            wired: false,
        }
    }
}

impl Actor for PendingDataNode {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        if let Event::Msg { ref msg, .. } = ev {
            if let Some(w) = msg.peek::<WireDataNode>() {
                self.inner.rewire(w.namenode, w.peers.clone());
                self.wired = true;
                return;
            }
        }
        debug_assert!(
            self.wired || matches!(ev, Event::Start | Event::Timer { .. }),
            "DataNode received protocol traffic before wiring"
        );
        self.inner.handle(ctx, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_net::{Fabric, NetConfig};

    fn deploy(sim: &mut Sim, workers: u32, materialized: bool) -> (DfsHandle, Vec<NodeId>) {
        let nodes: Vec<NodeId> = (1..=workers).map(NodeId).collect();
        let fabric = sim.spawn(Box::new(Fabric::new(
            NetConfig::default(),
            workers as usize + 1,
        )));
        let net = NetHandle { fabric };
        let h = deploy_dfs(
            sim,
            net,
            &DfsConfig::default(),
            NodeId::HEAD,
            &nodes,
            materialized,
        );
        (h, nodes)
    }

    /// Test client actor driving a scripted interaction.
    struct Client<F: FnMut(&mut Ctx<'_>, Event, &DfsHandle, &mut u32) + Send + 'static> {
        dfs: DfsHandle,
        state: u32,
        script: F,
    }

    impl<F: FnMut(&mut Ctx<'_>, Event, &DfsHandle, &mut u32) + Send + 'static> Actor for Client<F> {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            (self.script)(ctx, ev, &self.dfs, &mut self.state);
        }
    }

    #[test]
    fn preload_places_balanced_replicas() {
        let mut sim = Sim::new(1);
        let (dfs, _) = deploy(&mut sim, 4, false);
        let dfs2 = dfs.clone();
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: move |ctx, ev, dfs, state| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/input".into(),
                            len: 8 * (64 << 20),
                            block_size: None,
                            replication: None,
                            seed: 7,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if let Some(done) = msg.peek::<PreloadDone>() {
                        assert_eq!(done.view.blocks.len(), 8);
                        assert_eq!(done.view.len, 8 * (64 << 20));
                        // Round-robin over 4 nodes: each holds 2 blocks.
                        let mut counts = std::collections::BTreeMap::new();
                        for b in &done.view.blocks {
                            assert_eq!(b.replicas.len(), 1);
                            *counts.entry(b.replicas[0]).or_insert(0u32) += 1;
                        }
                        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
                        *state = 1;
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                _ => {}
            },
        }));
        let _ = dfs2;
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
    }

    #[test]
    fn read_returns_canonical_bytes() {
        let mut sim = Sim::new(2);
        let (dfs, _) = deploy(&mut sim, 2, true);
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: |ctx, ev, dfs, _state| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/data".into(),
                            len: 1 << 20,
                            block_size: Some(256 << 10),
                            replication: None,
                            seed: 42,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if let Some(done) = msg.peek::<PreloadDone>() {
                        // Read 1000 bytes at offset 100 of block 1.
                        let b = &done.view.blocks[1];
                        dfs.read_range(ctx, NodeId(1), b.replicas[0], b.id, 100, 1000, None, 77);
                    } else if let Some(data) = msg.peek::<RangeData>() {
                        assert_eq!(data.tag, 77);
                        assert_eq!(data.len, 1000);
                        let got = data.bytes.as_ref().expect("materialized");
                        let mut expect = vec![0u8; 1000];
                        accelmr_kernels::fill_deterministic(42, (256 << 10) + 100, &mut expect);
                        assert_eq!(got, &expect);
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                _ => {}
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
    }

    #[test]
    fn capped_read_takes_protocol_limited_time() {
        let mut sim = Sim::new(3);
        let (dfs, _) = deploy(&mut sim, 1, false);
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: |ctx, ev, dfs, _| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/big".into(),
                            len: 64 << 20,
                            block_size: None,
                            replication: None,
                            seed: 0,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if let Some(done) = msg.peek::<PreloadDone>() {
                        let b = &done.view.blocks[0];
                        // Local (loopback) read of a full 64 MB block capped
                        // at 8.5 MB/s: the paper's "several seconds per
                        // record" observation.
                        dfs.read_range(
                            ctx,
                            NodeId(1),
                            b.replicas[0],
                            b.id,
                            0,
                            b.len,
                            Some(8.5e6),
                            1,
                        );
                    } else if msg.peek::<RangeData>().is_some() {
                        let secs = ctx.now().as_secs_f64();
                        let expect = (64 << 20) as f64 / 8.5e6;
                        assert!((secs - expect).abs() < 0.1, "took {secs}, expect ~{expect}");
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                _ => {}
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
    }

    #[test]
    fn write_pipeline_replicates_and_acks() {
        let mut sim = Sim::new(4);
        let (dfs, _) = deploy(&mut sim, 3, false);
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: |ctx, ev, dfs, state| match ev {
                Event::Start => {
                    dfs.create_file(ctx, NodeId(2), "/out", Some(2));
                }
                Event::Msg { msg, .. } => {
                    if let Some(ack) = msg.peek::<CreateAck>() {
                        assert!(ack.ok);
                        dfs.alloc_block(ctx, NodeId(2), "/out", 32 << 20, 5);
                    } else if let Some(alloc) = msg.peek::<BlockAllocated>() {
                        assert_eq!(alloc.tag, 5);
                        assert_eq!(alloc.pipeline.len(), 2);
                        // Writer-local first replica preferred.
                        assert_eq!(alloc.pipeline[0], NodeId(2));
                        assert!(dfs.write_block(
                            ctx,
                            NodeId(2),
                            alloc.block,
                            32 << 20,
                            9,
                            0,
                            &alloc.pipeline,
                            5,
                        ));
                        *state = 1;
                    } else if let Some(ack) = msg.peek::<WriteAck>() {
                        assert_eq!(ack.tag, 5);
                        assert_eq!(*state, 1);
                        // Re-locate: both replicas visible.
                        dfs.get_locations(ctx, NodeId(2), "/out", 6);
                        *state = 2;
                    } else if let Some(loc) = msg.peek::<LocationsReply>() {
                        let view = loc.view.as_ref().expect("file exists");
                        assert_eq!(view.blocks.len(), 1);
                        assert_eq!(view.blocks[0].replicas.len(), 2);
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                _ => {}
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
    }

    #[test]
    fn missing_file_and_missing_block() {
        let mut sim = Sim::new(5);
        let (dfs, _) = deploy(&mut sim, 1, false);
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: |ctx, ev, dfs, state| match ev {
                Event::Start => {
                    dfs.get_locations(ctx, NodeId(1), "/nope", 1);
                }
                Event::Msg { msg, .. } => {
                    if let Some(rep) = msg.peek::<LocationsReply>() {
                        assert!(rep.view.is_none());
                        *state = 1;
                        dfs.read_range(ctx, NodeId(1), NodeId(1), BlockId(999), 0, 10, None, 2);
                    } else if let Some(err) = msg.peek::<ReadError>() {
                        assert_eq!(err.tag, 2);
                        assert_eq!(*state, 1);
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                _ => {}
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
    }

    /// Killing a replica holder must repair every affected block back to
    /// its target replication, sourced from surviving replicas.
    #[test]
    fn dead_datanode_triggers_rereplication_to_target() {
        let mut sim = Sim::new(9);
        let (dfs, _) = deploy(&mut sim, 3, false);
        let dn1 = dfs.datanode_on(NodeId(1)).unwrap();
        let namenode = dfs.namenode;
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: move |ctx, ev, dfs, _state| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/r2".into(),
                            len: 4 * (64 << 20),
                            block_size: None,
                            replication: Some(2),
                            seed: 1,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if msg.peek::<PreloadDone>().is_some() {
                        ctx.send(dn1, crate::datanode::Shutdown);
                        // Past dead_after (30 s) + time for the repair
                        // pipelines to stream.
                        ctx.after(SimDuration::from_secs(60), 1);
                    } else if let Some(rep) = msg.peek::<LocationsReply>() {
                        let view = rep.view.as_ref().unwrap();
                        for b in &view.blocks {
                            assert_eq!(b.replicas.len(), 2, "block {} under target", b.id);
                            assert!(!b.replicas.contains(&NodeId(1)));
                        }
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                Event::Timer { .. } => {
                    dfs.get_locations(ctx, NodeId(2), "/r2", 3);
                }
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
        assert!(sim.stats().counter("dfs.replications_started") >= 1);
        assert!(sim.stats().counter("dfs.blocks_replicated") >= 1);
        let nn = sim
            .actor_ref::<crate::namenode::NameNode>(namenode)
            .expect("namenode alive");
        assert_eq!(nn.under_replicated_blocks(), 0);
        assert_eq!(nn.replica_counts("/r2"), Some(vec![2, 2, 2, 2]));
    }

    /// A joined DataNode enters the placement rotation and can absorb
    /// repairs that previously had nowhere to go.
    #[test]
    fn joined_datanode_hosts_repairs_without_prior_capacity() {
        let mut sim = Sim::new(10);
        // Two nodes, replication 2: after one dies there is no third node
        // to repair onto — until one joins.
        let (dfs, _) = deploy(&mut sim, 2, false);
        let dn1 = dfs.datanode_on(NodeId(1)).unwrap();
        let namenode = dfs.namenode;
        let net = dfs.net;
        let dfs_reg = dfs.datanodes.clone();
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: move |ctx, ev, dfs, state| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/f".into(),
                            len: 2 * (64 << 20),
                            block_size: None,
                            replication: Some(2),
                            seed: 2,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if msg.peek::<PreloadDone>().is_some() {
                        ctx.send(dn1, crate::datanode::Shutdown);
                        ctx.after(SimDuration::from_secs(45), 1);
                    } else if let Some(rep) = msg.peek::<LocationsReply>() {
                        let view = rep.view.as_ref().unwrap();
                        for b in &view.blocks {
                            assert_eq!(b.replicas.len(), 2);
                            assert!(b.replicas.contains(&NodeId(3)), "join not used: {b:?}");
                        }
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                Event::Timer { tag: 1, .. } => {
                    // Node 1 is dead and every block sits at 1/2 replicas
                    // with no capacity. Join node 3 the way the runtime
                    // does: grow the fabric, spawn + wire a DataNode,
                    // admit it at the NameNode.
                    *state = 1;
                    net.ensure_node(ctx, NodeId(3));
                    let cfg = DfsConfig::default();
                    let mut dn = DataNode::new(cfg, net, NodeId(3), NodeId::HEAD, false);
                    let peers: FxHashMap<NodeId, ActorId> =
                        dfs_reg.snapshot().into_iter().collect();
                    dn.rewire(dfs.namenode, peers);
                    let dn_id = ctx.spawn(Box::new(dn));
                    for (_, peer) in dfs_reg.snapshot() {
                        ctx.send(
                            peer,
                            AddPeer {
                                node: NodeId(3),
                                actor: dn_id,
                            },
                        );
                    }
                    dfs_reg.insert(NodeId(3), dn_id);
                    ctx.send(
                        dfs.namenode,
                        AddDataNode {
                            node: NodeId(3),
                            actor: dn_id,
                        },
                    );
                    ctx.after(SimDuration::from_secs(30), 2);
                }
                Event::Timer { .. } => {
                    dfs.get_locations(ctx, NodeId(2), "/f", 7);
                }
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
        assert_eq!(sim.stats().counter("dfs.datanodes_joined"), 1);
        let nn = sim
            .actor_ref::<crate::namenode::NameNode>(namenode)
            .expect("namenode alive");
        assert_eq!(nn.under_replicated_blocks(), 0);
        assert_eq!(nn.live_datanode_count(), 2);
    }

    #[test]
    fn dead_datanode_excluded_from_locations() {
        let mut sim = Sim::new(6);
        let (dfs, _nodes) = deploy(&mut sim, 2, false);
        let dn1 = dfs.datanode_on(NodeId(1)).unwrap();
        sim.spawn(Box::new(Client {
            dfs,
            state: 0,
            script: move |ctx, ev, dfs, state| match ev {
                Event::Start => {
                    let me = ctx.self_id();
                    ctx.send(
                        dfs.namenode,
                        PreloadFile {
                            path: "/f".into(),
                            len: 2 * (64 << 20),
                            block_size: None,
                            replication: None,
                            seed: 0,
                            reply: me,
                        },
                    );
                }
                Event::Msg { msg, .. } => {
                    if msg.peek::<PreloadDone>().is_some() {
                        // Kill DataNode on node 1, then wait past dead_after.
                        ctx.send(dn1, crate::datanode::Shutdown);
                        ctx.after(SimDuration::from_secs(40), 1);
                    } else if let Some(rep) = msg.peek::<LocationsReply>() {
                        let view = rep.view.as_ref().unwrap();
                        for b in &view.blocks {
                            assert!(!b.replicas.contains(&NodeId(1)));
                        }
                        ctx.stats().incr("verified");
                        ctx.stop();
                    }
                }
                Event::Timer { .. } => {
                    *state += 1;
                    dfs.get_locations(ctx, NodeId(2), "/f", 3);
                }
            },
        }));
        sim.run();
        assert_eq!(sim.stats().counter("verified"), 1);
        assert_eq!(sim.stats().counter("dfs.datanodes_declared_dead"), 1);
    }
}
