//! The paper's map kernels, one per evaluated configuration.
//!
//! | Paper configuration  | Kernel                | Engine                |
//! |----------------------|-----------------------|-----------------------|
//! | Java Mapper          | [`JavaAesKernel`]     | PPE task JVM (scalar) |
//! | Cell BE Mapper       | [`CellAesKernel`]     | SPUs via direct lib   |
//! | MapReduce Cell       | [`CellMrAesKernel`]   | SPUs via framework    |
//! | Empty Mapper         | [`EmptyKernel`]       | none (feed only)      |
//! | Java Pi              | [`JavaPiKernel`]      | PPE task JVM (scalar) |
//! | Cell Pi              | [`CellPiKernel`]      | SPUs via direct lib   |
//!
//! Every kernel really computes when records are materialized (real AES
//! ciphertext through the simulated local stores, real Monte Carlo
//! sampling); in virtual mode the same calibrated constants produce timing
//! only, and a property test pins the two paths to identical durations.

use std::sync::Arc;

use accelmr_cellbe::{estimate, AesCtrSpeKernel, DataInput, PiSpeKernel};
use accelmr_kernels::aes::modes::ctr_xor;
use accelmr_kernels::cost::{self, Engine};
use accelmr_kernels::{checksum, Aes128, AesImpl};
use accelmr_mapred::{NodeEnv, RecordCtx, RecordOutcome, TaskKernel, UnitsOutcome};

use crate::bridge::JniBridge;
use crate::env::CellNodeEnv;

/// Key used by every encryption kernel (fixed 128-bit key, as the paper's
/// single-key working-set encryption does).
pub fn job_key() -> Arc<Aes128> {
    Arc::new(Aes128::new(b"accelmr-job-key!"))
}

/// CTR nonce shared by all encryption kernels of a job, so outputs are
/// byte-comparable across engines and against a serial reference.
pub const JOB_NONCE: u64 = 0xACCE1;

fn cell_env(env: &mut dyn NodeEnv) -> &mut CellNodeEnv {
    env.as_any_mut()
        .downcast_mut::<CellNodeEnv>()
        .expect("accelerated kernels need a CellNodeEnv (use CellEnvFactory)")
}

// ---------------------------------------------------------------- Java AES

/// The pure-Java encryption mapper: scalar AES on the PPE inside the task
/// JVM. No node setup, no bridge.
#[derive(Clone)]
pub struct JavaAesKernel {
    key: Arc<Aes128>,
    /// Execution engine (defaults to the task-JVM PPE model).
    pub engine: Engine,
}

impl JavaAesKernel {
    /// Builds the kernel with the default job key.
    pub fn new() -> Self {
        JavaAesKernel {
            key: job_key(),
            engine: Engine::JavaPpeTask,
        }
    }
}

impl Default for JavaAesKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskKernel for JavaAesKernel {
    fn name(&self) -> &'static str {
        "aes-java"
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        let compute = cost::aes_time(self.engine, rec.len);
        let (output, digest) = match rec.bytes {
            Some(bytes) => {
                // Functionally identical to the scalar cipher (property
                // tested); the T-table path keeps debug-build test runs
                // fast. Timing comes from the cost model either way.
                let mut out = bytes.to_vec();
                ctr_xor(
                    &self.key,
                    AesImpl::TTable,
                    JOB_NONCE,
                    rec.abs_offset / 16,
                    &mut out,
                );
                let d = checksum(&out);
                (Some(out), d)
            }
            None => (None, 0),
        };
        RecordOutcome {
            compute,
            output_bytes: rec.len,
            output,
            digest,
            kv: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------- Cell AES

/// The Cell-accelerated encryption mapper: the Hadoop `map()` calls through
/// the JNI bridge into the direct SPE offload library (4 KB blocks striped
/// over 8 SPUs, double-buffered DMA).
#[derive(Clone)]
pub struct CellAesKernel {
    key: Arc<Aes128>,
    bridge: JniBridge,
    /// SPU work-block size (paper: 4 KB).
    pub block_size: usize,
}

impl CellAesKernel {
    /// Builds the kernel with the default job key and 4 KB SPU blocks.
    pub fn new() -> Self {
        CellAesKernel {
            key: job_key(),
            bridge: JniBridge::default(),
            block_size: 4096,
        }
    }
}

impl Default for CellAesKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskKernel for CellAesKernel {
    fn name(&self) -> &'static str {
        "aes-cell"
    }

    fn node_setup(&self, env: &mut dyn NodeEnv) -> accelmr_des::SimDuration {
        // SPU context creation the first time the library loads on a node.
        let cell = cell_env(env);
        cell.machine(0).warm_up()
    }

    fn map_record(&self, env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        let cell = cell_env(env);
        let machine = cell.machine(0);
        let spu_kernel = AesCtrSpeKernel::new(self.key.clone(), JOB_NONCE);
        let bridge_cost = self.bridge.call_cost(rec.len);
        match rec.bytes {
            Some(bytes) => {
                // Functional: the record truly rides through the local
                // stores and comes back encrypted.
                let report = machine
                    .run_data_at(
                        DataInput::Real(bytes),
                        &spu_kernel,
                        self.block_size,
                        rec.abs_offset,
                    )
                    .expect("valid block size");
                let out = report.output.expect("materialized run yields output");
                let digest = checksum(&out);
                RecordOutcome {
                    compute: bridge_cost + report.elapsed,
                    output_bytes: rec.len,
                    output: Some(out),
                    digest,
                    kv: Vec::new(),
                }
            }
            None => {
                // Virtual: closed-form estimator over the same constants
                // (property-tested against the event model).
                let cfg = machine.config().clone();
                let session = if machine.is_warm() {
                    cfg.session_start
                } else {
                    machine.warm_up() + cfg.session_start
                };
                let body = estimate::data_run_body(
                    &cfg,
                    rec.len,
                    cost::cost(Engine::SpeSimd).aes_cycles_per_byte,
                    self.block_size,
                );
                RecordOutcome {
                    compute: bridge_cost + session + body,
                    output_bytes: rec.len,
                    output: None,
                    digest: 0,
                    kv: Vec::new(),
                }
            }
        }
    }
}

// ------------------------------------------------------------- CellMR AES

/// Encryption through the MapReduce-for-Cell framework (the paper's second
/// native library): adds the PPE staging copy and per-record bookkeeping.
#[derive(Clone)]
pub struct CellMrAesKernel {
    key: Arc<Aes128>,
    bridge: JniBridge,
}

impl CellMrAesKernel {
    /// Builds the kernel with the default job key.
    pub fn new() -> Self {
        CellMrAesKernel {
            key: job_key(),
            bridge: JniBridge::default(),
        }
    }
}

impl Default for CellMrAesKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskKernel for CellMrAesKernel {
    fn name(&self) -> &'static str {
        "aes-cellmr"
    }

    fn node_setup(&self, env: &mut dyn NodeEnv) -> accelmr_des::SimDuration {
        let cell = cell_env(env);
        cell.framework().machine_mut().warm_up()
    }

    fn map_record(&self, env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        let cell = cell_env(env);
        let fw = cell.framework();
        let spu_kernel = AesCtrSpeKernel::new(self.key.clone(), JOB_NONCE);
        let bridge_cost = self.bridge.call_cost(rec.len);
        match rec.bytes {
            Some(bytes) => {
                let (machine_report, fw_report) = fw
                    .run_map_at(DataInput::Real(bytes), &spu_kernel, rec.abs_offset)
                    .expect("valid framework run");
                let out = machine_report.output.expect("materialized");
                let digest = checksum(&out);
                RecordOutcome {
                    compute: bridge_cost + fw_report.total,
                    output_bytes: rec.len,
                    output: Some(out),
                    digest,
                    kv: Vec::new(),
                }
            }
            None => {
                let (_, fw_report) = fw
                    .run_map_at(DataInput::Virtual(rec.len), &spu_kernel, rec.abs_offset)
                    .expect("valid framework run");
                RecordOutcome {
                    compute: bridge_cost + fw_report.total,
                    output_bytes: rec.len,
                    output: None,
                    digest: 0,
                    kv: Vec::new(),
                }
            }
        }
    }
}

// ------------------------------------------------------------------ Empty

/// The paper's EmptyMapper: reads records, computes nothing, emits nothing
/// — isolates the Hadoop runtime + feed path overhead.
#[derive(Clone, Copy, Debug, Default)]
pub struct EmptyKernel;

impl TaskKernel for EmptyKernel {
    fn name(&self) -> &'static str {
        "empty"
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome {
            // A record-boundary bookkeeping sliver, nothing more.
            compute: accelmr_des::SimDuration::from_micros(200),
            output_bytes: 0,
            output: None,
            digest: rec.bytes.map(checksum).unwrap_or(0),
            kv: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------- Java Pi

/// The Hadoop-sample PiEstimator mapper, scalar on the PPE task JVM.
#[derive(Clone, Copy, Debug)]
pub struct JavaPiKernel {
    /// RNG seed namespace for the job.
    pub seed: u64,
    /// Execution engine.
    pub engine: Engine,
}

impl JavaPiKernel {
    /// Builds the kernel.
    pub fn new(seed: u64) -> Self {
        JavaPiKernel {
            seed,
            engine: Engine::JavaPpeTask,
        }
    }
}

impl TaskKernel for JavaPiKernel {
    fn name(&self) -> &'static str {
        "pi-java"
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, _rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome::default()
    }

    fn map_units(&self, _env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let inside = accelmr_kernels::pi::count_inside_auto(self.seed, stream, units);
        UnitsOutcome {
            compute: cost::pi_time(self.engine, units),
            kv: vec![(0, inside), (1, units)],
        }
    }
}

// ---------------------------------------------------------------- Cell Pi

/// The Cell-accelerated Pi mapper: samples split across the 8 SPUs via the
/// direct offload library.
#[derive(Clone, Copy, Debug)]
pub struct CellPiKernel {
    /// RNG seed namespace for the job.
    pub seed: u64,
    bridge: JniBridge,
}

impl CellPiKernel {
    /// Builds the kernel.
    pub fn new(seed: u64) -> Self {
        CellPiKernel {
            seed,
            bridge: JniBridge::default(),
        }
    }
}

impl TaskKernel for CellPiKernel {
    fn name(&self) -> &'static str {
        "pi-cell"
    }

    fn node_setup(&self, env: &mut dyn NodeEnv) -> accelmr_des::SimDuration {
        let cell = cell_env(env);
        cell.machine(0).warm_up()
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, _rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome::default()
    }

    fn map_units(&self, env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let cell = cell_env(env);
        let machine = cell.machine(0);
        // Per-task stream namespace: each task gets an 8-wide SPE stream
        // block so SPE sub-streams never collide across tasks.
        let spu_kernel = PiSpeKernel::new(self.seed, stream * 8);
        let report = machine.run_compute(units, &spu_kernel);
        let inside: u64 = report.unit_results.iter().sum();
        UnitsOutcome {
            compute: self.bridge.call_cost(64) + report.elapsed,
            kv: vec![(0, inside), (1, units)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CellEnvFactory;
    use accelmr_kernels::fill_deterministic;
    use accelmr_mapred::NodeEnvFactory;

    fn materialized_env() -> Box<dyn NodeEnv> {
        CellEnvFactory {
            materialized: true,
            ..CellEnvFactory::default()
        }
        .build(0)
    }

    fn record(len: usize, offset: u64) -> (Vec<u8>, RecordCtx<'static>) {
        let mut buf = vec![0u8; len];
        fill_deterministic(3, offset, &mut buf);
        let leaked: &'static [u8] = Box::leak(buf.clone().into_boxed_slice());
        (
            buf,
            RecordCtx {
                abs_offset: offset,
                len: len as u64,
                bytes: Some(leaked),
                file_seed: 3,
            },
        )
    }

    #[test]
    fn all_aes_engines_produce_identical_ciphertext() {
        let (plain, rec) = record(128 * 1024, 256 * 1024);
        let mut env = materialized_env();

        let java = JavaAesKernel::new().map_record(env.as_mut(), &rec);
        let cell = CellAesKernel::new().map_record(env.as_mut(), &rec);
        let cellmr = CellMrAesKernel::new().map_record(env.as_mut(), &rec);

        let mut reference = plain.clone();
        ctr_xor(
            &job_key(),
            AesImpl::TTable,
            JOB_NONCE,
            rec.abs_offset / 16,
            &mut reference,
        );

        assert_eq!(java.output.as_deref(), Some(reference.as_slice()));
        assert_eq!(cell.output.as_deref(), Some(reference.as_slice()));
        assert_eq!(cellmr.output.as_deref(), Some(reference.as_slice()));
        assert_eq!(java.digest, cell.digest);
        assert_eq!(cell.digest, cellmr.digest);
    }

    #[test]
    fn engine_speed_ordering_matches_figure_2() {
        let (_, rec) = record(1 << 20, 0);
        let mut env = materialized_env();
        // Warm all machines so start-up doesn't blur the ordering.
        let cell_kernel = CellAesKernel::new();
        cell_kernel.node_setup(env.as_mut());
        let cellmr_kernel = CellMrAesKernel::new();
        cellmr_kernel.node_setup(env.as_mut());

        let java = JavaAesKernel::new().map_record(env.as_mut(), &rec).compute;
        let cell = cell_kernel.map_record(env.as_mut(), &rec).compute;
        let cellmr = cellmr_kernel.map_record(env.as_mut(), &rec).compute;

        assert!(cell < cellmr, "direct {cell} vs framework {cellmr}");
        assert!(cellmr < java, "framework {cellmr} vs java {java}");
    }

    #[test]
    fn virtual_and_materialized_cell_timing_agree_approximately() {
        let (_, rec) = record(4 << 20, 0);
        let kernel = CellAesKernel::new();

        let mut env_m = materialized_env();
        kernel.node_setup(env_m.as_mut());
        let t_mat = kernel.map_record(env_m.as_mut(), &rec).compute;

        let mut env_v = CellEnvFactory::default().build(0);
        kernel.node_setup(env_v.as_mut());
        let virt_rec = RecordCtx {
            bytes: None,
            ..RecordCtx {
                abs_offset: rec.abs_offset,
                len: rec.len,
                bytes: None,
                file_seed: 3,
            }
        };
        let t_virt = kernel.map_record(env_v.as_mut(), &virt_rec).compute;
        let rel = (t_mat.as_secs_f64() - t_virt.as_secs_f64()).abs() / t_mat.as_secs_f64();
        assert!(rel < 0.05, "materialized {t_mat} vs virtual {t_virt}");
    }

    #[test]
    fn pi_kernels_agree_statistically_and_cell_is_faster() {
        let n = 1_000_000u64;
        let mut env = materialized_env();
        let java = JavaPiKernel::new(5).map_units(env.as_mut(), n, 0);
        let cell_kernel = CellPiKernel::new(5);
        cell_kernel.node_setup(env.as_mut());
        let cell = cell_kernel.map_units(env.as_mut(), n, 0);

        for out in [&java, &cell] {
            assert_eq!(out.kv[1], (1, n));
            let est = 4.0 * out.kv[0].1 as f64 / n as f64;
            assert!((est - std::f64::consts::PI).abs() < 0.01, "{est}");
        }
        // Fig. 6: the warmed Cell kernel is orders of magnitude faster.
        let ratio = java.compute.as_secs_f64() / cell.compute.as_secs_f64();
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn empty_kernel_costs_almost_nothing() {
        let (_, rec) = record(1 << 20, 0);
        let mut env = materialized_env();
        let out = EmptyKernel.map_record(env.as_mut(), &rec);
        assert_eq!(out.output_bytes, 0);
        assert!(out.compute < accelmr_des::SimDuration::from_millis(1));
    }
}
