//! Per-node accelerator environment.
//!
//! Each worker node owns one Cell BE machine model (two physical Cells in a
//! QS22, but the paper runs one mapper per Cell, so the environment exposes
//! one machine per map slot lane; we model the per-mapper Cell directly).
//! SPU contexts stay warm across tasks on the same node — the effect that
//! makes the first accelerated task on a node slower.

use accelmr_cellbe::{CellConfig, CellMachine};
use accelmr_cellmr::{CellMrConfig, CellMrRuntime};
use accelmr_mapred::{NodeEnv, NodeEnvFactory};

/// Node-resident Cell BE state: one machine per map slot (the QS22 carries
/// two Cell processors and the paper runs two mappers per blade, one per
/// Cell), plus a MapReduce-for-Cell framework instance for jobs routed
/// through the second native library.
pub struct CellNodeEnv {
    machines: Vec<CellMachine>,
    framework: CellMrRuntime,
    materialized: bool,
}

impl CellNodeEnv {
    /// Builds the environment with `slots` per-mapper Cell machines.
    pub fn new(
        cell_cfg: CellConfig,
        mr_cfg: CellMrConfig,
        slots: usize,
        materialized: bool,
    ) -> Self {
        let machines = (0..slots.max(1))
            .map(|_| CellMachine::new(cell_cfg.clone(), materialized).expect("valid config"))
            .collect();
        let framework = CellMrRuntime::new(cell_cfg, mr_cfg, materialized).expect("valid config");
        CellNodeEnv {
            machines,
            framework,
            materialized,
        }
    }

    /// The Cell machine backing map slot `slot`.
    pub fn machine(&mut self, slot: usize) -> &mut CellMachine {
        let n = self.machines.len();
        &mut self.machines[slot % n]
    }

    /// The MapReduce-for-Cell framework runtime.
    pub fn framework(&mut self) -> &mut CellMrRuntime {
        &mut self.framework
    }

    /// Whether kernels execute functionally on real bytes.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }
}

impl NodeEnv for CellNodeEnv {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Factory handing every node a [`CellNodeEnv`].
#[derive(Clone)]
pub struct CellEnvFactory {
    /// Cell machine configuration.
    pub cell_cfg: CellConfig,
    /// Framework configuration.
    pub mr_cfg: CellMrConfig,
    /// Map slots per node (one Cell machine each).
    pub slots: usize,
    /// Functional simulation?
    pub materialized: bool,
}

impl Default for CellEnvFactory {
    fn default() -> Self {
        CellEnvFactory {
            cell_cfg: CellConfig::default(),
            mr_cfg: CellMrConfig::default(),
            slots: 2,
            materialized: false,
        }
    }
}

impl NodeEnvFactory for CellEnvFactory {
    fn build(&self, _node_index: usize) -> Box<dyn NodeEnv> {
        Box::new(CellNodeEnv::new(
            self.cell_cfg.clone(),
            self.mr_cfg.clone(),
            self.slots,
            self.materialized,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_downcasts_and_cycles_machines() {
        let mut env = CellEnvFactory::default().build(0);
        let cell = env
            .as_any_mut()
            .downcast_mut::<CellNodeEnv>()
            .expect("downcast");
        assert!(!cell.is_materialized());
        // Slot indices wrap over available machines.
        cell.machine(0).warm_up();
        assert!(cell.machine(2).is_warm()); // 2 % 2 == 0: same machine
        assert!(!cell.machine(1).is_warm());
    }
}
