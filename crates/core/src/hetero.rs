//! Heterogeneous clusters — the paper's §V third open issue, implemented.
//!
//! "We also plan to carry on research on clusters with an increasing level
//! of heterogeneity, involving a dynamically variable number of both nodes
//! enabled with hardware accelerators and general purpose nodes."
//!
//! This module provides exactly that: a [`MixedEnvFactory`] that equips
//! only a fraction of the workers with Cell accelerators, and an
//! [`AdaptiveAesKernel`] / [`AdaptivePiKernel`] that probe the node
//! environment at run time — offloading where an accelerator exists and
//! falling back to the scalar engine elsewhere (what the JNI library's
//! capability probe would do). The accompanying tests demonstrate the
//! phenomenon the paper anticipated: with placement-blind scheduling, the
//! *slowest class of nodes sets the CPU-bound job time*, so partial
//! accelerator coverage buys far less than its proportional share.

use accelmr_mapred::{NodeEnv, NodeEnvFactory, RecordCtx, RecordOutcome, TaskKernel, UnitsOutcome};

use crate::env::{CellEnvFactory, CellNodeEnv};
use crate::kernels::{CellAesKernel, CellPiKernel, JavaAesKernel, JavaPiKernel};

/// Equips the first `accelerated_of.0` of every `accelerated_of.1` nodes
/// with Cell environments; the rest get plain (scalar-only) environments.
#[derive(Clone)]
pub struct MixedEnvFactory {
    /// `(accelerated, out_of)`: e.g. `(1, 2)` = every other node.
    pub accelerated_of: (usize, usize),
    /// Factory for the accelerated nodes.
    pub cell: CellEnvFactory,
}

impl MixedEnvFactory {
    /// Half the nodes accelerated.
    pub fn half() -> Self {
        MixedEnvFactory {
            accelerated_of: (1, 2),
            cell: CellEnvFactory::default(),
        }
    }

    /// `true` when node `index` carries an accelerator.
    pub fn is_accelerated(&self, index: usize) -> bool {
        let (num, den) = self.accelerated_of;
        den == 0 || (index % den) < num
    }
}

impl NodeEnvFactory for MixedEnvFactory {
    fn build(&self, node_index: usize) -> Box<dyn NodeEnv> {
        if self.is_accelerated(node_index) {
            self.cell.build(node_index)
        } else {
            Box::new(accelmr_mapred::NullEnv)
        }
    }
}

fn has_accelerator(env: &mut dyn NodeEnv) -> bool {
    env.as_any_mut().downcast_mut::<CellNodeEnv>().is_some()
}

/// Encryption kernel that offloads on accelerated nodes and runs the
/// scalar engine elsewhere.
pub struct AdaptiveAesKernel {
    cell: CellAesKernel,
    java: JavaAesKernel,
}

impl AdaptiveAesKernel {
    /// Builds the adaptive kernel with the default job key.
    pub fn new() -> Self {
        AdaptiveAesKernel {
            cell: CellAesKernel::new(),
            java: JavaAesKernel::new(),
        }
    }
}

impl Default for AdaptiveAesKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskKernel for AdaptiveAesKernel {
    fn name(&self) -> &'static str {
        "aes-adaptive"
    }

    fn node_setup(&self, env: &mut dyn NodeEnv) -> accelmr_des::SimDuration {
        if has_accelerator(env) {
            self.cell.node_setup(env)
        } else {
            accelmr_des::SimDuration::ZERO
        }
    }

    fn map_record(&self, env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        if has_accelerator(env) {
            self.cell.map_record(env, rec)
        } else {
            self.java.map_record(env, rec)
        }
    }
}

/// Pi kernel that offloads on accelerated nodes and samples on the PPE
/// elsewhere.
#[derive(Clone, Copy, Debug)]
pub struct AdaptivePiKernel {
    cell: CellPiKernel,
    java: JavaPiKernel,
}

impl AdaptivePiKernel {
    /// Builds the adaptive kernel for a seed.
    pub fn new(seed: u64) -> Self {
        AdaptivePiKernel {
            cell: CellPiKernel::new(seed),
            java: JavaPiKernel::new(seed),
        }
    }
}

impl TaskKernel for AdaptivePiKernel {
    fn name(&self) -> &'static str {
        "pi-adaptive"
    }

    fn node_setup(&self, env: &mut dyn NodeEnv) -> accelmr_des::SimDuration {
        if has_accelerator(env) {
            self.cell.node_setup(env)
        } else {
            accelmr_des::SimDuration::ZERO
        }
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, _rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome::default()
    }

    fn map_units(&self, env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        if has_accelerator(env) {
            self.cell.map_units(env, units, stream)
        } else {
            self.java.map_units(env, units, stream)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_mapred::{ClusterBuilder, JobBuilder, JobResult, SchedulerPolicy, SumReducer};

    fn run_mixed_pi(factory: &MixedEnvFactory, samples: u64, seed: u64) -> JobResult {
        let mut c = ClusterBuilder::new()
            .seed(seed)
            .workers(4)
            .env(factory.clone())
            .deploy();
        let mut session = c.session();
        session.submit(
            JobBuilder::new("mixed-pi")
                .synthetic(samples)
                .kernel(AdaptivePiKernel::new(3))
                .map_tasks(8)
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                }),
        );
        session.run()
    }

    #[test]
    fn mixed_fraction_accounting() {
        let half = MixedEnvFactory::half();
        let flags: Vec<bool> = (0..6).map(|i| half.is_accelerated(i)).collect();
        assert_eq!(flags, vec![true, false, true, false, true, false]);
        let full = MixedEnvFactory {
            accelerated_of: (1, 1),
            cell: CellEnvFactory::default(),
        };
        assert!((0..4).all(|i| full.is_accelerated(i)));
    }

    /// The paper's anticipated effect: with placement-blind scheduling,
    /// CPU-bound job time follows the *slowest* node class, so halving the
    /// accelerated fraction costs far more than 2x.
    #[test]
    fn stragglers_on_plain_nodes_dominate_cpu_bound_jobs() {
        let samples = 4_000_000_000u64;
        let all = run_mixed_pi(
            &MixedEnvFactory {
                accelerated_of: (1, 1),
                cell: CellEnvFactory::default(),
            },
            samples,
            1,
        );
        let half = run_mixed_pi(&MixedEnvFactory::half(), samples, 2);
        let none = run_mixed_pi(
            &MixedEnvFactory {
                accelerated_of: (0, 1),
                cell: CellEnvFactory::default(),
            },
            samples,
            3,
        );
        assert!(all.succeeded && half.succeeded && none.succeeded);

        let (t_all, t_half, t_none) = (
            all.elapsed.as_secs_f64(),
            half.elapsed.as_secs_f64(),
            none.elapsed.as_secs_f64(),
        );
        // Fully accelerated is far faster than unaccelerated.
        assert!(t_none > 10.0 * t_all, "none {t_none} vs all {t_all}");
        // Half-accelerated is nowhere near halfway (log-scale): the plain
        // nodes' tasks dominate; it lands within ~2x of fully-plain.
        assert!(
            t_half > 0.4 * t_none,
            "half {t_half} should be straggler-bound (none: {t_none})"
        );
        assert!(t_half > 5.0 * t_all);
    }

    /// Runs the CPU-bound Pi workload on the half-accelerated cluster
    /// under `policy`, letting the scheduler plan the splits (no explicit
    /// `map_tasks`).
    fn run_mixed_pi_policy(policy: SchedulerPolicy, samples: u64, seed: u64) -> JobResult {
        let mut c = ClusterBuilder::new()
            .seed(seed)
            .workers(4)
            .env(MixedEnvFactory::half())
            .scheduler(policy)
            .deploy();
        let mut session = c.session();
        session.submit(
            JobBuilder::new("mixed-pi-sched")
                .synthetic(samples)
                .kernel(AdaptivePiKernel::new(3))
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                }),
        );
        session.run()
    }

    /// The refactor's payoff, on the exact scenario the straggler test
    /// reproduces: the adaptive scheduler's oversplit + learned dispatch
    /// beats placement-blind LocalityFirst end to end on the
    /// half-accelerated CPU-bound cluster. The same comparison lands in
    /// `BENCH_sched.json` via the `sched_ablation` bench bin.
    #[test]
    fn adaptive_scheduler_beats_locality_on_mixed_cluster() {
        let samples = 4_000_000_000u64;
        let locality = run_mixed_pi_policy(SchedulerPolicy::LocalityFirst, samples, 11);
        let adaptive = run_mixed_pi_policy(SchedulerPolicy::adaptive(), samples, 11);
        assert!(locality.succeeded && adaptive.succeeded);
        // Same work performed under both plans.
        let total = |r: &JobResult| r.kv.iter().find(|&&(k, _)| k == 1).unwrap().1;
        assert_eq!(total(&locality), samples);
        assert_eq!(total(&adaptive), samples);
        let (t_loc, t_ad) = (
            locality.elapsed.as_secs_f64(),
            adaptive.elapsed.as_secs_f64(),
        );
        // Strictly better — and by a real margin, not noise.
        assert!(
            t_ad < 0.75 * t_loc,
            "adaptive {t_ad:.1}s vs locality {t_loc:.1}s"
        );
        // The learned model separates Cell nodes from plain nodes.
        let tp = &adaptive.node_throughput;
        assert!(tp.len() >= 2, "{tp:?}");
        let max = tp.iter().map(|e| e.throughput).fold(f64::MIN, f64::max);
        let min = tp.iter().map(|e| e.throughput).fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "learned spread {max:.0}/{min:.0}");
    }

    /// Results stay correct regardless of which engine sampled.
    #[test]
    fn mixed_cluster_estimates_remain_accurate() {
        let samples = 100_000_000u64;
        let r = run_mixed_pi(&MixedEnvFactory::half(), samples, 4);
        let inside = r.kv.iter().find(|&&(k, _)| k == 0).unwrap().1;
        let total = r.kv.iter().find(|&&(k, _)| k == 1).unwrap().1;
        assert_eq!(total, samples);
        let pi = 4.0 * inside as f64 / total as f64;
        assert!((pi - std::f64::consts::PI).abs() < 1e-3, "{pi}");
    }
}
