//! Energy accounting — the paper's §V second open issue, implemented.
//!
//! The paper conjectures that although data-intensive jobs gain *no time*
//! from accelerators (the feed path hides them), they should still gain
//! *energy*: the same kernel work finishes in far less busy time on
//! silicon that is more efficient per byte, and "doing that work in shorter
//! time, more efficiently and with specially designed hardware can save
//! energy, very specially in distributed environments composed of
//! thousands of nodes."
//!
//! The model is deliberately simple and era-appropriate: every worker burns
//! a baseline (chassis, DRAM, NIC, disks), and the engine running a map
//! kernel adds an active-power increment for exactly its busy time. Numbers
//! follow published QS22/JS22 figures (a QS22 blade idles near 200 W and
//! peaks near 330 W; one busy Cell accounts for ~90 W of the difference,
//! a busy PPE thread pair for ~35 W).

use accelmr_des::SimDuration;
use accelmr_mapred::JobResult;

/// Active-power increments and baseline of one worker blade.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Blade baseline draw (everything powered, engines idle), watts.
    pub node_baseline_w: f64,
    /// Extra draw while the PPE runs a scalar map kernel, watts.
    pub ppe_busy_w: f64,
    /// Extra draw while the Cell's SPE array runs an offloaded kernel,
    /// watts.
    pub cell_busy_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            node_baseline_w: 200.0,
            ppe_busy_w: 35.0,
            cell_busy_w: 90.0,
        }
    }
}

/// Which engine's active power applies to a job's compute time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineClass {
    /// Scalar kernel on the PPE (Java mapper).
    PpeScalar,
    /// SPE-offloaded kernel (Cell mapper).
    CellSpe,
    /// No kernel (EmptyMapper).
    None,
}

/// Energy breakdown of one job across the cluster.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// Joules attributable to the map kernels (active increments).
    pub kernel_joules: f64,
    /// Joules of node baseline over the job's wall time.
    pub baseline_joules: f64,
    /// Total.
    pub total_joules: f64,
    /// Job wall time used for the baseline integral.
    pub elapsed: SimDuration,
}

impl EnergyReport {
    /// Kilowatt-hours, for readability at cluster scale.
    pub fn total_kwh(&self) -> f64 {
        self.total_joules / 3.6e6
    }
}

/// Computes the energy of a completed job.
///
/// Kernel busy time comes from the runtime's per-task compute accounting
/// (`TaskMetrics::compute`, summed into `task_times`-adjacent aggregates);
/// here we integrate the per-task `compute` totals reported per attempt:
/// the `JobResult` exposes them as the sum over successful attempts via
/// `bytes_read`-independent metrics, so we take the kernel-busy integral
/// directly from the result's task metrics sum.
pub fn job_energy(
    model: &EnergyModel,
    result: &JobResult,
    engine: EngineClass,
    nodes: usize,
    kernel_busy: SimDuration,
) -> EnergyReport {
    let active_w = match engine {
        EngineClass::PpeScalar => model.ppe_busy_w,
        EngineClass::CellSpe => model.cell_busy_w,
        EngineClass::None => 0.0,
    };
    let kernel_joules = active_w * kernel_busy.as_secs_f64();
    let baseline_joules = model.node_baseline_w * nodes as f64 * result.elapsed.as_secs_f64();
    EnergyReport {
        kernel_joules,
        baseline_joules,
        total_joules: kernel_joules + baseline_joules,
        elapsed: result.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::dist::{run_encrypt_job, AesMapper};
    use accelmr_kernels::cost::{self, Engine};
    use accelmr_mapred::MrConfig;

    /// The paper's §V conjecture, realized: same job time, less kernel
    /// energy with the accelerator.
    #[test]
    fn data_intensive_jobs_save_kernel_energy_not_time() {
        let mr = MrConfig::default();
        let nodes = 4;
        let bytes = 8u64 << 30;
        let model = EnergyModel::default();

        let java = run_encrypt_job(1, nodes, bytes, AesMapper::Java, &mr);
        let cell = run_encrypt_job(2, nodes, bytes, AesMapper::Cell, &mr);

        // Times coincide (feed-bound — Figures 4/5).
        let time_ratio = java.elapsed.as_secs_f64() / cell.elapsed.as_secs_f64();
        assert!((0.85..1.2).contains(&time_ratio), "{time_ratio}");

        // Kernel busy time: bytes / engine bandwidth.
        let java_busy =
            SimDuration::from_secs_f64(bytes as f64 / cost::aes_bandwidth(Engine::JavaPpeTask));
        let cell_busy =
            SimDuration::from_secs_f64(bytes as f64 / (8.0 * cost::aes_bandwidth(Engine::SpeSimd)));

        let e_java = job_energy(&model, &java, EngineClass::PpeScalar, nodes, java_busy);
        let e_cell = job_energy(&model, &cell, EngineClass::CellSpe, nodes, cell_busy);

        // The accelerated kernel burns an order of magnitude less energy
        // on the compute itself...
        assert!(
            e_java.kernel_joules > 10.0 * e_cell.kernel_joules,
            "java {} J vs cell {} J",
            e_java.kernel_joules,
            e_cell.kernel_joules
        );
        // ...though at 2009 baselines the blade draw dominates the total —
        // exactly why the paper points at energy proportionality as the
        // lever for "thousands of nodes".
        assert!(e_java.baseline_joules > e_java.kernel_joules);
        assert!(e_cell.total_joules < e_java.total_joules);
    }

    #[test]
    fn empty_engine_has_no_kernel_energy() {
        let mr = MrConfig::default();
        let empty = run_encrypt_job(3, 2, 1 << 30, AesMapper::Empty, &mr);
        let e = job_energy(
            &EnergyModel::default(),
            &empty,
            EngineClass::None,
            2,
            SimDuration::from_secs(100),
        );
        assert_eq!(e.kernel_joules, 0.0);
        assert!(e.total_joules > 0.0);
        assert!((e.total_kwh() - e.total_joules / 3.6e6).abs() < 1e-12);
    }
}
