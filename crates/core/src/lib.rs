//! # accelmr-hybrid — the paper's two-level MapReduce execution environment
//!
//! This crate is the reproduction of the paper's contribution (its
//! Figure 1): a Hadoop-like distributed runtime whose `map()` invocations
//! call through a JNI-like native bridge into node-level Cell BE runtimes,
//! exploiting both cluster-level and intra-node parallelism transparently.
//!
//! Layers glued together here:
//!
//! * [`mod@env`] — per-node accelerator state ([`CellNodeEnv`]): Cell machines
//!   whose SPU contexts stay warm across map tasks, plus a
//!   MapReduce-for-Cell framework instance;
//! * [`bridge`] — the JNI call-cost model;
//! * [`kernels`] — one map kernel per paper configuration (Java scalar /
//!   direct Cell / Cell framework / Empty, for both AES and Pi workloads);
//! * [`experiments`] — a runner per paper figure (2, 4, 5, 6, 7, 8) plus
//!   the Terasort-style feed-rate experiment, each regenerating the
//!   corresponding series;
//! * [`presets`] — ready-to-submit `JobBuilder`s for the paper's Pi,
//!   AES-encrypt, and Terasort workloads;
//! * [`energy`], [`hetero`] — two of the paper's §V open issues,
//!   implemented: per-job energy accounting (accelerators save kernel
//!   energy on feed-bound jobs even when they save no time) and mixed
//!   clusters where only a fraction of nodes carry accelerators (adaptive
//!   kernels + the straggler effect the paper anticipated).

pub mod bridge;
pub mod energy;
pub mod env;
pub mod experiments;
pub mod hetero;
pub mod kernels;
pub mod presets;

pub use bridge::JniBridge;
pub use energy::{job_energy, EnergyModel, EnergyReport, EngineClass};
pub use env::{CellEnvFactory, CellNodeEnv};
pub use hetero::{AdaptiveAesKernel, AdaptivePiKernel, MixedEnvFactory};
pub use kernels::{
    job_key, CellAesKernel, CellMrAesKernel, CellPiKernel, EmptyKernel, JavaAesKernel,
    JavaPiKernel, JOB_NONCE,
};
pub use presets::{AesMapper, PiMapper};
