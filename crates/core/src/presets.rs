//! Job presets for the paper's workloads.
//!
//! Each preset returns a ready-to-submit [`JobBuilder`] wired with the
//! paper's kernel, input shape, and reduce phase — Pi estimation
//! (CPU-intensive), AES-CTR encryption (data-intensive), and the
//! Terasort-style sort (shuffle-heavy). Builders stay open for further
//! tweaking before submission:
//!
//! ```
//! use accelmr_hybrid::{presets, CellEnvFactory};
//! use accelmr_hybrid::presets::PiMapper;
//! use accelmr_mapred::ClusterBuilder;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .seed(42)
//!     .workers(4)
//!     .env(CellEnvFactory::default())
//!     .deploy();
//! let mut session = cluster.session();
//! let job = session.submit(presets::pi(PiMapper::Cell, 7, 10_000_000));
//! session.run_until_complete();
//! let pi = presets::pi_estimate(&job.result()).unwrap();
//! assert!((pi - std::f64::consts::PI).abs() < 0.01);
//! ```
//!
//! Because presets return open builders, multi-tenant batches compose by
//! chaining the fairness setters — tenant, weight, deadline — before
//! submission (consumed by the job-level `FairShare` / `DeadlineSlack`
//! policies):
//!
//! ```
//! use accelmr_des::{SimDuration, SimTime};
//! use accelmr_hybrid::presets::{self, PiMapper};
//!
//! let urgent = presets::pi(PiMapper::Cell, 7, 10_000_000)
//!     .tenant("interactive")
//!     .weight(2.0)
//!     .deadline_at(SimTime::ZERO + SimDuration::from_secs(90));
//! let bulk = presets::terasort("/gray", 1 << 30, 8).tenant("batch");
//! # let _ = (urgent, bulk);
//! ```

use std::sync::Arc;

use accelmr_des::SimDuration;
use accelmr_kernels::cost::{self, Engine};
use accelmr_mapred::{
    JobBuilder, JobResult, NodeEnv, OutputSink, PreloadSpec, RecordCtx, RecordOutcome,
    ReduceKernel, SumReducer, TaskKernel,
};

use crate::kernels::{CellAesKernel, CellPiKernel, EmptyKernel, JavaAesKernel, JavaPiKernel};

/// One DFS block, the paper's record granularity for data jobs (64 MB).
pub const RECORD_BYTES: u64 = 64 << 20;

/// Which mapper configuration runs an encryption job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AesMapper {
    /// Pure-Java mapper on the PPE.
    Java,
    /// Cell-accelerated mapper through the direct SPE library.
    Cell,
    /// EmptyMapper: reads data, computes and emits nothing.
    Empty,
}

impl AesMapper {
    /// The map kernel this configuration runs.
    pub fn kernel(self) -> Arc<dyn TaskKernel> {
        match self {
            AesMapper::Java => Arc::new(JavaAesKernel::new()),
            AesMapper::Cell => Arc::new(CellAesKernel::new()),
            AesMapper::Empty => Arc::new(EmptyKernel),
        }
    }

    /// Legend label, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AesMapper::Java => "Java Mapper",
            AesMapper::Cell => "Cell BE Mapper",
            AesMapper::Empty => "Empty Mapper",
        }
    }

    /// Where this configuration routes map output (EmptyMapper discards).
    pub fn output(self) -> OutputSink {
        match self {
            AesMapper::Empty => OutputSink::Discard,
            _ => OutputSink::Dfs {
                path: "/out".into(),
                replication: Some(1),
            },
        }
    }
}

/// Which mapper configuration runs a Pi job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PiMapper {
    /// Pure-Java PiEstimator port.
    Java,
    /// Cell-accelerated sampler.
    Cell,
}

impl PiMapper {
    /// The map kernel this configuration runs, sampling from `seed`.
    pub fn kernel(self, seed: u64) -> Arc<dyn TaskKernel> {
        match self {
            PiMapper::Java => Arc::new(JavaPiKernel::new(seed)),
            PiMapper::Cell => Arc::new(CellPiKernel::new(seed)),
        }
    }

    /// Legend label, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PiMapper::Java => "Java Mapper",
            PiMapper::Cell => "Cell BE Mapper",
        }
    }
}

/// Monte Carlo Pi estimation (the paper's CPU-intensive workload):
/// `samples` synthetic units, RPC-aggregated `(inside, total)` counts.
/// Defaults to one map task per slot; override with
/// [`JobBuilder::map_tasks`].
pub fn pi(mapper: PiMapper, kernel_seed: u64, samples: u64) -> JobBuilder {
    JobBuilder::new(format!("pi-{}", mapper.label()))
        .synthetic(samples)
        .kernel_arc(mapper.kernel(kernel_seed))
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        })
}

/// Extracts the Pi estimate from a [`pi`] job's aggregated counters:
/// key 0 = samples inside the quarter circle, key 1 = total samples.
pub fn pi_estimate(result: &JobResult) -> Option<f64> {
    let inside = result.value(0)?;
    let total = result.value(1)?;
    (total > 0).then(|| 4.0 * inside as f64 / total as f64)
}

/// Distributed AES-CTR encryption (the paper's data-intensive workload):
/// preloads `total_bytes` of input at `input_path` (64 MB blocks,
/// replication 1, as the paper's HDFS deployment), maps it in 64 MB
/// records, and writes ciphertext back unless the mapper is
/// [`AesMapper::Empty`].
pub fn encrypt(mapper: AesMapper, input_path: &str, total_bytes: u64) -> JobBuilder {
    encrypt_seeded(mapper, input_path, total_bytes, 7)
}

/// [`encrypt`] with an explicit input-content seed.
pub fn encrypt_seeded(
    mapper: AesMapper,
    input_path: &str,
    total_bytes: u64,
    content_seed: u64,
) -> JobBuilder {
    JobBuilder::new(format!("encrypt-{}", mapper.label()))
        .input_file(input_path)
        .record_bytes(RECORD_BYTES)
        .kernel_arc(mapper.kernel())
        .output(mapper.output())
        .preload(
            PreloadSpec::new(input_path, total_bytes, content_seed)
                .block_size(RECORD_BYTES)
                .replication(1),
        )
}

/// Map-side sort kernel: radix-sorts each record into a run (modeled on the
/// task-JVM engine; the paper's Terasort observation is engine-independent).
#[derive(Clone, Copy, Debug)]
pub struct SortMapKernel;

impl TaskKernel for SortMapKernel {
    fn name(&self) -> &'static str {
        "terasort-map"
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome {
            compute: cost::sort_time(Engine::JavaPpeTask, rec.len),
            output_bytes: rec.len,
            output: None,
            digest: rec.bytes.map(accelmr_kernels::checksum).unwrap_or(0),
            kv: vec![(0, rec.len)],
        }
    }
}

/// Reduce-side merge kernel.
#[derive(Clone, Copy, Debug)]
pub struct MergeReduceKernel;

impl ReduceKernel for MergeReduceKernel {
    fn name(&self) -> &'static str {
        "terasort-merge"
    }

    fn reduce_time(&self, bytes: u64, _pairs: u64) -> SimDuration {
        // k-way merge touches each byte once.
        cost::sort_time(Engine::JavaPpeTask, bytes / 2)
    }

    fn aggregate(&self, pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let total: u64 = pairs.iter().map(|&(_, v)| v).sum();
        vec![(0, total)]
    }
}

/// Terasort-style sort (identity map + full shuffle + merging reducers):
/// preloads `total_bytes` at `input_path`, sorts it through `reducers`
/// reduce tasks, and writes the merged partitions back to the DFS.
pub fn terasort(input_path: &str, total_bytes: u64, reducers: usize) -> JobBuilder {
    terasort_replicated(input_path, total_bytes, reducers, 1)
}

/// [`terasort`] with an explicit input replication factor. The paper ran
/// replication 1; elastic clusters want ≥ 2 so departing nodes lose no
/// input — surviving replicas serve reads immediately and the NameNode
/// re-replicates the shortfall in the background.
pub fn terasort_replicated(
    input_path: &str,
    total_bytes: u64,
    reducers: usize,
    replication: usize,
) -> JobBuilder {
    JobBuilder::new("terasort")
        .input_file(input_path)
        .record_bytes(RECORD_BYTES)
        .kernel(SortMapKernel)
        .digest_output()
        .shuffle(reducers, MergeReduceKernel, true)
        .preload(
            PreloadSpec::new(input_path, total_bytes, 13)
                .block_size(RECORD_BYTES)
                .replication(replication),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelmr_mapred::{JobInput, ReduceSpec};

    #[test]
    fn pi_preset_shape() {
        let req = pi(PiMapper::Cell, 3, 1000).map_tasks(4).request();
        assert_eq!(req.spec.name, "pi-Cell BE Mapper");
        assert!(matches!(
            req.spec.input,
            JobInput::Synthetic { total_units: 1000 }
        ));
        assert!(matches!(req.spec.reduce, ReduceSpec::RpcAggregate { .. }));
        assert!(req.preloads.is_empty());
    }

    #[test]
    fn encrypt_preset_carries_preload() {
        let req = encrypt(AesMapper::Java, "/input", 1 << 30).request();
        assert_eq!(req.preloads.len(), 1);
        assert_eq!(req.preloads[0].path, "/input");
        assert_eq!(req.preloads[0].len, 1 << 30);
        assert_eq!(req.preloads[0].block_size, Some(RECORD_BYTES));
        match &req.spec.output {
            OutputSink::Dfs { path, .. } => assert_eq!(path, "/out"),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn empty_mapper_discards() {
        let req = encrypt(AesMapper::Empty, "/input", 1 << 20).request();
        assert_eq!(req.spec.output, OutputSink::Discard);
    }

    #[test]
    fn terasort_preset_shuffles() {
        let req = terasort("/tera-in", 1 << 30, 4).request();
        assert!(matches!(
            req.spec.reduce,
            ReduceSpec::Shuffle {
                reducers: 4,
                write_output: true,
                ..
            }
        ));
        assert_eq!(req.preloads[0].replication, Some(1));
    }

    #[test]
    fn terasort_replicated_sets_input_replication() {
        let req = terasort_replicated("/tera-in", 1 << 30, 4, 3).request();
        assert_eq!(req.preloads[0].replication, Some(3));
    }
}
