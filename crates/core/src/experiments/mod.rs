//! Experiment runners — one per figure of the paper's evaluation.
//!
//! Each runner takes a parameter struct (defaults = the paper's setup,
//! shrinkable for fast tests), executes the corresponding simulation(s), and
//! returns a [`Figure`] holding the same series the paper plots. Binaries in
//! `accelmr-bench` print them as aligned tables.

pub mod dist;
pub mod single_node;
pub mod terasort;

pub use dist::{fig4, fig5, fig7, fig8, DistEncryptParams, DistPiParams};
pub use single_node::{fig2, fig6, Fig2Params, Fig6Params};
pub use terasort::{terasort_feed_rate, TerasortParams};

/// One plotted series: `(x, y)` points under a legend label.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label, matching the paper's.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper figure id, e.g. `"fig2"`.
    pub id: &'static str,
    /// Title (the paper's caption).
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as an aligned text table (x column + one column
    /// per series), the format the bench binaries print.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let mut header = format!("{:>16}", self.x_label);
        for s in &self.series {
            header.push_str(&format!(" {:>22}", s.label));
        }
        let _ = writeln!(out, "{header}");
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = format!("{x:>16.4e}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => row.push_str(&format!(" {y:>22.4}")),
                    None => row.push_str(&format!(" {:>22}", "-")),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Looks up a series by label (tests).
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_series() {
        let fig = Figure {
            id: "figX",
            title: "test".into(),
            x_label: "nodes".into(),
            y_label: "time (s)".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(1.0, 2.0), (2.0, 3.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(1.0, 5.0)],
                },
            ],
        };
        let t = fig.to_table();
        assert!(t.contains("figX"));
        assert!(t.contains('a'));
        assert!(t.lines().count() >= 5);
        assert!(fig.series("a").is_some());
        assert!(fig.series("zzz").is_none());
    }
}
