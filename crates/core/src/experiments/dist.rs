//! Distributed experiments — Figures 4, 5 (encryption) and 7, 8 (Pi).
//!
//! Every data point deploys a fresh simulated cluster (fabric + DFS +
//! MapReduce + per-node Cell environments), preloads input where needed,
//! runs the job and reports its wall time. Data is virtual (timing-only) at
//! these scales; functional equivalence is covered by the materialized
//! integration tests.

use accelmr_mapred::{ClusterBuilder, JobResult, MrConfig};

use super::{Figure, Series};
use crate::env::CellEnvFactory;
use crate::presets::{self, pi_estimate};

pub use crate::presets::{AesMapper, PiMapper};

const GB: u64 = 1 << 30;

/// Runs one distributed encryption job and returns its result.
pub fn run_encrypt_job(
    seed: u64,
    nodes: usize,
    total_bytes: u64,
    mapper: AesMapper,
    mr_cfg: &MrConfig,
) -> JobResult {
    let mut c = ClusterBuilder::new()
        .seed(seed)
        .workers(nodes)
        .mr(mr_cfg.clone())
        .env(CellEnvFactory::default())
        .deploy();
    let job = presets::encrypt(mapper, "/input", total_bytes)
        .map_tasks(nodes * mr_cfg.map_slots_per_node);
    let mut session = c.session();
    session.submit(job);
    session.run()
}

/// Parameters of the Figure 4 sweep (proportional data set).
#[derive(Clone, Debug)]
pub struct DistEncryptParams {
    /// Cluster sizes (paper Fig. 4: 12..60; Fig. 5: 4..64).
    pub nodes: Vec<usize>,
    /// Fig. 4: input GB per mapper.
    pub gb_per_mapper: u64,
    /// Fig. 5: fixed total input GB.
    pub total_gb: u64,
    /// Runtime configuration.
    pub mr_cfg: MrConfig,
}

impl Default for DistEncryptParams {
    fn default() -> Self {
        DistEncryptParams {
            nodes: vec![12, 24, 36, 48, 60],
            gb_per_mapper: 1,
            total_gb: 120,
            mr_cfg: MrConfig::default(),
        }
    }
}

/// Figure 4 — "Distributed encryption performance: proportional data set":
/// input grows with the cluster (1 GB per mapper, 2 mappers per node);
/// Java vs Cell mappers. The paper's observation: the two coincide because
/// the record feed path, not the kernel, is the bottleneck.
pub fn fig4(params: &DistEncryptParams) -> Figure {
    let mut series: Vec<Series> = [AesMapper::Java, AesMapper::Cell]
        .iter()
        .map(|m| Series {
            label: m.label().into(),
            points: Vec::new(),
        })
        .collect();
    for &n in &params.nodes {
        let mappers = n as u64 * params.mr_cfg.map_slots_per_node as u64;
        let bytes = mappers * params.gb_per_mapper * GB;
        for (i, &mapper) in [AesMapper::Java, AesMapper::Cell].iter().enumerate() {
            let result = run_encrypt_job(1000 + n as u64, n, bytes, mapper, &params.mr_cfg);
            assert!(result.succeeded, "fig4 job failed at {n} nodes");
            series[i]
                .points
                .push((n as f64, result.elapsed.as_secs_f64()));
        }
    }
    Figure {
        id: "fig4",
        title: "Distributed encryption performance: proportional data set".into(),
        x_label: "Nodes".into(),
        y_label: "Time(s)".into(),
        series,
    }
}

/// Figure 5 — "Distributed encryption performance: 120GB data set": fixed
/// input, growing cluster; Empty vs Java vs Cell mappers, log-log.
pub fn fig5(params: &DistEncryptParams) -> Figure {
    let mappers = [AesMapper::Empty, AesMapper::Java, AesMapper::Cell];
    let mut series: Vec<Series> = mappers
        .iter()
        .map(|m| Series {
            label: m.label().into(),
            points: Vec::new(),
        })
        .collect();
    let bytes = params.total_gb * GB;
    for &n in &params.nodes {
        for (i, &mapper) in mappers.iter().enumerate() {
            let result = run_encrypt_job(2000 + n as u64, n, bytes, mapper, &params.mr_cfg);
            assert!(result.succeeded, "fig5 job failed at {n} nodes");
            series[i]
                .points
                .push((n as f64, result.elapsed.as_secs_f64()));
        }
    }
    Figure {
        id: "fig5",
        title: "Distributed encryption performance: 120GB data set".into(),
        x_label: "Nodes".into(),
        y_label: "Time(s)".into(),
        series,
    }
}

/// Runs one distributed Pi job and returns `(result, pi estimate)`.
pub fn run_pi_job(
    seed: u64,
    nodes: usize,
    samples: u64,
    mapper: PiMapper,
    mr_cfg: &MrConfig,
) -> (JobResult, f64) {
    let mut c = ClusterBuilder::new()
        .seed(seed)
        .workers(nodes)
        .mr(mr_cfg.clone())
        .env(CellEnvFactory::default())
        .deploy();
    let job = presets::pi(mapper, seed, samples).map_tasks(nodes * mr_cfg.map_slots_per_node);
    let mut session = c.session();
    session.submit(job);
    let result = session.run();
    let pi = pi_estimate(&result).unwrap_or(f64::NAN);
    (result, pi)
}

/// Parameters of the Figure 7/8 sweeps.
#[derive(Clone, Debug)]
pub struct DistPiParams {
    /// Fig. 7: fixed cluster size.
    pub fig7_nodes: usize,
    /// Fig. 7: sample counts swept.
    pub fig7_samples: Vec<u64>,
    /// Fig. 8: cluster sizes swept.
    pub fig8_nodes: Vec<usize>,
    /// Fig. 8: base sample count.
    pub fig8_samples: u64,
    /// Fig. 8: the "10x samples" Cell rerun.
    pub fig8_tenx: u64,
    /// Runtime configuration.
    pub mr_cfg: MrConfig,
}

impl Default for DistPiParams {
    fn default() -> Self {
        DistPiParams {
            fig7_nodes: 50,
            fig7_samples: (3..=12).map(|e| 3 * 10u64.pow(e)).collect(),
            fig8_nodes: vec![4, 8, 16, 32, 64],
            fig8_samples: 100_000_000_000,
            fig8_tenx: 1_000_000_000_000,
            mr_cfg: MrConfig::default(),
        }
    }
}

/// Figure 7 — "Distributed Pi estimation performance: 50 nodes": job time
/// vs sample count. Both mappers share the Hadoop floor at small N; the
/// Java mapper leaves the floor ~2 decades of N before the Cell mapper.
pub fn fig7(params: &DistPiParams) -> Figure {
    let mut series: Vec<Series> = [PiMapper::Java, PiMapper::Cell]
        .iter()
        .map(|m| Series {
            label: m.label().into(),
            points: Vec::new(),
        })
        .collect();
    for &samples in &params.fig7_samples {
        for (i, &mapper) in [PiMapper::Java, PiMapper::Cell].iter().enumerate() {
            let (result, _) = run_pi_job(
                3000 + samples % 997,
                params.fig7_nodes,
                samples,
                mapper,
                &params.mr_cfg,
            );
            assert!(result.succeeded);
            series[i]
                .points
                .push((samples as f64, result.elapsed.as_secs_f64()));
        }
    }
    Figure {
        id: "fig7",
        title: format!(
            "Distributed Pi estimation performance: {} nodes",
            params.fig7_nodes
        ),
        x_label: "Samples".into(),
        y_label: "Time(s)".into(),
        series,
    }
}

/// Figure 8 — "Distributed Pi estimation performance: 1e11 samples": job
/// time vs cluster size for Java, Cell, and Cell with 10× the samples.
pub fn fig8(params: &DistPiParams) -> Figure {
    let mut java = Series {
        label: "Java Mapper".into(),
        points: Vec::new(),
    };
    let mut cell = Series {
        label: "Cell BE Mapper".into(),
        points: Vec::new(),
    };
    let mut cell10 = Series {
        label: "Cell BE Mapper (10x samples)".into(),
        points: Vec::new(),
    };
    for &n in &params.fig8_nodes {
        let (r_java, _) = run_pi_job(
            4000 + n as u64,
            n,
            params.fig8_samples,
            PiMapper::Java,
            &params.mr_cfg,
        );
        let (r_cell, _) = run_pi_job(
            5000 + n as u64,
            n,
            params.fig8_samples,
            PiMapper::Cell,
            &params.mr_cfg,
        );
        let (r_10x, _) = run_pi_job(
            6000 + n as u64,
            n,
            params.fig8_tenx,
            PiMapper::Cell,
            &params.mr_cfg,
        );
        java.points.push((n as f64, r_java.elapsed.as_secs_f64()));
        cell.points.push((n as f64, r_cell.elapsed.as_secs_f64()));
        cell10.points.push((n as f64, r_10x.elapsed.as_secs_f64()));
    }
    Figure {
        id: "fig8",
        title: "Distributed Pi estimation performance: 1e11 samples".into(),
        x_label: "Nodes".into(),
        y_label: "Time(s)".into(),
        series: vec![cell, java, cell10],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mr() -> MrConfig {
        MrConfig::default()
    }

    #[test]
    fn encryption_feed_bound_java_equals_cell() {
        // Scaled-down Fig. 4 point: 4 nodes, 256 MB per mapper.
        let mr = small_mr();
        let bytes = 8 * 256 * (1u64 << 20);
        let java = run_encrypt_job(1, 4, bytes, AesMapper::Java, &mr);
        let cell = run_encrypt_job(2, 4, bytes, AesMapper::Cell, &mr);
        let ratio = java.elapsed.as_secs_f64() / cell.elapsed.as_secs_f64();
        assert!(
            (0.85..1.25).contains(&ratio),
            "Java {} vs Cell {} (ratio {ratio:.2})",
            java.elapsed,
            cell.elapsed
        );
    }

    #[test]
    fn empty_mapper_close_to_real_mappers() {
        let mr = small_mr();
        let bytes = 8 * 256 * (1u64 << 20);
        let empty = run_encrypt_job(3, 4, bytes, AesMapper::Empty, &mr);
        let java = run_encrypt_job(4, 4, bytes, AesMapper::Java, &mr);
        // "the difference ... is really small"
        let gap = java.elapsed.as_secs_f64() / empty.elapsed.as_secs_f64();
        assert!((0.9..1.3).contains(&gap), "gap {gap:.2}");
    }

    #[test]
    fn pi_cell_crushes_java_at_scale() {
        let mr = small_mr();
        let samples = 2_000_000_000u64; // enough to dwarf the floor
        let (java, pi_j) = run_pi_job(5, 4, samples, PiMapper::Java, &mr);
        let (cell, pi_c) = run_pi_job(6, 4, samples, PiMapper::Cell, &mr);
        let speedup = java.elapsed.as_secs_f64() / cell.elapsed.as_secs_f64();
        assert!(speedup > 10.0, "speedup {speedup:.1}");
        for pi in [pi_j, pi_c] {
            assert!((pi - std::f64::consts::PI).abs() < 1e-3, "pi {pi}");
        }
    }

    #[test]
    fn pi_small_jobs_sit_on_the_floor() {
        let mr = small_mr();
        let (java, _) = run_pi_job(7, 4, 10_000, PiMapper::Java, &mr);
        let (cell, _) = run_pi_job(8, 4, 10_000, PiMapper::Cell, &mr);
        // Both runtime-bound; Cell pays SPU context creation, so it is the
        // slower of the two at tiny N (Fig. 7's left edge).
        let ratio = cell.elapsed.as_secs_f64() / java.elapsed.as_secs_f64();
        assert!((0.95..1.5).contains(&ratio), "ratio {ratio:.2}");
        assert!(java.elapsed.as_secs_f64() < 60.0);
    }
}
