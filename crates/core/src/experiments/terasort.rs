//! The Terasort-style feed-rate experiment.
//!
//! The paper closes §IV-A by observing that even the winning Terabyte Sort
//! entry moved only ~5.5 MB/s per node (0.6 MB/s per core), concluding the
//! mapper feed path limits all data-intensive MapReduce jobs, not just
//! encryption. This experiment reproduces that observation on our stack: a
//! full sort job (map: sort runs locally; shuffle; reduce: merge + write)
//! whose per-node throughput lands in single-digit MB/s regardless of the
//! sort kernel's speed.

use accelmr_mapred::{ClusterBuilder, MrConfig};

use super::{Figure, Series};
use crate::env::CellEnvFactory;
use crate::presets;

pub use crate::presets::{MergeReduceKernel, SortMapKernel};

/// Parameters of the Terasort experiment.
#[derive(Clone, Debug)]
pub struct TerasortParams {
    /// Cluster sizes swept.
    pub nodes: Vec<usize>,
    /// Input GB per node (keeps per-node work constant across the sweep).
    pub gb_per_node: u64,
    /// Runtime configuration.
    pub mr_cfg: MrConfig,
}

impl Default for TerasortParams {
    fn default() -> Self {
        TerasortParams {
            nodes: vec![4, 8, 16],
            gb_per_node: 1,
            mr_cfg: MrConfig::default(),
        }
    }
}

/// Runs the sweep and reports per-node sorting rate (MB/s/node) — the
/// paper's metric for the Terabyte Sort discussion.
pub fn terasort_feed_rate(params: &TerasortParams) -> Figure {
    let mut rate = Series {
        label: "per-node sort rate".into(),
        points: Vec::new(),
    };
    for &n in &params.nodes {
        let bytes = n as u64 * params.gb_per_node * (1 << 30);
        let mut c = ClusterBuilder::new()
            .seed(9000 + n as u64)
            .workers(n)
            .mr(params.mr_cfg.clone())
            .env(CellEnvFactory::default())
            .deploy();
        let mut session = c.session();
        session.submit(
            presets::terasort("/tera-in", bytes, n).map_tasks(n * params.mr_cfg.map_slots_per_node),
        );
        let result = session.run();
        assert!(result.succeeded, "terasort failed at {n} nodes");
        let mbps_per_node = bytes as f64 / 1e6 / result.elapsed.as_secs_f64() / n as f64;
        rate.points.push((n as f64, mbps_per_node));
    }
    Figure {
        id: "terasort",
        title: "Terasort-style per-node sorting rate".into(),
        x_label: "Nodes".into(),
        y_label: "MB/s per node".into(),
        series: vec![rate],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_rate_is_single_digit_mbps() {
        let fig = terasort_feed_rate(&TerasortParams {
            nodes: vec![4],
            gb_per_node: 1,
            mr_cfg: MrConfig::default(),
        });
        let (_, rate) = fig.series[0].points[0];
        // The paper's observation: ~5.5 MB/s/node, far below what the sort
        // kernel could do; accept a generous band around it.
        assert!((2.0..14.0).contains(&rate), "rate {rate}");
    }
}
