//! The Terasort-style feed-rate experiment.
//!
//! The paper closes §IV-A by observing that even the winning Terabyte Sort
//! entry moved only ~5.5 MB/s per node (0.6 MB/s per core), concluding the
//! mapper feed path limits all data-intensive MapReduce jobs, not just
//! encryption. This experiment reproduces that observation on our stack: a
//! full sort job (map: sort runs locally; shuffle; reduce: merge + write)
//! whose per-node throughput lands in single-digit MB/s regardless of the
//! sort kernel's speed.

use std::sync::Arc;

use accelmr_des::SimDuration;
use accelmr_dfs::DfsConfig;
use accelmr_kernels::cost::{self, Engine};
use accelmr_mapred::{
    deploy_cluster, run_job, JobInput, JobSpec, MrConfig, NodeEnv, OutputSink, PreloadSpec,
    RecordCtx, RecordOutcome, ReduceKernel, ReduceSpec, TaskKernel,
};
use accelmr_net::NetConfig;

use super::{Figure, Series};
use crate::env::CellEnvFactory;

/// Map-side sort kernel: radix-sorts each record into a run (modeled on the
/// task-JVM engine; the paper's Terasort observation is engine-independent).
#[derive(Clone, Copy, Debug)]
pub struct SortMapKernel;

impl TaskKernel for SortMapKernel {
    fn name(&self) -> &'static str {
        "terasort-map"
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        RecordOutcome {
            compute: cost::sort_time(Engine::JavaPpeTask, rec.len),
            output_bytes: rec.len,
            output: None,
            digest: rec.bytes.map(accelmr_kernels::checksum).unwrap_or(0),
            kv: vec![(0, rec.len)],
        }
    }
}

/// Reduce-side merge kernel.
#[derive(Clone, Copy, Debug)]
pub struct MergeReduceKernel;

impl ReduceKernel for MergeReduceKernel {
    fn name(&self) -> &'static str {
        "terasort-merge"
    }

    fn reduce_time(&self, bytes: u64, _pairs: u64) -> SimDuration {
        // k-way merge touches each byte once.
        cost::sort_time(Engine::JavaPpeTask, bytes / 2)
    }

    fn aggregate(&self, pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let total: u64 = pairs.iter().map(|&(_, v)| v).sum();
        vec![(0, total)]
    }
}

/// Parameters of the Terasort experiment.
#[derive(Clone, Debug)]
pub struct TerasortParams {
    /// Cluster sizes swept.
    pub nodes: Vec<usize>,
    /// Input GB per node (keeps per-node work constant across the sweep).
    pub gb_per_node: u64,
    /// Runtime configuration.
    pub mr_cfg: MrConfig,
}

impl Default for TerasortParams {
    fn default() -> Self {
        TerasortParams {
            nodes: vec![4, 8, 16],
            gb_per_node: 1,
            mr_cfg: MrConfig::default(),
        }
    }
}

/// Runs the sweep and reports per-node sorting rate (MB/s/node) — the
/// paper's metric for the Terabyte Sort discussion.
pub fn terasort_feed_rate(params: &TerasortParams) -> Figure {
    let mut rate = Series {
        label: "per-node sort rate".into(),
        points: Vec::new(),
    };
    for &n in &params.nodes {
        let bytes = n as u64 * params.gb_per_node * (1 << 30);
        let env = CellEnvFactory::default();
        let mut c = deploy_cluster(
            9000 + n as u64,
            n,
            NetConfig::default(),
            DfsConfig::default(),
            params.mr_cfg.clone(),
            &env,
            false,
        );
        let preload = PreloadSpec {
            path: "/tera-in".into(),
            len: bytes,
            block_size: Some(64 << 20),
            replication: Some(1),
            seed: 13,
        };
        let spec = JobSpec {
            name: "terasort".into(),
            input: JobInput::File {
                path: "/tera-in".into(),
                record_bytes: Some(64 << 20),
            },
            kernel: Arc::new(SortMapKernel),
            num_map_tasks: Some(n * params.mr_cfg.map_slots_per_node),
            output: OutputSink::Digest,
            reduce: ReduceSpec::Shuffle {
                reducers: n,
                reducer: Arc::new(MergeReduceKernel),
                write_output: true,
            },
        };
        let result = run_job(&mut c.sim, &c.mr, &c.dfs, vec![preload], spec);
        assert!(result.succeeded, "terasort failed at {n} nodes");
        let mbps_per_node = bytes as f64 / 1e6 / result.elapsed.as_secs_f64() / n as f64;
        rate.points.push((n as f64, mbps_per_node));
    }
    Figure {
        id: "terasort",
        title: "Terasort-style per-node sorting rate".into(),
        x_label: "Nodes".into(),
        y_label: "MB/s per node".into(),
        series: vec![rate],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_rate_is_single_digit_mbps() {
        let fig = terasort_feed_rate(&TerasortParams {
            nodes: vec![4],
            gb_per_node: 1,
            mr_cfg: MrConfig::default(),
        });
        let (_, rate) = fig.series[0].points[0];
        // The paper's observation: ~5.5 MB/s/node, far below what the sort
        // kernel could do; accept a generous band around it.
        assert!((2.0..14.0).contains(&rate), "rate {rate}");
    }
}
