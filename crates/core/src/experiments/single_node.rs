//! Single-node raw-performance experiments (no Hadoop involved):
//! Figure 2 (encryption bandwidth) and Figure 6 (Pi sampling rate).

use accelmr_cellbe::{AesCtrSpeKernel, CellConfig, CellMachine, DataInput, PiSpeKernel};
use accelmr_cellmr::{CellMrConfig, CellMrRuntime};
use accelmr_kernels::cost::{self, Engine};

use super::{Figure, Series};
use crate::kernels::{job_key, JOB_NONCE};

/// Parameters of the Figure 2 sweep.
#[derive(Clone, Debug)]
pub struct Fig2Params {
    /// Working-set sizes in MB (paper: 1..1024, powers of two).
    pub sizes_mb: Vec<u64>,
    /// SPU work-block size (paper: 4 KB).
    pub spu_block: usize,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            sizes_mb: (0..=10).map(|i| 1u64 << i).collect(),
            spu_block: 4096,
        }
    }
}

/// Figure 2 — "Raw node encryption performance": encryption bandwidth
/// (MB/s) vs working-set size for the four engine configurations. The
/// working set is memory-resident and machines are warmed first, matching
/// the paper's averaged repeated executions.
pub fn fig2(params: &Fig2Params) -> Figure {
    let key = job_key();
    let spu_kernel = AesCtrSpeKernel::new(key, JOB_NONCE);

    let mut cell = Series {
        label: "Cell BE".into(),
        points: Vec::new(),
    };
    let mut cellmr = Series {
        label: "MapReduce Cell".into(),
        points: Vec::new(),
    };
    let mut ppc = Series {
        label: "PPC".into(),
        points: Vec::new(),
    };
    let mut p6 = Series {
        label: "Power 6".into(),
        points: Vec::new(),
    };

    let mut machine = CellMachine::new(CellConfig::default(), false).expect("valid config");
    machine.warm_up();
    let mut framework = CellMrRuntime::new(CellConfig::default(), CellMrConfig::default(), false)
        .expect("valid config");
    framework.machine_mut().warm_up();

    for &mb in &params.sizes_mb {
        let bytes = mb << 20;
        let x = mb as f64;
        let to_mbps = |secs: f64| (bytes as f64 / 1e6) / secs;

        let report = machine
            .run_data(DataInput::Virtual(bytes), &spu_kernel, params.spu_block)
            .expect("valid run");
        cell.points.push((x, to_mbps(report.elapsed.as_secs_f64())));

        let (_, fw_report) = framework
            .run_map(DataInput::Virtual(bytes), &spu_kernel)
            .expect("valid run");
        cellmr
            .points
            .push((x, to_mbps(fw_report.total.as_secs_f64())));

        ppc.points.push((
            x,
            to_mbps(cost::aes_time(Engine::JavaPpe, bytes).as_secs_f64()),
        ));
        p6.points.push((
            x,
            to_mbps(cost::aes_time(Engine::JavaPower6, bytes).as_secs_f64()),
        ));
    }

    Figure {
        id: "fig2",
        title: "Raw node encryption performance".into(),
        x_label: "Size(MB)".into(),
        y_label: "Bandwidth (MB/s)".into(),
        series: vec![cell, cellmr, ppc, p6],
    }
}

/// Parameters of the Figure 6 sweep.
#[derive(Clone, Debug)]
pub struct Fig6Params {
    /// Total sample counts (paper: 1e3..1e9, decades).
    pub samples: Vec<u64>,
    /// RNG seed for the functional Pi kernels.
    pub seed: u64,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            samples: (3..=9).map(|e| 10u64.pow(e)).collect(),
            seed: 42,
        }
    }
}

/// Figure 6 — "Raw node Pi estimation performance": samples/second vs
/// problem size. Unlike Figure 2 the Cell configuration starts *cold* every
/// run (a fresh process per measurement), which is what buries small runs
/// under SPU context creation and produces the crossover the paper shows.
pub fn fig6(params: &Fig6Params) -> Figure {
    let mut cell = Series {
        label: "Cell BE".into(),
        points: Vec::new(),
    };
    let mut ppc = Series {
        label: "PPC".into(),
        points: Vec::new(),
    };
    let mut p6 = Series {
        label: "Power 6".into(),
        points: Vec::new(),
    };

    for &n in &params.samples {
        let x = n as f64;
        // Cold machine per measurement.
        let mut machine = CellMachine::new(CellConfig::default(), false).expect("valid config");
        let spu_kernel = PiSpeKernel::new(params.seed, 0);
        let report = machine.run_compute(n, &spu_kernel);
        cell.points
            .push((x, n as f64 / report.elapsed.as_secs_f64()));

        ppc.points.push((
            x,
            n as f64 / cost::pi_time(Engine::JavaPpe, n).as_secs_f64(),
        ));
        p6.points.push((
            x,
            n as f64 / cost::pi_time(Engine::JavaPower6, n).as_secs_f64(),
        ));
    }

    Figure {
        id: "fig6",
        title: "Raw node Pi estimation performance".into(),
        x_label: "Samples".into(),
        y_label: "Samples/sec".into(),
        series: vec![cell, ppc, p6],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_paper_shape() {
        let fig = fig2(&Fig2Params::default());
        let at = |label: &str, mb: f64| -> f64 {
            fig.series(label)
                .unwrap()
                .points
                .iter()
                .find(|&&(x, _)| x == mb)
                .unwrap()
                .1
        };
        // Asymptotic ordering and magnitudes (paper: ~700 / ~45 / ~11 MB/s).
        let cell = at("Cell BE", 1024.0);
        let cellmr = at("MapReduce Cell", 1024.0);
        let p6 = at("Power 6", 1024.0);
        let ppc = at("PPC", 1024.0);
        assert!((650.0..730.0).contains(&cell), "cell {cell}");
        assert!(cellmr < cell && cellmr > p6, "cellmr {cellmr}");
        assert!((40.0..50.0).contains(&p6), "p6 {p6}");
        assert!((9.0..13.0).contains(&ppc), "ppc {ppc}");
        // Small sizes ramp for the SPE configs (session start-up).
        let cell_small = at("Cell BE", 1.0);
        assert!(cell_small < 0.6 * cell, "no ramp: {cell_small} vs {cell}");
    }

    #[test]
    fn fig6_reproduces_crossover() {
        let fig = fig6(&Fig6Params::default());
        let at = |label: &str, n: f64| -> f64 {
            fig.series(label)
                .unwrap()
                .points
                .iter()
                .find(|&&(x, _)| x == n)
                .unwrap()
                .1
        };
        // Small N: cold SPU start-up makes the Cell slowest (paper: the
        // offload "is only worth when the work ... is above the overhead").
        assert!(at("Cell BE", 1e3) < at("PPC", 1e3));
        assert!(at("Cell BE", 1e3) < at("Power 6", 1e3));
        // Large N: Cell well above both scalar engines (≥ one order vs
        // Power 6 per the paper).
        assert!(at("Cell BE", 1e9) > 10.0 * at("Power 6", 1e9));
        assert!(at("Power 6", 1e9) > at("PPC", 1e9));
    }
}
