//! The JNI-like native bridge.
//!
//! The paper connects Hadoop mappers to the Cell libraries through the Java
//! Native Interface. JNI is cheap but not free: each native invocation pays
//! a call transition, and passing a record means pinning (or copying) the
//! Java byte array. Those costs are small next to a 64 MB record's feed
//! time, but the architecture is only honest if the layer exists — and the
//! ablation bench can then show it is *not* where the time goes.

use accelmr_des::SimDuration;

/// Cost model of one JNI downcall carrying a byte buffer.
#[derive(Clone, Copy, Debug)]
pub struct JniBridge {
    /// Fixed call transition cost.
    pub call_overhead: SimDuration,
    /// Array pinning / critical-section cost per byte (GetPrimitiveArrayCritical
    /// avoids a copy; a small per-byte touch remains).
    pub pin_bytes_per_sec: f64,
}

impl Default for JniBridge {
    fn default() -> Self {
        JniBridge {
            call_overhead: SimDuration::from_micros(60),
            pin_bytes_per_sec: 20.0e9,
        }
    }
}

impl JniBridge {
    /// Total bridge cost for one native call moving `bytes`.
    pub fn call_cost(&self, bytes: u64) -> SimDuration {
        self.call_overhead + SimDuration::from_secs_f64(bytes as f64 / self.pin_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_cost_scales_with_bytes() {
        let b = JniBridge::default();
        let small = b.call_cost(0);
        assert_eq!(small, SimDuration::from_micros(60));
        let big = b.call_cost(64 << 20);
        assert!(big > small);
        // Bridge cost for a 64 MB record stays microseconds-to-milliseconds:
        // invisible next to the ~7.5 s feed time — the ablation's point.
        assert!(big < SimDuration::from_millis(5));
    }
}
