//! The determinism rules and the allow/suppression engine.
//!
//! Every rule reports `rule file:line message` findings. A finding can be
//! suppressed with a *reasoned* annotation on the offending line (or on a
//! comment line directly above it):
//!
//! ```text
//! // audit:allow(<rule>): <why this is order-insensitive / exempt>
//! ```
//!
//! The reason is mandatory, and an allow that suppresses nothing is
//! itself an error (`unused-allow`) — annotations cannot rot in place
//! when the code they excused changes underneath them.

use crate::lexer::{lex, Lexed, Tok};

/// The five determinism rules (see `docs/ARCHITECTURE.md`).
pub const RULES: [&str; 5] = [
    "wall-clock",
    "os-random",
    "std-hashmap",
    "map-order",
    "trace-pin",
];

/// One diagnostic, formatted as `rule file:line message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`], `unused-allow`, or `malformed-allow`).
    pub rule: String,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}:{} {}", self.rule, self.file, self.line, self.msg)
    }
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Area {
    /// `crates/<name>/…`
    Crate(String),
    /// The facade crate's `src/`.
    Facade,
    /// Workspace-level `tests/` and `examples/`.
    TestsOrExamples,
    /// Anything else (scripts, build helpers).
    Other,
}

fn area_of(rel: &str) -> Area {
    let rel = rel.replace('\\', "/");
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return Area::Crate(name.to_string());
        }
    }
    if rel.starts_with("src/") {
        return Area::Facade;
    }
    if rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Area::TestsOrExamples;
    }
    Area::Other
}

/// Crates whose event scheduling the map-order rule protects.
const EVENT_CRATES: [&str; 4] = ["des", "net", "dfs", "mapred"];

/// Hash-map/set type names whose iteration order is insertion-history
/// dependent (BTree types are deterministic and exempt).
const MAP_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// Iterator-producing methods on hash maps that expose bucket order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminators whose result is independent of visit order.
const ORDER_FREE_SINKS: [&str; 9] = [
    "count", "sum", "product", "min", "max", "all", "any", "len", "is_empty",
];

#[derive(Debug)]
struct Allow {
    rule: String,
    /// Line the annotation suppresses findings on.
    applies_to: u32,
    /// Line the annotation itself sits on (for unused-allow reporting).
    at: u32,
    used: std::cell::Cell<bool>,
}

/// Runs every applicable rule over one file. `rel` is the path relative
/// to the workspace root (used for scoping and diagnostics).
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let area = area_of(rel);
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();

    parse_allows(rel, &lexed, &mut allows, &mut findings);

    let mut raw: Vec<Finding> = Vec::new();
    if applies_wall_clock(&area) {
        rule_wall_clock(rel, &lexed, &mut raw);
    }
    rule_os_random(rel, &lexed, &mut raw);
    if applies_std_hashmap(&area) {
        rule_std_hashmap(rel, &lexed, &mut raw);
    }
    if applies_map_order(&area) {
        rule_map_order(rel, &lexed, &mut raw);
    }
    rule_trace_pin(rel, &lexed, &mut raw);

    // Suppression: an allow for the same rule bound to the finding's line.
    for f in raw {
        let suppressed = allows.iter().any(|a| {
            if a.rule == f.rule && a.applies_to == f.line {
                a.used.set(true);
                true
            } else {
                false
            }
        });
        if !suppressed {
            findings.push(f);
        }
    }

    for a in &allows {
        if !a.used.get() {
            findings.push(Finding {
                rule: "unused-allow".into(),
                file: rel.into(),
                line: a.at,
                msg: format!(
                    "audit:allow({}) suppresses nothing — the code it excused \
                     changed; remove or move the annotation",
                    a.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

fn applies_wall_clock(area: &Area) -> bool {
    // Only the bench harness may read the host clock (it measures
    // simulator wall speed); everywhere else is simulation code.
    !matches!(area, Area::Crate(c) if c == "bench")
}

fn applies_std_hashmap(area: &Area) -> bool {
    match area {
        Area::Crate(c) => c != "bench" && c != "audit",
        Area::Facade => true,
        _ => false,
    }
}

fn applies_map_order(area: &Area) -> bool {
    matches!(area, Area::Crate(c) if EVENT_CRATES.contains(&c.as_str()))
}

fn parse_allows(rel: &str, lexed: &Lexed, allows: &mut Vec<Allow>, findings: &mut Vec<Finding>) {
    for c in &lexed.comments {
        for (off, text) in c.text.lines().enumerate() {
            // An annotation line *begins* with `audit:allow` (after the
            // doc-comment `!`/`/` markers). Prose that merely mentions
            // the syntax always shows it behind `//` or backticks, so it
            // cannot collide.
            let trimmed = text
                .trim_start()
                .trim_start_matches(['!', '/'])
                .trim_start();
            if trimmed.starts_with("audit:allow") {
                parse_allow_line(
                    rel,
                    lexed,
                    c,
                    c.line + off as u32,
                    trimmed,
                    allows,
                    findings,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_allow_line(
    rel: &str,
    lexed: &Lexed,
    c: &crate::lexer::Comment,
    line: u32,
    text: &str,
    allows: &mut Vec<Allow>,
    findings: &mut Vec<Finding>,
) {
    let after = &text["audit:allow".len()..];
    let mut malformed = |msg: String| {
        findings.push(Finding {
            rule: "malformed-allow".into(),
            file: rel.into(),
            line,
            msg,
        });
    };
    let Some(open) = after.find('(') else {
        malformed("expected `audit:allow(<rule>): <reason>`".into());
        return;
    };
    let Some(close) = after.find(')') else {
        malformed("unclosed `audit:allow(`".into());
        return;
    };
    let rule = after[open + 1..close].trim().to_string();
    if !RULES.contains(&rule.as_str()) {
        malformed(format!(
            "unknown rule '{rule}' (valid: {})",
            RULES.join(", ")
        ));
        return;
    }
    let rest = &after[close + 1..];
    let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
    if !rest.trim_start().starts_with(':') || reason.is_empty() {
        malformed(format!(
            "audit:allow({rule}) needs a reason: `audit:allow({rule}): <why>`"
        ));
        return;
    }
    // End-of-line annotation binds to its own line; a standalone comment
    // binds to the next line holding code after the comment ends.
    let applies_to = if lexed.has_code_on(c.line) {
        c.line
    } else {
        match lexed.next_code_line(c.end_line) {
            Some(l) => l,
            None => {
                malformed(format!(
                    "audit:allow({rule}) trails the file — nothing follows for it to excuse"
                ));
                return;
            }
        }
    };
    allows.push(Allow {
        rule,
        applies_to,
        at: line,
        used: std::cell::Cell::new(false),
    });
}

fn ident_at(lexed: &Lexed, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(lexed: &Lexed, i: usize, c: char) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn pathsep_at(lexed: &Lexed, i: usize) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::PathSep))
}

// ---------------------------------------------------------------- rules

fn rule_wall_clock(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if let Tok::Ident(s) = &t.tok {
            if s == "Instant" || s == "SystemTime" {
                let _ = i;
                out.push(Finding {
                    rule: "wall-clock".into(),
                    file: rel.into(),
                    line: t.line,
                    msg: format!(
                        "`{s}` reads the host clock; simulation code must use \
                         `SimTime`/`SimDuration` (wall-clock is bench-only)"
                    ),
                });
            }
        }
    }
}

fn rule_os_random(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    const BANNED: [&str; 7] = [
        "thread_rng",
        "ThreadRng",
        "RandomState",
        "OsRng",
        "StdRng",
        "SmallRng",
        "getrandom",
    ];
    for (i, t) in lexed.tokens.iter().enumerate() {
        if let Tok::Ident(s) = &t.tok {
            let banned = BANNED.contains(&s.as_str()) || (s == "rand" && pathsep_at(lexed, i + 1));
            if banned {
                out.push(Finding {
                    rule: "os-random".into(),
                    file: rel.into(),
                    line: t.line,
                    msg: format!(
                        "`{s}` draws OS/ambient randomness; use the in-tree \
                         seeded `des::Xoshiro256` only"
                    ),
                });
            }
        }
    }
}

fn rule_std_hashmap(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        // `use` statements importing std::collections::{HashMap, HashSet}.
        if ident_at(lexed, i) == Some("use") {
            let mut j = i + 1;
            let (mut has_std, mut has_coll) = (false, false);
            let mut offender: Option<(u32, &str)> = None;
            while j < toks.len() && !punct_at(lexed, j, ';') {
                match ident_at(lexed, j) {
                    Some("std") => has_std = true,
                    Some("collections") => has_coll = true,
                    Some(s @ ("HashMap" | "HashSet")) if offender.is_none() => {
                        offender = Some((toks[j].line, s));
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (true, true, Some((line, name))) = (has_std, has_coll, offender) {
                out.push(Finding {
                    rule: "std-hashmap".into(),
                    file: rel.into(),
                    line,
                    msg: format!(
                        "`std::collections::{name}` imported in a sim crate; \
                         use the fixed-seed `des::fxmap` aliases"
                    ),
                });
            }
            i = j;
            continue;
        }
        // Direct construction: HashMap::new() etc.
        if let Some(s @ ("HashMap" | "HashSet")) = ident_at(lexed, i) {
            if pathsep_at(lexed, i + 1) {
                if let Some(m @ ("new" | "with_capacity" | "default" | "from" | "from_iter")) =
                    ident_at(lexed, i + 2)
                {
                    out.push(Finding {
                        rule: "std-hashmap".into(),
                        file: rel.into(),
                        line: toks[i].line,
                        msg: format!(
                            "`{s}::{m}` constructs a SipHash-seeded std map; \
                             use `Fx{s}::default()` from `des::fxmap`"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Identifiers a file declares with a hash-map/set type: struct fields
/// (matched as `self.<field>`) and `let`/`fn`-parameter bindings
/// (matched bare). Heuristic by design — a token scanner has no type
/// inference — but tight enough that every hit is a real map and misses
/// are limited to maps smuggled through untyped closures.
#[derive(Debug, Default)]
struct MapIdents {
    fields: Vec<String>,
    locals: Vec<String>,
}

fn is_map_type_path(lexed: &Lexed, mut j: usize) -> bool {
    // Skip `&`, `mut` and leading path segments; `true` iff the last
    // segment before `<` / a delimiter is a known map type.
    while punct_at(lexed, j, '&') || ident_at(lexed, j) == Some("mut") {
        j += 1;
    }
    let mut last: Option<&str> = None;
    loop {
        match lexed.tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => {
                last = Some(s.as_str());
                j += 1;
            }
            Some(Tok::PathSep) => j += 1,
            Some(Tok::Punct('<'))
            | Some(Tok::Punct(','))
            | Some(Tok::Punct(')'))
            | Some(Tok::Punct('}'))
            | Some(Tok::Punct(';'))
            | Some(Tok::Punct('=')) => break,
            _ => break,
        }
    }
    last.map(|s| MAP_TYPES.contains(&s)).unwrap_or(false)
}

fn collect_map_idents(lexed: &Lexed) -> MapIdents {
    let toks = &lexed.tokens;
    let mut out = MapIdents::default();
    let mut depth: i32 = 0;
    // Brace depth at which each active struct body's fields live.
    let mut struct_bodies: Vec<i32> = Vec::new();
    let mut pending_struct = false;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending_struct {
                    struct_bodies.push(depth);
                    pending_struct = false;
                }
            }
            Tok::Punct('}') => {
                if struct_bodies.last() == Some(&depth) {
                    struct_bodies.pop();
                }
                depth -= 1;
            }
            Tok::Punct(';') | Tok::Punct('(') if pending_struct => {
                // Tuple struct / unit struct: no named fields.
                pending_struct = false;
            }
            Tok::Ident(s) if s == "struct" => pending_struct = true,
            Tok::Ident(s) if s == "let" => {
                let mut j = i + 1;
                if ident_at(lexed, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(lexed, j) {
                    let name = name.to_string();
                    let is_map = if punct_at(lexed, j + 1, ':') {
                        is_map_type_path(lexed, j + 2)
                    } else if punct_at(lexed, j + 1, '=') {
                        // `let m = FxHashMap::default()` — first path
                        // segment names the type.
                        ident_at(lexed, j + 2)
                            .map(|s| MAP_TYPES.contains(&s))
                            .unwrap_or(false)
                    } else {
                        false
                    };
                    if is_map {
                        out.locals.push(name);
                    }
                }
            }
            Tok::Ident(s) if s == "fn" => {
                // Parameters: `name: MapType<...>` inside the signature.
                let mut j = i + 1;
                while j < toks.len() && !punct_at(lexed, j, '(') && !punct_at(lexed, j, '{') {
                    j += 1;
                }
                if punct_at(lexed, j, '(') {
                    let mut pdepth = 1;
                    let mut k = j + 1;
                    while k < toks.len() && pdepth > 0 {
                        if punct_at(lexed, k, '(') {
                            pdepth += 1;
                        } else if punct_at(lexed, k, ')') {
                            pdepth -= 1;
                        } else if pdepth == 1 && punct_at(lexed, k + 1, ':') {
                            if let Some(name) = ident_at(lexed, k) {
                                if is_map_type_path(lexed, k + 2) {
                                    out.locals.push(name.to_string());
                                }
                            }
                        }
                        k += 1;
                    }
                }
            }
            // Struct field `name: MapType<...>` at field depth.
            Tok::Ident(name)
                if struct_bodies.last() == Some(&depth)
                    && punct_at(lexed, i + 1, ':')
                    && is_map_type_path(lexed, i + 2) =>
            {
                out.fields.push(name.clone());
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// `true` if the expression starting at token `recv` is a for-loop's
/// iterator (`for x in <recv…>`): look back past `&`/`mut` for `in`.
fn in_for_header(lexed: &Lexed, recv: usize) -> bool {
    let mut j = recv;
    while j > 0 {
        j -= 1;
        match &lexed.tokens[j].tok {
            Tok::Punct('&') => continue,
            Tok::Ident(s) if s == "mut" => continue,
            Tok::Ident(s) if s == "in" => return true,
            _ => return false,
        }
    }
    false
}

/// Scan forward from the iteration call for evidence the result is made
/// order-independent: an order-free sink in the same chain, or a sort
/// within the next two statements (the collect-then-sort idiom). The
/// window deliberately spans two `;` so
/// `let v: Vec<_> = m.keys().collect(); v.sort_unstable();` passes.
fn sorted_or_order_free(lexed: &Lexed, from: usize) -> bool {
    let mut semis = 0;
    for t in lexed.tokens.iter().skip(from).take(200) {
        match &t.tok {
            Tok::Punct(';') => {
                semis += 1;
                if semis >= 2 {
                    return false;
                }
            }
            Tok::Ident(s)
                if s.starts_with("sort")
                    || ORDER_FREE_SINKS.contains(&s.as_str())
                    || s == "BTreeMap"
                    || s == "BTreeSet"
                    || s == "BinaryHeap" =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

fn push_map_order(rel: &str, line: u32, recv: &str, how: &str, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule: "map-order".into(),
        file: rel.into(),
        line,
        msg: format!(
            "{how} over hash map `{recv}` exposes insertion-history-dependent \
             order to event scheduling; sort (collect-then-sort) or annotate \
             `audit:allow(map-order): <reason>`"
        ),
    });
}

fn rule_map_order(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let maps = collect_map_idents(lexed);
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // Method form: `<recv>.iter()` / `self.<field>.values_mut()` …
        if let Some(m) = ident_at(lexed, i) {
            if ITER_METHODS.contains(&m)
                && i >= 2
                && punct_at(lexed, i - 1, '.')
                && punct_at(lexed, i + 1, '(')
            {
                let (recv_idx, recv, is_map) = match ident_at(lexed, i - 2) {
                    Some(field)
                        if i >= 4
                            && punct_at(lexed, i - 3, '.')
                            && ident_at(lexed, i - 4) == Some("self") =>
                    {
                        (i - 4, field, maps.fields.iter().any(|f| f == field))
                    }
                    Some(local) => (i - 2, local, maps.locals.iter().any(|l| l == local)),
                    None => continue,
                };
                if !is_map {
                    continue;
                }
                // A for-loop body is unbounded: no forward window, the
                // loop must be sorted beforehand or annotated.
                let ok = !in_for_header(lexed, recv_idx) && sorted_or_order_free(lexed, i + 2);
                if !ok {
                    push_map_order(rel, toks[i].line, recv, &format!("`.{m}()`"), out);
                }
            }
        }
        // Sugared form: `for x in &map {` / `for x in &mut self.map {`.
        if ident_at(lexed, i) == Some("for") {
            let mut j = i + 1;
            while j < toks.len() && ident_at(lexed, j) != Some("in") {
                if punct_at(lexed, j, '{') || punct_at(lexed, j, ';') {
                    j = toks.len();
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            let mut k = j + 1;
            while punct_at(lexed, k, '&') || ident_at(lexed, k) == Some("mut") {
                k += 1;
            }
            let (recv, is_map, end) = match ident_at(lexed, k) {
                Some("self") if punct_at(lexed, k + 1, '.') => match ident_at(lexed, k + 2) {
                    Some(field) => (field, maps.fields.iter().any(|f| f == field), k + 3),
                    None => continue,
                },
                Some(local) => (local, maps.locals.iter().any(|l| l == local), k + 1),
                None => continue,
            };
            // Only the bare `for x in &map {` form: anything else after
            // the receiver (a method call, an index) is the method form's
            // job or not a map walk at all.
            if is_map && punct_at(lexed, end, '{') {
                push_map_order(rel, toks[k].line, recv, "`for … in`", out);
            }
        }
    }
}

fn rule_trace_pin(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let has_fingerprint = toks
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "fingerprint"));
    if !has_fingerprint {
        return;
    }
    let names_engine = (0..toks.len()).any(|i| {
        ident_at(lexed, i) == Some("FluidEngine")
            && pathsep_at(lexed, i + 1)
            && ident_at(lexed, i + 2) == Some("Reference")
    });
    for (i, t) in toks.iter().enumerate() {
        let binds_golden = ident_at(lexed, i) == Some("golden")
            && (punct_at(lexed, i + 1, '=')
                || (i > 0 && ident_at(lexed, i - 1) == Some("let"))
                || (i > 0 && ident_at(lexed, i - 1) == Some("mut")));
        if binds_golden && !names_engine {
            out.push(Finding {
                rule: "trace-pin".into(),
                file: rel.into(),
                line: t.line,
                msg: "golden fingerprint table does not name the fabric engine it pins; \
                      golden event streams are only stable against `FluidEngine::Reference` \
                      (the incremental engine reorders within an instant)"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/dfs/src/fake.rs";

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn wall_clock_flagged_outside_bench_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_of(&check_file(SIM, src)), ["wall-clock"]);
        assert!(check_file("crates/bench/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_inside_raw_string_is_invisible() {
        let src = "fn f() { let s = r#\"Instant::now()\"#; }";
        assert!(check_file(SIM, src).is_empty());
    }

    #[test]
    fn os_random_flagged_everywhere() {
        let src = "fn f() { let r = rand::thread_rng(); }";
        let found = check_file("crates/bench/src/lib2.rs", src);
        assert!(found.iter().all(|f| f.rule == "os-random"));
        assert_eq!(found.len(), 2); // `rand::` and `thread_rng`
    }

    #[test]
    fn std_hashmap_import_and_construction() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }";
        let found = check_file(SIM, src);
        assert_eq!(rules_of(&found), ["std-hashmap", "std-hashmap"]);
        assert_eq!((found[0].line, found[1].line), (1, 2));
        // Not a sim crate: tests/examples may use std maps freely.
        assert!(check_file("tests/t.rs", src).is_empty());
        // BTree imports are deterministic and exempt.
        let ok = "use std::collections::{BTreeMap, BinaryHeap};";
        assert!(check_file(SIM, ok).is_empty());
    }

    #[test]
    fn map_order_local_flagged_and_sorted_passes() {
        let bad = "fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default();\n\
                   for v in m.values() { emit(v); } }";
        assert_eq!(rules_of(&check_file(SIM, bad)), ["map-order"]);

        let sorted = "fn f(m: &FxHashMap<u32, u32>) {\n\
                      let mut v: Vec<u32> = m.keys().copied().collect();\n\
                      v.sort_unstable();\n\
                      for k in v { emit(k); } }";
        assert!(check_file(SIM, sorted).is_empty());

        let counted = "fn f(m: &FxHashMap<u32, u32>) -> usize { m.values().count() }";
        assert!(check_file(SIM, counted).is_empty());
    }

    #[test]
    fn map_order_field_via_self_and_for_sugar() {
        let src = "struct S { tbl: FxHashMap<u32, u32>, v: Vec<u32> }\n\
                   impl S { fn f(&self) {\n\
                   for x in &self.tbl { emit(x); }\n\
                   for x in &self.v { emit(x); } } }";
        let found = check_file(SIM, src);
        assert_eq!(rules_of(&found), ["map-order"]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn map_order_scoped_to_event_crates() {
        let src = "fn f(m: &FxHashMap<u32, u32>) { for v in m.values() { emit(v); } }";
        assert_eq!(rules_of(&check_file(SIM, src)), ["map-order"]);
        assert!(check_file("crates/kernels/src/fake.rs", src).is_empty());
    }

    #[test]
    fn allow_on_preceding_line_suppresses_and_is_consumed() {
        let src = "fn f(m: &FxHashMap<u32, u32>) {\n\
                   // audit:allow(map-order): fixture — commutative fold\n\
                   for v in m.values() { acc(v); } }";
        assert!(check_file(SIM, src).is_empty());
    }

    #[test]
    fn allow_at_end_of_line_suppresses() {
        let src = "fn f(m: &FxHashMap<u32, u32>) {\n\
                   for v in m.values() { acc(v); } // audit:allow(map-order): fixture — commutative\n\
                   }";
        assert!(check_file(SIM, src).is_empty());
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// audit:allow(wall-clock): nothing here uses the clock\nfn f() {}";
        let found = check_file(SIM, src);
        assert_eq!(rules_of(&found), ["unused-allow"]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "fn f() { let t = Instant::now(); // audit:allow(wall-clock)\n}";
        let found = check_file(SIM, src);
        let rules = rules_of(&found);
        // The malformed allow does not suppress: both diagnostics fire.
        assert!(rules.contains(&"malformed-allow"));
        assert!(rules.contains(&"wall-clock"));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let src = "// audit:allow(map-ordering): typo in the rule name\nfn f() {}";
        assert_eq!(rules_of(&check_file(SIM, src)), ["malformed-allow"]);
    }

    #[test]
    fn trace_pin_requires_reference_engine() {
        let bad = "fn t() { let golden = [(\"a\", 0x1u64)];\n\
                   let fp = sim.trace().fingerprint(); check(golden, fp); }";
        assert_eq!(
            rules_of(&check_file("tests/goldens.rs", bad)),
            ["trace-pin"]
        );

        let good = "fn t() { let golden = [(\"a\", 0x1u64)];\n\
                    let got = run(FluidEngine::Reference);\n\
                    let fp = sim.trace().fingerprint(); check(golden, fp, got); }";
        assert!(check_file("tests/goldens.rs", good).is_empty());
    }

    #[test]
    fn allow_hidden_in_nested_block_comment_still_parses() {
        // Block comments are captured too; the annotation binds to the
        // next code line after the comment ends.
        let src = "/* rationale /* nested */\n audit:allow(wall-clock): fixture reason */\n\
                   let t = Instant::now();";
        assert!(check_file(SIM, src).is_empty());
    }

    #[test]
    fn self_named_local_does_not_shadow_field_rule() {
        // A Vec local named like a map field: bare iteration is not
        // flagged (fields only match through `self.`).
        let src = "struct S { fetches: FxHashMap<u64, u32> }\n\
                   impl S { fn f(&self, fetches: Vec<u32>) {\n\
                   for x in &fetches { emit(x); } } }";
        let found = check_file(SIM, src);
        // The param `fetches: Vec<u32>` is not a map; nothing fires.
        assert!(found.is_empty(), "{found:?}");
    }
}
