//! A minimal, dependency-free Rust token scanner.
//!
//! The audit rules need exactly three things a plain text grep cannot
//! give them: (1) tokens inside string/char literals and comments must
//! never match a rule (the auditor's own rule tables would otherwise
//! flag themselves), (2) comments must be *captured* so
//! `// audit:allow(...)` annotations can be parsed, and (3) identifier
//! and path structure (`std :: collections :: HashMap`) must survive
//! arbitrary whitespace and line breaks. Everything else about Rust
//! syntax — literal values, generics nesting, actual parsing — is
//! irrelevant to the rules, so literals and lifetimes are consumed and
//! dropped rather than represented.
//!
//! Handled edge cases, each pinned by a unit test below: nested block
//! comments (`/* /* */ */`), raw strings with arbitrary hash fences
//! (`r##"..."##`, `br#"..."#`), raw identifiers (`r#type`), byte and
//! C-string literals, and the char-literal-vs-lifetime ambiguity
//! (`'a'` vs `<'a>`).

/// A token the rule engine can see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// The `::` path separator (merged into one token).
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A comment (line or block), captured for `audit:allow` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All meaningful tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// `true` if any token starts on `line` — used to decide whether an
    /// allow-comment shares its line with code or stands alone.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// First line strictly after `line` that holds a token, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenizes `src`. Invalid UTF-8 never reaches this function (the
/// walker reads files as `String`); unterminated literals simply consume
/// to end of file, which is good enough for a linter.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..cur.pos].to_string(),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text: src[start..end.max(start)].to_string(),
                });
            }
            b'"' => {
                cur.bump();
                consume_string_body(&mut cur);
            }
            b'\'' => {
                cur.bump();
                consume_char_or_lifetime(&mut cur);
            }
            c if c.is_ascii_digit() => {
                cur.bump();
                while let Some(c) = cur.peek() {
                    // Good enough for numeric literals incl. hex, suffixes
                    // and floats; `1..n` stops at the first `.` of `..`.
                    if is_ident_continue(c) || (c == b'.' && cur.peek_at(1) != Some(b'.')) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                cur.bump();
                while cur.peek().map(is_ident_continue).unwrap_or(false) {
                    cur.bump();
                }
                let ident = &src[start..cur.pos];
                if !handle_literal_prefix(&mut cur, ident, &mut out, line) {
                    out.tokens.push(Token {
                        tok: Tok::Ident(ident.to_string()),
                        line,
                    });
                }
            }
            b':' if cur.peek_at(1) == Some(b':') => {
                cur.bump();
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::PathSep,
                    line,
                });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
            }
        }
    }
    out
}

/// If `ident` is a literal prefix (`r`, `b`, `c`, `br`, `cr`) followed by
/// a string/char opener, consumes the literal and returns `true`.
/// `r#ident` (raw identifier) is emitted as a plain identifier.
fn handle_literal_prefix(cur: &mut Cursor<'_>, ident: &str, out: &mut Lexed, line: u32) -> bool {
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let stringish = matches!(ident, "r" | "b" | "c" | "br" | "cr");
    match cur.peek() {
        Some(b'#') if raw_capable => {
            let mut hashes = 0usize;
            while cur.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
            match cur.peek_at(hashes) {
                Some(b'"') => {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    consume_raw_string_body(cur, hashes);
                    true
                }
                Some(c) if hashes == 1 && is_ident_start(c) => {
                    // Raw identifier: r#type
                    cur.bump(); // '#'
                    let start = cur.pos;
                    while cur.peek().map(is_ident_continue).unwrap_or(false) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        tok: Tok::Ident(String::from_utf8_lossy(&cur.src[start..cur.pos]).into()),
                        line,
                    });
                    true
                }
                _ => false,
            }
        }
        Some(b'"') if stringish => {
            cur.bump();
            if ident.starts_with('r') || ident == "cr" {
                consume_raw_string_body(cur, 0);
            } else {
                consume_string_body(cur);
            }
            true
        }
        Some(b'\'') if ident == "b" => {
            cur.bump();
            consume_char_or_lifetime(cur);
            true
        }
        _ => false,
    }
}

/// Consumes a non-raw string body after the opening quote.
fn consume_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body after `r#…#"`; `hashes` is the fence size.
fn consume_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == b'"' {
            let mut n = 0usize;
            while n < hashes && cur.peek_at(n) == Some(b'#') {
                n += 1;
            }
            if n == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

/// After a `'`: decides char literal vs lifetime and consumes whichever
/// it is. Lifetimes produce no token (no rule needs them).
fn consume_char_or_lifetime(cur: &mut Cursor<'_>) {
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            cur.bump();
            if cur.peek() == Some(b'u') {
                cur.bump();
                if cur.peek() == Some(b'{') {
                    while let Some(c) = cur.bump() {
                        if c == b'}' {
                            break;
                        }
                    }
                }
            } else {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char literal; 'a followed by anything else is a
            // lifetime (consume the identifier, emit nothing).
            let mut len = 1;
            while cur.peek_at(len).map(is_ident_continue).unwrap_or(false) {
                len += 1;
            }
            if len == 1 && cur.peek_at(1) == Some(b'\'') {
                cur.bump();
                cur.bump();
            } else {
                for _ in 0..len {
                    cur.bump();
                }
            }
        }
        Some(_) => {
            // Non-alphabetic char literal: '(', '3', ' '.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
        }
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let s = "Instant::now() thread_rng"; let t = x;"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant" || i == "thread_rng"));
        assert!(ids.iter().any(|i| i == "x"));
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = "let s = r##\"quote \" and # inside HashMap::new()\"##; foo();";
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(ids.iter().any(|i| i == "foo"));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "let a = b\"SystemTime\"; let b2 = c\"rand\"; let c3 = br#\"OsRng\"#; ok();";
        let ids = idents(src);
        for bad in ["SystemTime", "rand", "OsRng"] {
            assert!(!ids.iter().any(|i| i == bad), "{bad} leaked");
        }
        assert!(ids.iter().any(|i| i == "ok"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner thread_rng */ still comment */ fn f() {}";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, ["fn", "f"]);
        assert!(lexed.comments[0].text.contains("inner thread_rng"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\''; let e = '\\u{1F600}'; g(); }";
        let ids = idents(src);
        // Neither the lifetime nor char contents become identifiers; the
        // code around them still lexes.
        assert!(ids.iter().any(|i| i == "g"));
        assert!(!ids.iter().any(|i| i == "a"));
    }

    #[test]
    fn raw_identifiers_are_plain_identifiers() {
        let ids = idents("let r#type = 1; use r#mod::thing;");
        assert!(ids.iter().any(|i| i == "type"));
        assert!(ids.iter().any(|i| i == "mod"));
    }

    #[test]
    fn path_sep_is_merged() {
        let lexed = lex("std::collections::HashMap");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| &t.tok).collect();
        assert_eq!(
            kinds,
            [
                &Tok::Ident("std".into()),
                &Tok::PathSep,
                &Tok::Ident("collections".into()),
                &Tok::PathSep,
                &Tok::Ident("HashMap".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_and_comment_capture() {
        let src = "fn a() {}\n// audit:allow(map-order): reason here\nfn b() {}\n";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 3);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("audit:allow(map-order)"));
        assert!(!lexed.has_code_on(2));
        assert_eq!(lexed.next_code_line(2), Some(3));
    }
}
