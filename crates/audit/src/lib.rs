//! # accelmr-audit — the determinism auditor
//!
//! Every reproducibility guarantee this workspace makes — golden trace
//! fingerprints, Reference-vs-Incremental engine equivalence,
//! digest-exact churn reruns — rests on the DES being bit-for-bit
//! deterministic. The invariants that make it so used to live in
//! comments and reviewer vigilance; this crate machine-checks them as a
//! static analysis pass run in CI (`cargo run -p accelmr-audit`).
//!
//! ## Rules
//!
//! | Rule | Invariant |
//! |---|---|
//! | `wall-clock` | `Instant`/`SystemTime` only in `crates/bench` — sim code uses `SimTime` |
//! | `os-random` | no `thread_rng`/`RandomState`/`rand::` — in-tree seeded `Xoshiro256` only |
//! | `std-hashmap` | sim crates construct maps via the fixed-seed `des::fxmap` aliases |
//! | `map-order` | hash-map iteration in event-scheduling crates is sorted or reasoned order-insensitive |
//! | `trace-pin` | golden fingerprint tables name the engine (`FluidEngine::Reference`) they pin |
//!
//! Violations are suppressed with `// audit:allow(<rule>): <reason>` on
//! the offending line or the line above. The reason is mandatory, and
//! unused allows are themselves errors — annotations cannot rot.
//!
//! The crate is deliberately dependency-free: the workspace builds
//! offline with zero third-party crates, so instead of `syn` it ships a
//! small comment/string/raw-string-aware token scanner ([`lexer`])
//! driving a rule engine ([`rules`]) over a sorted file walk ([`walk`]).

pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use rules::{check_file, Finding, RULES};

/// Audits every `.rs` file under `root`; returns `(files_scanned,
/// findings)` with findings in (path, line) order.
pub fn audit_workspace(root: &Path) -> std::io::Result<(usize, Vec<Finding>)> {
    let files = walk::rust_files(root)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        findings.extend(rules::check_file(&rel, &src));
    }
    Ok((files.len(), findings))
}
