//! Deterministic workspace file walker.

use std::path::{Path, PathBuf};

/// Directories never audited: build output, VCS metadata, hidden dirs.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

/// Every `.rs` file under `root`, in sorted (byte-order) path order so
/// the auditor's output is identical run to run and machine to machine.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_sorted() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files
            .iter()
            .any(|p| p.ends_with("src/walk.rs") || p.ends_with("src\\walk.rs")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
