//! CLI entry point: `cargo run -p accelmr-audit [-- --root <path>]`.
//!
//! Prints one `rule file:line message` line per finding on stdout
//! (machine-readable, stable order) and a summary on stderr; exits
//! nonzero iff there are findings, so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/audit/ → workspace root, regardless of invocation cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit has a workspace root two levels up")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut root = workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in accelmr_audit::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}' (usage: accelmr-audit [--root <path>] [--list-rules])");
                return ExitCode::from(2);
            }
        }
    }

    match accelmr_audit::audit_workspace(&root) {
        Ok((scanned, findings)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("audit clean: {scanned} files, 0 findings");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "audit: {} finding(s) across {scanned} files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("audit failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
