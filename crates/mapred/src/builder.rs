//! Fluent builders for cluster deployment and job description.
//!
//! [`ClusterBuilder`] replaces the seven-positional-argument
//! `deploy_cluster` call with named setters over sane defaults, and
//! [`JobBuilder`] replaces hand-rolled [`JobSpec`] struct literals:
//!
//! ```
//! use accelmr_mapred::{ClusterBuilder, JobBuilder, SumReducer};
//! use accelmr_mapred::FixedCostKernel;
//!
//! let mut cluster = ClusterBuilder::new().workers(2).seed(7).deploy();
//! let mut session = cluster.session();
//! session.submit(
//!     JobBuilder::new("count")
//!         .synthetic(10_000)
//!         .kernel(FixedCostKernel::default())
//!         .rpc_aggregate(SumReducer { cycles_per_byte: 1.0 }),
//! );
//! let result = session.run();
//! assert!(result.succeeded);
//! ```

use std::sync::Arc;

use accelmr_dfs::DfsConfig;
use accelmr_net::NetConfig;

use crate::cluster::{deploy_cluster_impl, MrCluster, PreloadSpec};
use crate::config::{MrConfig, SchedulerPolicy};
use crate::job::{JobInput, JobSpec, OutputSink, ReduceSpec};
use crate::kernel::{NodeEnvFactory, NullEnvFactory, ReduceKernel, TaskKernel};
use crate::session::JobRequest;

/// Fluent deployment of a simulated cluster: fabric + DFS + MapReduce
/// runtime over `workers` nodes, with named setters and defaults matching
/// the paper's configuration (`NetConfig`/`DfsConfig`/`MrConfig` defaults,
/// timing-only simulation, no accelerators).
pub struct ClusterBuilder {
    seed: u64,
    workers: usize,
    net: NetConfig,
    dfs: DfsConfig,
    mr: MrConfig,
    /// Arc (not Box) so the deployed cluster can retain the factory and
    /// build environments for nodes joining mid-session.
    env: Arc<dyn NodeEnvFactory>,
    materialized: bool,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Starts from the defaults: seed 42, 4 workers, default network/DFS/MR
    /// configs, no per-node accelerator state, timing-only data.
    pub fn new() -> Self {
        ClusterBuilder {
            seed: 42,
            workers: 4,
            net: NetConfig::default(),
            dfs: DfsConfig::default(),
            mr: MrConfig::default(),
            env: Arc::new(NullEnvFactory),
            materialized: false,
        }
    }

    /// Seed of the deterministic simulation RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of worker nodes (the JobTracker's head node is extra).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Network fabric configuration.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// DFS configuration.
    pub fn dfs(mut self, dfs: DfsConfig) -> Self {
        self.dfs = dfs;
        self
    }

    /// MapReduce runtime configuration.
    pub fn mr(mut self, mr: MrConfig) -> Self {
        self.mr = mr;
        self
    }

    /// Cluster-wide scheduling policy (shorthand for setting
    /// [`MrConfig::scheduler`]; jobs may still override per job via
    /// [`JobBuilder::scheduler`]).
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.mr.scheduler = policy;
        self
    }

    /// Per-node accelerator environment factory (the hybrid crate's
    /// `CellEnvFactory` plugs in here). Nodes joining mid-session via
    /// [`Session::add_node_at`](crate::Session::add_node_at) get their
    /// environments from the same factory.
    pub fn env(mut self, env: impl NodeEnvFactory + 'static) -> Self {
        self.env = Arc::new(env);
        self
    }

    /// Pre-boxed environment factory (when the concrete type is erased).
    pub fn env_boxed(mut self, env: Box<dyn NodeEnvFactory>) -> Self {
        self.env = Arc::from(env);
        self
    }

    /// Materialized mode: DataNodes store and serve real bytes so kernels
    /// run functionally (end-to-end verification). Default is timing-only.
    pub fn materialized(mut self, materialized: bool) -> Self {
        self.materialized = materialized;
        self
    }

    /// Deploys the cluster: spawns the fabric, NameNode/DataNodes, and
    /// JobTracker/TaskTrackers into a fresh simulation. The deployed
    /// cluster retains the configs and environment factory, so sessions
    /// over it support dynamic membership
    /// ([`Session::add_node_at`](crate::Session::add_node_at) /
    /// [`Session::remove_node_at`](crate::Session::remove_node_at)).
    pub fn deploy(self) -> MrCluster {
        deploy_cluster_impl(
            self.seed,
            self.workers,
            self.net,
            self.dfs,
            self.mr,
            self.env.as_ref(),
            Some(self.env.clone()),
            self.materialized,
        )
    }
}

/// Fluent construction of a [`JobSpec`], optionally bundling the DFS
/// preloads the job's input depends on (carried to the
/// [`Session`](crate::Session) by [`JobRequest`]).
///
/// Required before [`build`](JobBuilder::build): an input
/// ([`input_file`](JobBuilder::input_file) or
/// [`synthetic`](JobBuilder::synthetic)) and a kernel
/// ([`kernel`](JobBuilder::kernel)). Everything else defaults to a
/// map-only job discarding its output.
#[derive(Clone)]
pub struct JobBuilder {
    name: String,
    input: Option<JobInput>,
    kernel: Option<Arc<dyn TaskKernel>>,
    num_map_tasks: Option<usize>,
    output: OutputSink,
    reduce: ReduceSpec,
    scheduler: Option<SchedulerPolicy>,
    tenant: String,
    weight: f64,
    deadline: Option<accelmr_des::SimTime>,
    preloads: Vec<PreloadSpec>,
}

impl JobBuilder {
    /// Starts a job description under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            input: None,
            kernel: None,
            num_map_tasks: None,
            output: OutputSink::Discard,
            reduce: ReduceSpec::None,
            scheduler: None,
            tenant: "default".into(),
            weight: 1.0,
            deadline: None,
            preloads: Vec::new(),
        }
    }

    /// Renames the job.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Data-intensive input: a DFS file split across map tasks. Record
    /// granularity defaults to one DFS block (64 MB, per the paper);
    /// override with [`record_bytes`](JobBuilder::record_bytes).
    pub fn input_file(mut self, path: impl Into<String>) -> Self {
        self.input = Some(JobInput::File {
            path: path.into(),
            record_bytes: None,
        });
        self
    }

    /// Record granularity of a file input. Panics if called before
    /// [`input_file`](JobBuilder::input_file).
    pub fn record_bytes(mut self, bytes: u64) -> Self {
        match &mut self.input {
            Some(JobInput::File { record_bytes, .. }) => *record_bytes = Some(bytes),
            _ => panic!("record_bytes requires input_file to be set first"),
        }
        self
    }

    /// CPU-intensive input: `total_units` synthetic work units split evenly
    /// across map tasks (the Pi estimator's samples).
    pub fn synthetic(mut self, total_units: u64) -> Self {
        self.input = Some(JobInput::Synthetic { total_units });
        self
    }

    /// An explicit [`JobInput`].
    pub fn input(mut self, input: JobInput) -> Self {
        self.input = Some(input);
        self
    }

    /// The map kernel.
    pub fn kernel(mut self, kernel: impl TaskKernel + 'static) -> Self {
        self.kernel = Some(Arc::new(kernel));
        self
    }

    /// The map kernel, pre-wrapped (shared or type-erased kernels).
    pub fn kernel_arc(mut self, kernel: Arc<dyn TaskKernel>) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Number of map tasks. Default: one per configured map slot (the
    /// paper's `NumMappers`).
    pub fn map_tasks(mut self, tasks: usize) -> Self {
        self.num_map_tasks = Some(tasks);
        self
    }

    /// An explicit [`OutputSink`].
    pub fn output(mut self, output: OutputSink) -> Self {
        self.output = output;
        self
    }

    /// Discard map output (the default; the paper's EmptyMapper shape).
    pub fn discard_output(mut self) -> Self {
        self.output = OutputSink::Discard;
        self
    }

    /// Account and digest map output without writing it back (kernel-level
    /// verification without write traffic).
    pub fn digest_output(mut self) -> Self {
        self.output = OutputSink::Digest;
        self
    }

    /// Write map output to a DFS directory (`<path>/part-NNNNN` per task).
    pub fn write_output(mut self, path: impl Into<String>, replication: Option<usize>) -> Self {
        self.output = OutputSink::Dfs {
            path: path.into(),
            replication,
        };
        self
    }

    /// An explicit [`ReduceSpec`].
    pub fn reduce(mut self, reduce: ReduceSpec) -> Self {
        self.reduce = reduce;
        self
    }

    /// Map-only job (the default).
    pub fn no_reduce(mut self) -> Self {
        self.reduce = ReduceSpec::None;
        self
    }

    /// Tiny per-task results aggregated at the JobTracker (the shape of
    /// Hadoop's PiEstimator).
    pub fn rpc_aggregate(mut self, reducer: impl ReduceKernel + 'static) -> Self {
        self.reduce = ReduceSpec::RpcAggregate {
            reducer: Arc::new(reducer),
        };
        self
    }

    /// Full shuffle into `reducers` reduce tasks.
    pub fn shuffle(
        mut self,
        reducers: usize,
        reducer: impl ReduceKernel + 'static,
        write_output: bool,
    ) -> Self {
        self.reduce = ReduceSpec::Shuffle {
            reducers,
            reducer: Arc::new(reducer),
            write_output,
        };
        self
    }

    /// Per-job scheduling policy, overriding the cluster default
    /// ([`MrConfig::scheduler`]). The job gets a private scheduler
    /// instance for its lifetime, so an adaptive override learns only
    /// from this job's own attempts.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = Some(policy);
        self
    }

    /// The tenant this job bills its slot usage to. Tenants are the unit
    /// of fair sharing: under
    /// [`SchedulerPolicy::FairShare`](crate::SchedulerPolicy)
    /// every free slot goes to the tenant with the smallest weighted
    /// running-slot share. Default: `"default"` (all jobs one tenant —
    /// fair-share then degenerates to FIFO between them).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Fair-share weight (> 0, default 1.0): the tenant's entitled slot
    /// share is proportional to its weight. Zero, negative, or non-finite
    /// weights are rejected at build time
    /// ([`JobSpecError::NonPositiveWeight`](crate::JobSpecError)).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Completion deadline, as an absolute simulated instant. Consumed by
    /// [`SchedulerPolicy::DeadlineSlack`](crate::SchedulerPolicy)
    /// (earliest-slack-first dispatch) and reported back through
    /// [`JobResult::deadline_met`](crate::JobResult::deadline_met). A
    /// deadline at or before the submission instant is rejected
    /// ([`JobSpecError::DeadlineInPast`](crate::JobSpecError)).
    pub fn deadline_at(mut self, deadline: accelmr_des::SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a DFS preload this job's input depends on; the session
    /// driver runs all preloads before submitting the job.
    pub fn preload(mut self, preload: PreloadSpec) -> Self {
        self.preloads.push(preload);
        self
    }

    /// Finishes the spec. Panics when no input or no kernel was set — both
    /// are required for a runnable job.
    pub fn build(self) -> JobSpec {
        self.request().spec
    }

    /// Finishes the spec together with its preloads, ready for
    /// [`Session::submit`](crate::Session::submit).
    pub fn request(self) -> JobRequest {
        let input = self.input.unwrap_or_else(|| {
            panic!(
                "JobBuilder '{}': no input set (input_file/synthetic)",
                self.name
            )
        });
        let kernel = self
            .kernel
            .unwrap_or_else(|| panic!("JobBuilder: no kernel set (kernel/kernel_arc)"));
        let spec = JobSpec {
            name: self.name,
            input,
            kernel,
            num_map_tasks: self.num_map_tasks,
            output: self.output,
            reduce: self.reduce,
            scheduler: self.scheduler,
            tenant: self.tenant,
            weight: self.weight,
            deadline: self.deadline,
        };
        // Build-time validation catches what needs no submission instant
        // (non-positive weights, a deadline at t=0); `Session::submit`
        // re-validates deadlines against the real submission time.
        if let Err(e) = spec.validate(accelmr_des::SimTime::ZERO) {
            panic!("JobBuilder '{}': invalid JobSpec: {e}", spec.name);
        }
        JobRequest {
            spec,
            preloads: self.preloads,
        }
    }
}

impl PreloadSpec {
    /// A preload of `len` bytes at `path`, content derived from `seed`,
    /// with default block size and replication.
    pub fn new(path: impl Into<String>, len: u64, seed: u64) -> Self {
        PreloadSpec {
            path: path.into(),
            len,
            block_size: None,
            replication: None,
            seed,
        }
    }

    /// Overrides the DFS block size.
    pub fn block_size(mut self, bytes: u64) -> Self {
        self.block_size = Some(bytes);
        self
    }

    /// Overrides the replication factor.
    pub fn replication(mut self, replicas: usize) -> Self {
        self.replication = Some(replicas);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{FixedCostKernel, SumReducer};

    #[test]
    fn job_builder_fills_spec() {
        let req = JobBuilder::new("j")
            .input_file("/f")
            .record_bytes(1 << 20)
            .kernel(FixedCostKernel::default())
            .map_tasks(3)
            .digest_output()
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            })
            .preload(
                PreloadSpec::new("/f", 4 << 20, 9)
                    .block_size(1 << 20)
                    .replication(2),
            )
            .request();
        assert_eq!(req.spec.name, "j");
        assert_eq!(req.spec.num_map_tasks, Some(3));
        assert_eq!(req.spec.output, OutputSink::Digest);
        assert_eq!(req.preloads.len(), 1);
        assert_eq!(req.preloads[0].block_size, Some(1 << 20));
        assert_eq!(req.preloads[0].replication, Some(2));
        match &req.spec.input {
            JobInput::File { path, record_bytes } => {
                assert_eq!(path, "/f");
                assert_eq!(*record_bytes, Some(1 << 20));
            }
            other => panic!("unexpected input {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no input")]
    fn job_builder_requires_input() {
        let _ = JobBuilder::new("x")
            .kernel(FixedCostKernel::default())
            .build();
    }

    #[test]
    #[should_panic(expected = "no kernel")]
    fn job_builder_requires_kernel() {
        let _ = JobBuilder::new("x").synthetic(1).build();
    }

    #[test]
    #[should_panic(expected = "record_bytes requires input_file")]
    fn record_bytes_requires_file_input() {
        let _ = JobBuilder::new("x").record_bytes(1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn cluster_builder_rejects_zero_workers() {
        let _ = ClusterBuilder::new().workers(0).deploy();
    }

    #[test]
    #[should_panic(expected = "invalid MrConfig")]
    fn cluster_builder_rejects_invalid_mr_config() {
        let bad = MrConfig {
            map_slots_per_node: 0,
            ..MrConfig::default()
        };
        let _ = ClusterBuilder::new().workers(2).mr(bad).deploy();
    }

    #[test]
    #[should_panic(expected = "tt_dead_after")]
    fn cluster_builder_rejects_dead_timeout_within_heartbeat() {
        let bad = MrConfig {
            tt_dead_after: accelmr_des::SimDuration::from_secs(2),
            heartbeat_interval: accelmr_des::SimDuration::from_secs(3),
            ..MrConfig::default()
        };
        let _ = ClusterBuilder::new().workers(2).mr(bad).deploy();
    }

    #[test]
    fn cluster_builder_deploys_workers() {
        let c = ClusterBuilder::new().workers(3).seed(9).deploy();
        assert_eq!(c.workers.len(), 3);
        assert_eq!(c.mr.tasktrackers.len(), 3);
    }
}
