//! Runtime-level scenario tests: scheduling, feed pipeline, fault
//! tolerance, speculation, shuffle — all without the hybrid/Cell layer
//! (kernels here are simple fixed-cost stand-ins).

use std::sync::Arc;

use accelmr_des::{SimDuration, SimTime};
use accelmr_dfs::DfsConfig;
use accelmr_net::NetConfig;

use crate::builder::{ClusterBuilder, JobBuilder};
use crate::cluster::{MrCluster, PreloadSpec};
use crate::config::{MrConfig, SchedulerPolicy};
use crate::job::{JobResult, JobSpec};
use crate::kernel::{FixedCostKernel, NodeEnv, SumReducer, TaskKernel, UnitsOutcome};
use crate::msgs::CrashTaskTracker;
use crate::session::JobRequest;

const MB: u64 = 1 << 20;

fn cluster(seed: u64, workers: usize, mr_cfg: MrConfig, materialized: bool) -> MrCluster {
    cluster_on(
        accelmr_net::FluidEngine::Incremental,
        seed,
        workers,
        mr_cfg,
        materialized,
    )
}

fn cluster_on(
    fluid: accelmr_net::FluidEngine,
    seed: u64,
    workers: usize,
    mr_cfg: MrConfig,
    materialized: bool,
) -> MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(workers)
        .dfs(DfsConfig::default())
        .net(NetConfig {
            fluid,
            ..NetConfig::default()
        })
        .mr(mr_cfg)
        .materialized(materialized)
        .deploy()
}

fn synthetic_spec(kernel: Arc<dyn TaskKernel>, units: u64, maps: Option<usize>) -> JobSpec {
    let builder = JobBuilder::new("synthetic")
        .synthetic(units)
        .kernel_arc(kernel)
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        });
    match maps {
        Some(n) => builder.map_tasks(n),
        None => builder,
    }
    .build()
}

/// Drives one job (plus its preloads) through a fresh [`Session`].
fn run_one(c: &mut MrCluster, preloads: Vec<PreloadSpec>, spec: JobSpec) -> JobResult {
    let mut session = c.session();
    session.submit(JobRequest { spec, preloads });
    session.run()
}

#[test]
fn synthetic_job_completes_and_aggregates() {
    let mut c = cluster(1, 4, MrConfig::default(), false);
    let kernel = Arc::new(FixedCostKernel::default());
    let result = run_one(&mut c, vec![], synthetic_spec(kernel, 1_000_000, None));
    assert!(result.succeeded);
    // Default task count = 2 slots × 4 nodes.
    assert_eq!(result.map_tasks, 8);
    assert_eq!(result.attempts, 8);
    assert_eq!(result.failed_attempts, 0);
    // Sum of per-task unit counts equals the total.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 1_000_000);
    // The job floor: init + heartbeat dispatch + task start + finalize.
    let floor = MrConfig::default().job_init_time + MrConfig::default().job_finalize_time;
    assert!(result.elapsed > floor);
    assert!(
        result.elapsed < SimDuration::from_secs(60),
        "{}",
        result.elapsed
    );
}

#[test]
fn file_job_processes_every_record_exactly_once() {
    let mut c = cluster(2, 3, MrConfig::default(), true);
    // 18 MB file, 1 MB records, 2 MB blocks.
    let preload = PreloadSpec {
        path: "/in".into(),
        len: 18 * MB,
        block_size: Some(2 * MB),
        replication: None,
        seed: 77,
    };
    let spec = JobBuilder::new("scan")
        .input_file("/in")
        .record_bytes(MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_millis(1),
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    assert_eq!(result.bytes_read, 18 * MB);

    // Exactly-once record accounting via the order-independent digest:
    // reproduce the expected digest locally.
    let mut expect = accelmr_kernels::UnorderedDigest::new();
    for r in 0..18u64 {
        let mut buf = vec![0u8; MB as usize];
        accelmr_kernels::fill_deterministic(77, r * MB, &mut buf);
        expect.add(accelmr_kernels::checksum(&buf));
    }
    assert_eq!(result.digest, expect.finish());
    assert_eq!(result.digest.1, 18);
}

#[test]
fn feed_cap_dominates_data_job_time() {
    // One node, one mapper slot, no pipelining interference: 4 records of
    // 8 MB at 8.5 MB/s ≈ 3.76 s of pure feed.
    let mr_cfg = MrConfig {
        map_slots_per_node: 1,
        ..MrConfig::default()
    };
    let mut c = cluster(3, 1, mr_cfg, false);
    let preload = PreloadSpec {
        path: "/d".into(),
        len: 32 * MB,
        block_size: Some(8 * MB),
        replication: None,
        seed: 1,
    };
    let spec = JobBuilder::new("feed")
        .input_file("/d")
        .record_bytes(8 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_micros(1), // compute ≈ free
            ..FixedCostKernel::default()
        })
        .map_tasks(1)
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    let feed_secs = (32 * MB) as f64 / 8.5e6;
    let total = result.elapsed.as_secs_f64();
    assert!(
        total > feed_secs,
        "job ({total:.2}s) cannot beat the feed path ({feed_secs:.2}s)"
    );
    // All overheads together stay bounded: floor < 25 s on top of feed.
    assert!(total < feed_secs + 25.0, "{total}");
    // Single node: every read local.
    assert_eq!(result.remote_reads, 0);
    assert!(result.local_reads > 0);
}

#[test]
fn pipelined_reads_overlap_compute() {
    let run = |pipelined: bool| -> JobResult {
        let mr_cfg = MrConfig {
            pipelined_reads: pipelined,
            map_slots_per_node: 1,
            ..MrConfig::default()
        };
        let mut c = cluster(4, 1, mr_cfg, false);
        let preload = PreloadSpec {
            path: "/p".into(),
            len: 192 * MB,
            block_size: Some(8 * MB),
            replication: None,
            seed: 2,
        };
        // Compute ≈ feed time per record: overlap halves the total.
        let spec = JobBuilder::new("pipe")
            .input_file("/p")
            .record_bytes(8 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_secs_f64(8.0 * MB as f64 / 8.5e6),
                ..FixedCostKernel::default()
            })
            .map_tasks(1)
            .build();
        run_one(&mut c, vec![preload], spec)
    };
    let with = run(true);
    let without = run(false);
    let speedup = without.elapsed.as_secs_f64() / with.elapsed.as_secs_f64();
    assert!(
        speedup > 1.5,
        "pipelining speedup {speedup:.2} (with={}, without={})",
        with.elapsed,
        without.elapsed
    );
    // Overlap shows up as vanishing feed stall relative to stop-and-wait:
    // every record wait beyond the first is hidden behind compute.
    assert!(with.elapsed + SimDuration::from_secs(15) < without.elapsed);
}

#[test]
fn locality_scheduler_beats_fifo() {
    let run = |policy: SchedulerPolicy| -> JobResult {
        let mr_cfg = MrConfig {
            scheduler: policy,
            ..MrConfig::default()
        };
        let mut c = cluster(5, 4, mr_cfg, false);
        // One block per task so a local assignment means a local read.
        let preload = PreloadSpec {
            path: "/l".into(),
            len: 64 * MB,
            block_size: Some(4 * MB),
            replication: None,
            seed: 3,
        };
        let spec = JobBuilder::new("loc")
            .input_file("/l")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_millis(5),
                ..FixedCostKernel::default()
            })
            .map_tasks(16)
            .build();
        run_one(&mut c, vec![preload], spec)
    };
    let local = run(SchedulerPolicy::LocalityFirst);
    let fifo = run(SchedulerPolicy::Fifo);
    let frac = |r: &JobResult| r.local_reads as f64 / (r.local_reads + r.remote_reads) as f64;
    assert!(
        frac(&local) > frac(&fifo),
        "locality {:.2} vs fifo {:.2}",
        frac(&local),
        frac(&fifo)
    );
    assert!(frac(&local) > 0.6, "{:.2}", frac(&local));
}

#[test]
fn tasktracker_crash_recovers_with_reexecution() {
    let mut c = cluster(6, 3, MrConfig::default(), true);
    // Replication 2 so the dead node's blocks stay readable.
    let preload = PreloadSpec {
        path: "/ft".into(),
        len: 24 * MB,
        block_size: Some(2 * MB),
        replication: Some(2),
        seed: 9,
    };
    let spec = JobBuilder::new("ft")
        .input_file("/ft")
        .record_bytes(2 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_secs(4),
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .build();
    // Crash node 1's TaskTracker 20 s in (mid-map), and abort its flows.
    let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(1)).unwrap();
    c.sim.post_after(
        victim_tt,
        Box::new(CrashTaskTracker),
        SimDuration::from_secs(20),
    );

    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    // Work was re-executed.
    assert!(
        result.attempts > result.map_tasks,
        "attempts {} should exceed tasks {}",
        result.attempts,
        result.map_tasks
    );
    // Exactly-once digest: re-executed tasks re-produce, losers discarded.
    let mut expect = accelmr_kernels::UnorderedDigest::new();
    for r in 0..12u64 {
        let mut buf = vec![0u8; 2 * MB as usize];
        accelmr_kernels::fill_deterministic(9, r * 2 * MB, &mut buf);
        expect.add(accelmr_kernels::checksum(&buf));
    }
    assert_eq!(result.digest, expect.finish());
    assert_eq!(c.sim.stats().counter("mr.tasktrackers_declared_dead"), 1);
}

/// Kernel whose task 0 is pathologically slow — a straggler generator.
#[derive(Debug)]
struct SkewKernel;

impl TaskKernel for SkewKernel {
    fn name(&self) -> &'static str {
        "skew"
    }

    fn map_record(
        &self,
        _env: &mut dyn NodeEnv,
        _rec: &crate::kernel::RecordCtx<'_>,
    ) -> crate::kernel::RecordOutcome {
        unreachable!("synthetic-only kernel")
    }

    fn map_units(&self, _env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let slowdown = if stream == 0 { 400 } else { 1 };
        UnitsOutcome {
            compute: SimDuration::from_nanos(100 * units * slowdown),
            kv: vec![(stream, units)],
        }
    }
}

#[test]
fn speculative_execution_duplicates_stragglers() {
    let mr_cfg = MrConfig {
        speculative: true,
        ..MrConfig::default()
    };
    let mut c = cluster(7, 4, mr_cfg, false);
    let result = run_one(
        &mut c,
        vec![],
        synthetic_spec(Arc::new(SkewKernel), 800_000, Some(8)),
    );
    assert!(result.succeeded);
    assert!(
        result.speculative_attempts >= 1,
        "expected speculation, got {}",
        result.speculative_attempts
    );
    // First completion wins; the duplicate's report is dropped, so each
    // task contributes its units exactly once.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 800_000);
}

#[test]
fn shuffle_reduce_runs_and_writes() {
    let mut c = cluster(8, 3, MrConfig::default(), false);
    let preload = PreloadSpec {
        path: "/sh".into(),
        len: 24 * MB,
        block_size: Some(4 * MB),
        replication: None,
        seed: 4,
    };
    // Map output = input (sorted runs), kept node-local for shuffle.
    let spec = JobBuilder::new("sortish")
        .input_file("/sh")
        .record_bytes(4 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_millis(50),
            output_ratio_percent: 100,
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .shuffle(
            3,
            SumReducer {
                cycles_per_byte: 2.0,
            },
            true,
        )
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    assert_eq!(result.reduce_tasks, 3);
    // Reducers fetched (roughly) all map output and wrote it back.
    assert!(result.bytes_output >= 24 * MB, "{}", result.bytes_output);
    assert!(c.sim.stats().counter("dfs.blocks_allocated") > 0);
    assert!(c.sim.stats().counter("mr.shuffles_started") == 1);
}

/// Scenarios exercising every pre-refactor scheduling code path (FIFO
/// pick, locality pick, straggler speculation, liveness re-queue, reduce
/// dispatch), each returning the full event-trace fingerprint of the run
/// plus the job makespan. The golden values asserted in
/// `ported_schedulers_are_trace_equivalent` were recorded from the
/// pre-refactor `JobTracker` (scheduling inlined as a two-arm `match`);
/// the extracted `sched::{Fifo, LocalityFirst}` must reproduce them event
/// for event. `fluid` selects the fabric rate engine: the golden streams
/// predate the incremental engine, so the fingerprint test runs
/// [`accelmr_net::FluidEngine::Reference`], while
/// `fluid_engines_agree_on_seed_scenarios` runs both and compares
/// makespans.
pub(crate) fn sched_trace_scenarios(
    fluid: accelmr_net::FluidEngine,
) -> Vec<(&'static str, u64, u64, SimDuration)> {
    let mut out = Vec::new();

    // FIFO + speculation: exercises Fifo::pick_task and pick_straggler.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::Fifo,
            speculative: true,
            ..MrConfig::default()
        };
        let mut c = cluster_on(fluid, 21, 4, cfg, false);
        c.sim.enable_trace(16);
        let r = run_one(
            &mut c,
            vec![],
            synthetic_spec(Arc::new(SkewKernel), 800_000, Some(8)),
        );
        assert!(r.succeeded);
        out.push((
            "fifo+speculative",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            r.elapsed,
        ));
    }

    // LocalityFirst over a block-per-task file job: exercises the
    // locality-preferring pick.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::LocalityFirst,
            ..MrConfig::default()
        };
        let mut c = cluster_on(fluid, 22, 4, cfg, false);
        c.sim.enable_trace(16);
        let preload = PreloadSpec {
            path: "/l".into(),
            len: 64 * MB,
            block_size: Some(4 * MB),
            replication: None,
            seed: 3,
        };
        let spec = JobBuilder::new("loc")
            .input_file("/l")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_millis(5),
                ..FixedCostKernel::default()
            })
            .map_tasks(16)
            .build();
        let r = run_one(&mut c, vec![preload], spec);
        assert!(r.succeeded);
        out.push((
            "locality-file",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            r.elapsed,
        ));
    }

    // LocalityFirst + TaskTracker crash + shuffle: exercises the liveness
    // re-queue path and reduce-task dispatch.
    {
        let mut c = cluster_on(fluid, 23, 3, MrConfig::default(), false);
        c.sim.enable_trace(16);
        let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(1)).unwrap();
        c.sim.post_after(
            victim_tt,
            Box::new(CrashTaskTracker),
            SimDuration::from_secs(20),
        );
        let preload = PreloadSpec {
            path: "/sh".into(),
            len: 24 * MB,
            block_size: Some(4 * MB),
            replication: Some(2),
            seed: 4,
        };
        let spec = JobBuilder::new("crash-shuffle")
            .input_file("/sh")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_secs(4),
                output_ratio_percent: 100,
                ..FixedCostKernel::default()
            })
            .map_tasks(6)
            .shuffle(
                3,
                SumReducer {
                    cycles_per_byte: 2.0,
                },
                true,
            )
            .build();
        let r = run_one(&mut c, vec![preload], spec);
        assert!(r.succeeded);
        out.push((
            "crash-shuffle",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            r.elapsed,
        ));
    }

    out
}

/// Multi-job scenarios exercising the *job-level* dispatch order of the
/// heartbeat loop: several concurrent jobs (staggered arrivals, different
/// task policies, speculation, and a churn wave over the elastic paths)
/// whose event streams pin down which job each free slot went to. The
/// golden fingerprints in `job_level_dispatch_is_trace_equivalent` were
/// recorded *before* the dispatch loop was refactored to consult
/// [`Scheduler::pick_job`]; the default (lowest-job-id) picker must
/// reproduce them event for event.
pub(crate) fn job_level_trace_scenarios(
    fluid: accelmr_net::FluidEngine,
) -> Vec<(&'static str, u64, u64, SimDuration)> {
    let mut out = Vec::new();

    // Three staggered FIFO jobs with speculation: pins the regular-then-
    // speculative interleaving *across* jobs (job 0's duplicates dispatch
    // before job 1's queue is touched).
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::Fifo,
            speculative: true,
            ..MrConfig::default()
        };
        let mut c = cluster_on(fluid, 61, 4, cfg, false);
        c.sim.enable_trace(16);
        let mut session = c.session();
        session.submit(synthetic_spec(Arc::new(SkewKernel), 600_000, Some(8)));
        session.submit_after(
            SimDuration::from_secs(4),
            JobRequest {
                spec: synthetic_spec(Arc::new(FixedCostKernel::default()), 400_000, Some(6)),
                preloads: vec![],
            },
        );
        session.submit_after(
            SimDuration::from_secs(9),
            JobRequest {
                spec: synthetic_spec(Arc::new(SkewKernel), 300_000, Some(4)),
                preloads: vec![],
            },
        );
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "fifo-multi",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    // Two concurrent LocalityFirst file jobs over distinct files: slots
    // alternate between jobs as queues drain, with locality picks inside
    // each job.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::LocalityFirst,
            ..MrConfig::default()
        };
        let mut c = cluster_on(fluid, 62, 4, cfg, false);
        c.sim.enable_trace(16);
        let file_job = |name: &str, path: &str, seed: u64| JobRequest {
            spec: JobBuilder::new(name)
                .input_file(path)
                .record_bytes(4 * MB)
                .kernel(FixedCostKernel {
                    per_record: SimDuration::from_millis(5),
                    ..FixedCostKernel::default()
                })
                .map_tasks(8)
                .build(),
            preloads: vec![PreloadSpec {
                path: path.into(),
                len: 32 * MB,
                block_size: Some(4 * MB),
                replication: None,
                seed,
            }],
        };
        let mut session = c.session();
        session.submit(file_job("loc-a", "/a", 13));
        session.submit(file_job("loc-b", "/b", 14));
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "locality-multi",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    // Two concurrent adaptive jobs on a half-turbo cluster: the learned
    // model (oversplit, tail guard, weighted dispatch) decides within each
    // job while job order interleaves across heartbeats.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::adaptive(),
            ..MrConfig::default()
        };
        let mut c = ClusterBuilder::new()
            .seed(63)
            .workers(4)
            .net(NetConfig {
                fluid,
                ..NetConfig::default()
            })
            .mr(cfg)
            .env(HalfTurboFactory)
            .deploy();
        c.sim.enable_trace(16);
        let job = |units: u64| JobRequest {
            spec: JobBuilder::new("hetero")
                .synthetic(units)
                .kernel(HeteroKernel)
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                })
                .build(),
            preloads: vec![],
        };
        let mut session = c.session();
        session.submit(job(600_000_000));
        session.submit_after(SimDuration::from_secs(6), job(300_000_000));
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "adaptive-multi",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    // A churn wave (join + leave mid-map) under two concurrent jobs: the
    // PR 4 elastic paths (join replan, heartbeat discovery, death requeue)
    // composed with multi-job dispatch.
    {
        let cfg = MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            ..MrConfig::default()
        };
        let mut c = ClusterBuilder::new()
            .seed(64)
            .workers(4)
            .net(NetConfig {
                fluid,
                ..NetConfig::default()
            })
            .mr(cfg)
            .dfs(DfsConfig {
                dead_after: SimDuration::from_secs(12),
                ..DfsConfig::default()
            })
            .deploy();
        c.sim.enable_trace(16);
        let mut session = c.session();
        session.churn(crate::session::ChurnSchedule::wave(
            1,
            &[accelmr_net::NodeId(2)],
            SimDuration::from_secs(12),
            SimDuration::from_secs(6),
        ));
        session.submit(JobRequest {
            spec: JobBuilder::new("churn-file")
                .input_file("/cf")
                .record_bytes(2 * MB)
                .kernel(FixedCostKernel {
                    per_record: SimDuration::from_secs(2),
                    ..FixedCostKernel::default()
                })
                .map_tasks(12)
                .digest_output()
                .build(),
            preloads: vec![PreloadSpec {
                path: "/cf".into(),
                len: 24 * MB,
                block_size: Some(2 * MB),
                replication: Some(2),
                seed: 15,
            }],
        });
        session.submit_after(
            SimDuration::from_secs(5),
            JobRequest {
                spec: synthetic_spec(Arc::new(FixedCostKernel::default()), 2_000_000, Some(8)),
                preloads: vec![],
            },
        );
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "churn-multi",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    out
}

/// Liveness-heavy scenarios exercising the paths rewritten by the
/// heartbeat-scalability PR: death detection (expiry-heap `check_liveness`
/// instead of the full-tracker scan), incremental slot accounting
/// (`total_slots` / per-job running counters feeding `running_slots` and
/// `running_incomplete`), and blacklist decay. Both policies that *consume*
/// the incremental counters are on the clock: FairShare (weighted shares
/// from running slots) under a join+leave churn wave, and DeadlineSlack
/// (slack from running incomplete tasks) across a mid-map node death.
pub(crate) fn liveness_trace_scenarios(
    fluid: accelmr_net::FluidEngine,
) -> Vec<(&'static str, u64, u64, SimDuration)> {
    let mut out = Vec::new();

    // FairShare, two tenants, churn wave with a join and a leave: shares
    // are computed from running-slot counts on every free slot while the
    // cluster's live-tracker set changes under it.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::FairShare,
            tt_dead_after: SimDuration::from_secs(12),
            ..MrConfig::default()
        };
        let mut c = ClusterBuilder::new()
            .seed(71)
            .workers(4)
            .net(NetConfig {
                fluid,
                ..NetConfig::default()
            })
            .mr(cfg)
            .dfs(DfsConfig {
                dead_after: SimDuration::from_secs(12),
                ..DfsConfig::default()
            })
            .deploy();
        c.sim.enable_trace(16);
        let mut session = c.session();
        session.churn(crate::session::ChurnSchedule::wave(
            1,
            &[accelmr_net::NodeId(3)],
            SimDuration::from_secs(10),
            SimDuration::from_secs(8),
        ));
        let tenant_job = |tenant: &str, units: u64| JobRequest {
            spec: JobBuilder::new("fair")
                .synthetic(units)
                .kernel(FixedCostKernel {
                    per_record: SimDuration::from_micros(40),
                    ..FixedCostKernel::default()
                })
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                })
                .map_tasks(8)
                .tenant(tenant)
                .build(),
            preloads: vec![],
        };
        session.submit(tenant_job("alpha", 800_000));
        session.submit(tenant_job("beta", 600_000));
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "fair-churn",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    // DeadlineSlack, one deadline job and one deadline-less, with a
    // TaskTracker crash mid-map: slack estimates consume the in-flight
    // incomplete-task count right through the death re-queue.
    {
        let cfg = MrConfig {
            scheduler: SchedulerPolicy::DeadlineSlack,
            tt_dead_after: SimDuration::from_secs(12),
            ..MrConfig::default()
        };
        let mut c = ClusterBuilder::new()
            .seed(72)
            .workers(3)
            .net(NetConfig {
                fluid,
                ..NetConfig::default()
            })
            .mr(cfg)
            .dfs(DfsConfig {
                dead_after: SimDuration::from_secs(12),
                ..DfsConfig::default()
            })
            .deploy();
        c.sim.enable_trace(16);
        let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(2)).unwrap();
        c.sim.post_after(
            victim_tt,
            Box::new(CrashTaskTracker),
            SimDuration::from_secs(15),
        );
        let mut session = c.session();
        session.submit(JobRequest {
            spec: JobBuilder::new("urgent")
                .synthetic(900_000)
                .kernel(FixedCostKernel {
                    per_record: SimDuration::from_micros(60),
                    ..FixedCostKernel::default()
                })
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                })
                .map_tasks(9)
                .deadline_at(accelmr_des::SimTime::ZERO + SimDuration::from_secs(120))
                .build(),
            preloads: vec![],
        });
        session.submit_after(
            SimDuration::from_secs(4),
            JobRequest {
                spec: synthetic_spec(Arc::new(FixedCostKernel::default()), 500_000, Some(6)),
                preloads: vec![],
            },
        );
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        let makespan = rs.iter().map(|r| r.elapsed).max().unwrap();
        out.push((
            "deadline-crash",
            c.sim.trace().fingerprint(),
            c.sim.trace().recorded(),
            makespan,
        ));
    }

    out
}

/// Golden fingerprints for [`liveness_trace_scenarios`], recorded from the
/// pre-rewrite liveness/slot-accounting code (full-scan `check_liveness`,
/// per-call `total_slots`, per-dispatch `Vec<TaskView>` materialization).
/// The expiry-heap + incremental-counter rewrite must reproduce these
/// event streams bit for bit.
#[test]
fn liveness_rewrite_is_trace_equivalent() {
    let golden = [
        ("fair-churn", 0x3d5d2624d131fd37_u64, 305_u64),
        ("deadline-crash", 0xf1ebcfa67f4c34f8, 317),
    ];
    let got = liveness_trace_scenarios(accelmr_net::FluidEngine::Incremental);
    assert_eq!(got.len(), golden.len());
    for ((name, fp, events, _), (gname, gfp, gevents)) in got.iter().zip(golden.iter()) {
        assert_eq!(name, gname);
        assert_eq!(
            (fp, events),
            (gfp, gevents),
            "scenario '{name}' diverged from the pre-rewrite event stream"
        );
    }
}

/// A node that joins one tick before the liveness sweep fires must not be
/// declared dead before it ever had a chance to heartbeat. Registration
/// seeds the liveness clock (`last_heartbeat = now`) and the expiry-heap
/// entry for both trackers; losing either seed would let the sweep see a
/// full silence window and kill the joiner on arrival. The windows here
/// are tight — sweeps every 3 s, death after 4 s of silence, the join
/// 0.1 s before a sweep — and the first real heartbeat is jittered up to
/// a full interval after spawn, so the 9 s sweep runs while the joiner is
/// still silent.
#[test]
fn joiner_survives_liveness_tick_before_first_heartbeat() {
    let cfg = MrConfig {
        tt_dead_after: SimDuration::from_secs(4),
        ..MrConfig::default()
    };
    let mut c = ClusterBuilder::new()
        .seed(81)
        .workers(3)
        .net(NetConfig::default())
        .mr(cfg)
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(4),
            ..DfsConfig::default()
        })
        .deploy();
    let mut session = c.session();
    // Sweeps fire at t = 3, 6, 9, 12 s; the join lands at 8.9 s.
    let joined = session
        .churn(crate::session::ChurnSchedule::new().join_at(SimDuration::from_millis(8_900)));
    assert_eq!(joined.len(), 1);
    session.submit(JobRequest {
        spec: JobBuilder::new("join-race")
            .synthetic(1_500_000)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_micros(40),
                ..FixedCostKernel::default()
            })
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            })
            .map_tasks(12)
            .build(),
        preloads: vec![],
    });
    let rs = session.run_until_complete();
    assert!(rs.iter().all(|r| r.succeeded));
    // `mr.node_joins` counts every first registration, deploy workers
    // included: 3 at deploy plus the churn joiner.
    assert_eq!(c.sim.stats().counter("mr.node_joins"), 4);
    assert_eq!(c.sim.stats().counter("dfs.datanodes_joined"), 1);
    // The joiner stayed alive through every sweep: no false deaths on
    // either control plane, and no resurrection papering one over.
    assert_eq!(c.sim.stats().counter("mr.tasktrackers_declared_dead"), 0);
    assert_eq!(c.sim.stats().counter("dfs.datanodes_declared_dead"), 0);
    assert_eq!(c.sim.stats().counter("mr.tt_resurrections"), 0);
}

/// Golden multi-job trace fingerprints, recorded from the pre-`pick_job`
/// dispatch loop (jobs visited in ascending id order, each drained regular-
/// then-speculative). The refactored loop under the default job picker must
/// be event-for-event identical — FIFO equivalence is proven, not assumed.
#[test]
fn job_level_dispatch_is_trace_equivalent() {
    let golden = [
        ("fifo-multi", 0x9a1ca458ab8578f6_u64, 363_u64),
        ("locality-multi", 0xf3bb77ffaf2218f9, 369),
        ("adaptive-multi", 0x3af9198a1d79f86a, 721),
        ("churn-multi", 0x536941477aa3c44a, 609),
    ];
    let got = job_level_trace_scenarios(accelmr_net::FluidEngine::Reference);
    assert_eq!(got.len(), golden.len());
    for ((name, fp, events, _), (gname, gfp, gevents)) in got.iter().zip(golden.iter()) {
        assert_eq!(name, gname);
        assert_eq!(
            (fp, events),
            (gfp, gevents),
            "scenario '{name}' diverged from the pre-refactor event stream"
        );
    }
}

/// Trace-equivalence proof for the scheduler extraction: these
/// fingerprints (full event streams: every message, timer and delivery
/// time of the whole run) were recorded from the pre-refactor JobTracker,
/// where scheduling was a two-arm `match` inlined at `pick_task`. The
/// extracted `sched::Fifo` / `sched::LocalityFirst` must reproduce them
/// bit for bit — any behavioral drift in dispatch, speculation, split
/// arithmetic or recovery shows up here.
///
/// The golden streams were recorded against the original fabric rate
/// engine, which `FluidEngine::Reference` preserves event-for-event; the
/// default incremental engine coalesces same-instant flow starts behind a
/// deferred wakeup, so its event *stream* legitimately differs while its
/// completion *times* do not (`fluid_engines_agree_on_seed_scenarios`).
///
/// `crash-shuffle` was re-recorded once, deliberately, for the dynamic
/// membership PR: a map output lost to a node death during the *reduce*
/// phase is now re-executed (with its folded contributions subtracted),
/// instead of the shuffle silently "fetching" from the crashed machine.
/// The crash-free scenarios still pin the original pre-refactor streams
/// bit for bit.
#[test]
fn ported_schedulers_are_trace_equivalent() {
    let golden = [
        ("fifo+speculative", 0xc55290eb28bae88a_u64, 238u64),
        ("locality-file", 0xa79d359b4826c89a, 379),
        ("crash-shuffle", 0x5e25d5594256259f, 614),
    ];
    let got = sched_trace_scenarios(accelmr_net::FluidEngine::Reference);
    assert_eq!(got.len(), golden.len());
    for ((name, fp, events, _), (gname, gfp, gevents)) in got.iter().zip(golden.iter()) {
        assert_eq!(name, gname);
        assert_eq!(
            (fp, events),
            (gfp, gevents),
            "scenario '{name}' diverged from the pre-refactor event stream"
        );
    }
}

/// Fabric-engine equivalence at the MapReduce level: the incremental
/// fluid engine must reproduce the reference engine's job makespans on
/// the seed scenarios (map dispatch, speculation, shuffle, crash
/// recovery) to within a microsecond.
#[test]
fn fluid_engines_agree_on_seed_scenarios() {
    let incremental = sched_trace_scenarios(accelmr_net::FluidEngine::Incremental);
    let reference = sched_trace_scenarios(accelmr_net::FluidEngine::Reference);
    assert_eq!(incremental.len(), reference.len());
    for ((name, _, _, ei), (rname, _, _, er)) in incremental.iter().zip(reference.iter()) {
        assert_eq!(name, rname);
        let di = ei.as_secs_f64();
        let dr = er.as_secs_f64();
        assert!(
            (di - dr).abs() < 1e-6,
            "scenario '{name}': incremental makespan {di}s vs reference {dr}s"
        );
    }
}

#[test]
fn deterministic_runs_from_same_seed() {
    let run_fp = || {
        let mut c = cluster(42, 3, MrConfig::default(), false);
        c.sim.enable_trace(1 << 12);
        let preload = PreloadSpec {
            path: "/det".into(),
            len: 16 * MB,
            block_size: Some(4 * MB),
            replication: None,
            seed: 5,
        };
        let spec = JobBuilder::new("det")
            .input_file("/det")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel::default())
            .map_tasks(4)
            .build();
        let result = run_one(&mut c, vec![preload], spec);
        (result.elapsed, c.sim.trace().fingerprint())
    };
    let (e1, f1) = run_fp();
    let (e2, f2) = run_fp();
    assert_eq!(e1, e2);
    assert_eq!(f1, f2);
}

#[test]
fn missing_input_fails_gracefully() {
    let mut c = cluster(10, 2, MrConfig::default(), false);
    let spec = JobBuilder::new("missing")
        .input_file("/does-not-exist")
        .kernel(FixedCostKernel::default())
        .build();
    let result = run_one(&mut c, vec![], spec);
    assert!(!result.succeeded);
    assert_eq!(result.map_tasks, 0);
}

/// FIFO regression: dispatch order equals submission order, and stays
/// stable across a kill/re-queue. The pending queue is only ever popped at
/// the scheduler's pick and *appended* on re-queue, so first dispatches
/// come out in `TaskId` order and a re-executed task re-dispatches after
/// everything that was already waiting — exactly what `Fifo::pick_task`'s
/// unconditional index `0` relies on.
#[test]
fn fifo_dispatch_order_is_submission_order_across_requeue() {
    let cfg = MrConfig {
        scheduler: SchedulerPolicy::Fifo,
        ..MrConfig::default()
    };
    let mut c = cluster(31, 3, cfg, false);
    let preload = PreloadSpec {
        path: "/fifo".into(),
        len: 24 * MB,
        block_size: Some(2 * MB),
        replication: Some(2),
        seed: 6,
    };
    let spec = JobBuilder::new("fifo-order")
        .input_file("/fifo")
        .record_bytes(2 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_secs(4),
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .build();
    // Crash a TaskTracker mid-map so its running tasks get re-queued.
    let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(1)).unwrap();
    c.sim.post_after(
        victim_tt,
        Box::new(CrashTaskTracker),
        SimDuration::from_secs(20),
    );
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.scheduler, "fifo");
    // The crash actually forced re-execution…
    assert!(result.attempts > result.map_tasks);
    assert_eq!(result.dispatch_log.len() as u32, result.attempts);
    // …yet first dispatches still came out in submission order.
    let mut first_order = Vec::new();
    for &(t, _) in &result.dispatch_log {
        if !first_order.contains(&t) {
            first_order.push(t);
        }
    }
    let expected: Vec<crate::config::TaskId> =
        (0..result.map_tasks).map(crate::config::TaskId).collect();
    assert_eq!(
        first_order, expected,
        "FIFO must dispatch in submission order"
    );
    // And a re-queued task was re-dispatched strictly after its first try.
    let reexecuted: Vec<_> = expected
        .iter()
        .filter(|t| {
            result
                .dispatch_log
                .iter()
                .filter(|&&(x, _)| x == **t)
                .count()
                > 1
        })
        .collect();
    assert!(
        !reexecuted.is_empty(),
        "expected at least one re-queued task"
    );
}

/// Fault tolerance during the *reduce* phase: a TaskTracker dying while
/// its reduce attempt runs must lead to re-execution on a surviving node
/// and a correct final aggregate (existing fault tests only killed during
/// map).
#[test]
fn tasktracker_death_during_reduce_reexecutes_reduce() {
    let mut c = cluster(32, 3, MrConfig::default(), false);
    let preload = PreloadSpec {
        path: "/rd".into(),
        len: 16 * MB,
        block_size: Some(4 * MB),
        replication: Some(2),
        seed: 8,
    };
    // Fast maps, long reduce merges (~66 s each): a crash at t=45 s lands
    // squarely inside the reduce phase.
    let spec = JobBuilder::new("reduce-death")
        .input_file("/rd")
        .record_bytes(4 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_millis(1),
            output_ratio_percent: 100,
            ..FixedCostKernel::default()
        })
        .map_tasks(4)
        .shuffle(
            3,
            SumReducer {
                cycles_per_byte: 4.0e4,
            },
            false,
        )
        .build();
    let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(1)).unwrap();
    c.sim.post_after(
        victim_tt,
        Box::new(CrashTaskTracker),
        SimDuration::from_secs(45),
    );
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 4);
    assert_eq!(result.reduce_tasks, 3);
    assert_eq!(c.sim.stats().counter("mr.tasktrackers_declared_dead"), 1);
    // A reduce task (ids after the maps) was dispatched more than once:
    // the dead tracker's attempt vanished and was re-executed.
    let reduce_redispatched = (result.map_tasks..result.map_tasks + result.reduce_tasks)
        .map(crate::config::TaskId)
        .any(|t| result.dispatch_log.iter().filter(|&&(x, _)| x == t).count() > 1);
    assert!(
        reduce_redispatched,
        "expected a reduce re-execution; dispatch_log: {:?}",
        result.dispatch_log
    );
    assert!(result.attempts > result.map_tasks + result.reduce_tasks);
    // The aggregate is still exactly right: one pair per record mapped.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 4, "SumReducer must see each record exactly once");
}

/// A per-job scheduler override beats the cluster default, and the result
/// reports which policy actually drove the job.
#[test]
fn per_job_scheduler_override_beats_cluster_default() {
    let cfg = MrConfig {
        scheduler: SchedulerPolicy::LocalityFirst,
        ..MrConfig::default()
    };
    let mut c = cluster(33, 2, cfg, false);
    let kernel = Arc::new(FixedCostKernel::default());
    let mut session = c.session();
    let with_default = session.submit(
        JobBuilder::new("default")
            .synthetic(10_000)
            .kernel_arc(kernel.clone())
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    let with_override = session.submit(
        JobBuilder::new("override")
            .synthetic(10_000)
            .kernel_arc(kernel)
            .scheduler(SchedulerPolicy::Fifo)
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    session.run_until_complete();
    assert_eq!(with_default.result().scheduler, "locality-first");
    assert_eq!(with_override.result().scheduler, "fifo");
    // Dispatch accounting: one log entry per attempt, counts add up.
    let r = with_default.result();
    assert_eq!(r.dispatch_log.len() as u32, r.attempts);
    let counted: u32 = r.dispatch_counts().iter().map(|&(_, n)| n).sum();
    assert_eq!(counted, r.attempts);
    // Non-adaptive policies learn no throughput model.
    assert!(r.node_throughput.is_empty());
}

/// Environment marker for the mapred-level heterogeneous tests: nodes
/// carrying it are "accelerated".
#[derive(Debug, Default)]
struct TurboEnv;

impl NodeEnv for TurboEnv {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Every other node gets a [`TurboEnv`] (node indices 0, 2, …).
#[derive(Clone, Copy)]
struct HalfTurboFactory;

impl crate::kernel::NodeEnvFactory for HalfTurboFactory {
    fn build(&self, node_index: usize) -> Box<dyn NodeEnv> {
        if node_index.is_multiple_of(2) {
            Box::new(TurboEnv)
        } else {
            Box::new(crate::kernel::NullEnv)
        }
    }
}

/// Synthetic kernel 10x faster on [`TurboEnv`] nodes — the mapred-level
/// stand-in for the hybrid crate's adaptive Cell kernels.
#[derive(Debug, Clone, Copy)]
struct HeteroKernel;

impl TaskKernel for HeteroKernel {
    fn name(&self) -> &'static str {
        "hetero-units"
    }

    fn map_record(
        &self,
        _env: &mut dyn NodeEnv,
        _rec: &crate::kernel::RecordCtx<'_>,
    ) -> crate::kernel::RecordOutcome {
        unreachable!("synthetic-only kernel")
    }

    fn map_units(&self, env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let per_unit_ns = if env.as_any_mut().downcast_mut::<TurboEnv>().is_some() {
            40
        } else {
            400
        };
        UnitsOutcome {
            compute: SimDuration::from_nanos(per_unit_ns * units),
            kv: vec![(stream, units)],
        }
    }
}

fn run_hetero_units(policy: SchedulerPolicy, seed: u64) -> JobResult {
    let cfg = MrConfig {
        scheduler: policy,
        ..MrConfig::default()
    };
    let mut c = ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .mr(cfg)
        .env(HalfTurboFactory)
        .deploy();
    let mut session = c.session();
    session.submit(
        JobBuilder::new("hetero")
            .synthetic(2_000_000_000)
            .kernel(HeteroKernel)
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    session.run()
}

/// The tentpole's end-to-end claim at the runtime level: on a cluster
/// where half the nodes are 10x faster, [`AdaptiveHetero`]'s oversplit +
/// throughput-weighted dispatch beats placement-blind scheduling, and the
/// result exposes the learned per-node model.
#[test]
fn adaptive_beats_locality_on_heterogeneous_synthetic_cluster() {
    let base = run_hetero_units(SchedulerPolicy::LocalityFirst, 34);
    let adaptive = run_hetero_units(SchedulerPolicy::adaptive(), 34);
    assert!(base.succeeded && adaptive.succeeded);
    // Work conservation under oversplit/weighted plans.
    let total = |r: &JobResult| r.kv.iter().map(|&(_, v)| v).sum::<u64>();
    assert_eq!(total(&base), 2_000_000_000);
    assert_eq!(total(&adaptive), 2_000_000_000);
    assert_eq!(adaptive.scheduler, "adaptive-hetero");
    // Strictly faster end to end.
    assert!(
        adaptive.elapsed < base.elapsed,
        "adaptive {} vs locality {}",
        adaptive.elapsed,
        base.elapsed
    );
    // The learned model separates the two node classes.
    let tp = &adaptive.node_throughput;
    assert_eq!(tp.len(), 4, "{tp:?}");
    let max = tp.iter().map(|e| e.throughput).fold(f64::MIN, f64::max);
    let min = tp.iter().map(|e| e.throughput).fold(f64::MAX, f64::min);
    assert!(max / min > 3.0, "learned spread {max}/{min}");
    // Fast nodes were handed more attempts than slow ones.
    let counts = adaptive.dispatch_counts();
    let fast: u32 = counts
        .iter()
        .filter(|&&(n, _)| n.0 % 2 == 1) // node index 0,2 → NodeId 1,3
        .map(|&(_, c)| c)
        .sum();
    let slow: u32 = counts
        .iter()
        .filter(|&&(n, _)| n.0 % 2 == 0)
        .map(|&(_, c)| c)
        .sum();
    assert!(fast > slow, "fast {fast} vs slow {slow} ({counts:?})");
}

/// Cross-job learning through the cluster-wide adaptive scheduler: the
/// first job of a session runs on the unlearned oversplit plan; the second
/// job of the same kernel family gets throughput-weighted splits (one per
/// slot) because the model already knows the cluster's speed spread.
#[test]
fn adaptive_learns_across_jobs_in_a_session() {
    let cfg = MrConfig {
        scheduler: SchedulerPolicy::adaptive(),
        ..MrConfig::default()
    };
    let mut c = ClusterBuilder::new()
        .seed(35)
        .workers(4)
        .mr(cfg)
        .env(HalfTurboFactory)
        .deploy();
    let job = || {
        JobBuilder::new("learn")
            .synthetic(400_000_000)
            .kernel(HeteroKernel)
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            })
    };
    let mut session = c.session();
    let first = session.submit(job());
    session.run();
    let mut session = c.session();
    let second = session.submit(job());
    session.run();
    // 4 workers × 2 slots = 8 slots; oversplit 3x → 24 tasks unlearned.
    assert_eq!(first.result().map_tasks, 24);
    // Learned: one split per slot, weighted by node speed.
    assert_eq!(second.result().map_tasks, 8);
    assert!(!second.result().node_throughput.is_empty());
}

#[test]
fn heartbeat_pacing_sets_minimum_job_time() {
    // A trivial job cannot beat the init + dispatch + finalize floor.
    let mut c = cluster(11, 2, MrConfig::default(), false);
    let kernel = Arc::new(FixedCostKernel {
        per_unit_ns: 0,
        ..FixedCostKernel::default()
    });
    let result = run_one(&mut c, vec![], synthetic_spec(kernel, 1, Some(1)));
    let cfg = MrConfig::default();
    let hard_floor = cfg.job_init_time
        + cfg.task_start_overhead
        + cfg.task_cleanup_overhead
        + cfg.job_finalize_time;
    assert!(
        result.elapsed > hard_floor,
        "elapsed {} vs floor {}",
        result.elapsed,
        hard_floor
    );
    // And the sim clock actually advanced past t=0.
    assert!(c.sim.now() > SimTime::ZERO);
}
