//! Runtime-level scenario tests: scheduling, feed pipeline, fault
//! tolerance, speculation, shuffle — all without the hybrid/Cell layer
//! (kernels here are simple fixed-cost stand-ins).

use std::sync::Arc;

use accelmr_des::{SimDuration, SimTime};
use accelmr_dfs::DfsConfig;
use accelmr_net::NetConfig;

use crate::builder::{ClusterBuilder, JobBuilder};
use crate::cluster::{MrCluster, PreloadSpec};
use crate::config::{MrConfig, SchedulerPolicy};
use crate::job::{JobResult, JobSpec};
use crate::kernel::{FixedCostKernel, NodeEnv, SumReducer, TaskKernel, UnitsOutcome};
use crate::msgs::CrashTaskTracker;
use crate::session::JobRequest;

const MB: u64 = 1 << 20;

fn cluster(seed: u64, workers: usize, mr_cfg: MrConfig, materialized: bool) -> MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(workers)
        .dfs(DfsConfig::default())
        .net(NetConfig::default())
        .mr(mr_cfg)
        .materialized(materialized)
        .deploy()
}

fn synthetic_spec(kernel: Arc<dyn TaskKernel>, units: u64, maps: Option<usize>) -> JobSpec {
    let builder = JobBuilder::new("synthetic")
        .synthetic(units)
        .kernel_arc(kernel)
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        });
    match maps {
        Some(n) => builder.map_tasks(n),
        None => builder,
    }
    .build()
}

/// Drives one job (plus its preloads) through a fresh [`Session`].
fn run_one(c: &mut MrCluster, preloads: Vec<PreloadSpec>, spec: JobSpec) -> JobResult {
    let mut session = c.session();
    session.submit(JobRequest { spec, preloads });
    session.run()
}

#[test]
fn synthetic_job_completes_and_aggregates() {
    let mut c = cluster(1, 4, MrConfig::default(), false);
    let kernel = Arc::new(FixedCostKernel::default());
    let result = run_one(&mut c, vec![], synthetic_spec(kernel, 1_000_000, None));
    assert!(result.succeeded);
    // Default task count = 2 slots × 4 nodes.
    assert_eq!(result.map_tasks, 8);
    assert_eq!(result.attempts, 8);
    assert_eq!(result.failed_attempts, 0);
    // Sum of per-task unit counts equals the total.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 1_000_000);
    // The job floor: init + heartbeat dispatch + task start + finalize.
    let floor = MrConfig::default().job_init_time + MrConfig::default().job_finalize_time;
    assert!(result.elapsed > floor);
    assert!(
        result.elapsed < SimDuration::from_secs(60),
        "{}",
        result.elapsed
    );
}

#[test]
fn file_job_processes_every_record_exactly_once() {
    let mut c = cluster(2, 3, MrConfig::default(), true);
    // 18 MB file, 1 MB records, 2 MB blocks.
    let preload = PreloadSpec {
        path: "/in".into(),
        len: 18 * MB,
        block_size: Some(2 * MB),
        replication: None,
        seed: 77,
    };
    let spec = JobBuilder::new("scan")
        .input_file("/in")
        .record_bytes(MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_millis(1),
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    assert_eq!(result.bytes_read, 18 * MB);

    // Exactly-once record accounting via the order-independent digest:
    // reproduce the expected digest locally.
    let mut expect = accelmr_kernels::UnorderedDigest::new();
    for r in 0..18u64 {
        let mut buf = vec![0u8; MB as usize];
        accelmr_kernels::fill_deterministic(77, r * MB, &mut buf);
        expect.add(accelmr_kernels::checksum(&buf));
    }
    assert_eq!(result.digest, expect.finish());
    assert_eq!(result.digest.1, 18);
}

#[test]
fn feed_cap_dominates_data_job_time() {
    // One node, one mapper slot, no pipelining interference: 4 records of
    // 8 MB at 8.5 MB/s ≈ 3.76 s of pure feed.
    let mr_cfg = MrConfig {
        map_slots_per_node: 1,
        ..MrConfig::default()
    };
    let mut c = cluster(3, 1, mr_cfg, false);
    let preload = PreloadSpec {
        path: "/d".into(),
        len: 32 * MB,
        block_size: Some(8 * MB),
        replication: None,
        seed: 1,
    };
    let spec = JobBuilder::new("feed")
        .input_file("/d")
        .record_bytes(8 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_micros(1), // compute ≈ free
            ..FixedCostKernel::default()
        })
        .map_tasks(1)
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    let feed_secs = (32 * MB) as f64 / 8.5e6;
    let total = result.elapsed.as_secs_f64();
    assert!(
        total > feed_secs,
        "job ({total:.2}s) cannot beat the feed path ({feed_secs:.2}s)"
    );
    // All overheads together stay bounded: floor < 25 s on top of feed.
    assert!(total < feed_secs + 25.0, "{total}");
    // Single node: every read local.
    assert_eq!(result.remote_reads, 0);
    assert!(result.local_reads > 0);
}

#[test]
fn pipelined_reads_overlap_compute() {
    let run = |pipelined: bool| -> JobResult {
        let mr_cfg = MrConfig {
            pipelined_reads: pipelined,
            map_slots_per_node: 1,
            ..MrConfig::default()
        };
        let mut c = cluster(4, 1, mr_cfg, false);
        let preload = PreloadSpec {
            path: "/p".into(),
            len: 192 * MB,
            block_size: Some(8 * MB),
            replication: None,
            seed: 2,
        };
        // Compute ≈ feed time per record: overlap halves the total.
        let spec = JobBuilder::new("pipe")
            .input_file("/p")
            .record_bytes(8 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_secs_f64(8.0 * MB as f64 / 8.5e6),
                ..FixedCostKernel::default()
            })
            .map_tasks(1)
            .build();
        run_one(&mut c, vec![preload], spec)
    };
    let with = run(true);
    let without = run(false);
    let speedup = without.elapsed.as_secs_f64() / with.elapsed.as_secs_f64();
    assert!(
        speedup > 1.5,
        "pipelining speedup {speedup:.2} (with={}, without={})",
        with.elapsed,
        without.elapsed
    );
    // Overlap shows up as vanishing feed stall relative to stop-and-wait:
    // every record wait beyond the first is hidden behind compute.
    assert!(with.elapsed + SimDuration::from_secs(15) < without.elapsed);
}

#[test]
fn locality_scheduler_beats_fifo() {
    let run = |policy: SchedulerPolicy| -> JobResult {
        let mr_cfg = MrConfig {
            scheduler: policy,
            ..MrConfig::default()
        };
        let mut c = cluster(5, 4, mr_cfg, false);
        // One block per task so a local assignment means a local read.
        let preload = PreloadSpec {
            path: "/l".into(),
            len: 64 * MB,
            block_size: Some(4 * MB),
            replication: None,
            seed: 3,
        };
        let spec = JobBuilder::new("loc")
            .input_file("/l")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel {
                per_record: SimDuration::from_millis(5),
                ..FixedCostKernel::default()
            })
            .map_tasks(16)
            .build();
        run_one(&mut c, vec![preload], spec)
    };
    let local = run(SchedulerPolicy::LocalityFirst);
    let fifo = run(SchedulerPolicy::Fifo);
    let frac = |r: &JobResult| r.local_reads as f64 / (r.local_reads + r.remote_reads) as f64;
    assert!(
        frac(&local) > frac(&fifo),
        "locality {:.2} vs fifo {:.2}",
        frac(&local),
        frac(&fifo)
    );
    assert!(frac(&local) > 0.6, "{:.2}", frac(&local));
}

#[test]
fn tasktracker_crash_recovers_with_reexecution() {
    let mut c = cluster(6, 3, MrConfig::default(), true);
    // Replication 2 so the dead node's blocks stay readable.
    let preload = PreloadSpec {
        path: "/ft".into(),
        len: 24 * MB,
        block_size: Some(2 * MB),
        replication: Some(2),
        seed: 9,
    };
    let spec = JobBuilder::new("ft")
        .input_file("/ft")
        .record_bytes(2 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_secs(4),
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .build();
    // Crash node 1's TaskTracker 20 s in (mid-map), and abort its flows.
    let victim_tt = c.mr.tasktracker_on(accelmr_net::NodeId(1)).unwrap();
    c.sim.post_after(
        victim_tt,
        Box::new(CrashTaskTracker),
        SimDuration::from_secs(20),
    );

    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    // Work was re-executed.
    assert!(
        result.attempts > result.map_tasks,
        "attempts {} should exceed tasks {}",
        result.attempts,
        result.map_tasks
    );
    // Exactly-once digest: re-executed tasks re-produce, losers discarded.
    let mut expect = accelmr_kernels::UnorderedDigest::new();
    for r in 0..12u64 {
        let mut buf = vec![0u8; 2 * MB as usize];
        accelmr_kernels::fill_deterministic(9, r * 2 * MB, &mut buf);
        expect.add(accelmr_kernels::checksum(&buf));
    }
    assert_eq!(result.digest, expect.finish());
    assert_eq!(c.sim.stats().counter("mr.tasktrackers_declared_dead"), 1);
}

/// Kernel whose task 0 is pathologically slow — a straggler generator.
#[derive(Debug)]
struct SkewKernel;

impl TaskKernel for SkewKernel {
    fn name(&self) -> &'static str {
        "skew"
    }

    fn map_record(
        &self,
        _env: &mut dyn NodeEnv,
        _rec: &crate::kernel::RecordCtx<'_>,
    ) -> crate::kernel::RecordOutcome {
        unreachable!("synthetic-only kernel")
    }

    fn map_units(&self, _env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let slowdown = if stream == 0 { 400 } else { 1 };
        UnitsOutcome {
            compute: SimDuration::from_nanos(100 * units * slowdown),
            kv: vec![(stream, units)],
        }
    }
}

#[test]
fn speculative_execution_duplicates_stragglers() {
    let mr_cfg = MrConfig {
        speculative: true,
        ..MrConfig::default()
    };
    let mut c = cluster(7, 4, mr_cfg, false);
    let result = run_one(
        &mut c,
        vec![],
        synthetic_spec(Arc::new(SkewKernel), 800_000, Some(8)),
    );
    assert!(result.succeeded);
    assert!(
        result.speculative_attempts >= 1,
        "expected speculation, got {}",
        result.speculative_attempts
    );
    // First completion wins; the duplicate's report is dropped, so each
    // task contributes its units exactly once.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 800_000);
}

#[test]
fn shuffle_reduce_runs_and_writes() {
    let mut c = cluster(8, 3, MrConfig::default(), false);
    let preload = PreloadSpec {
        path: "/sh".into(),
        len: 24 * MB,
        block_size: Some(4 * MB),
        replication: None,
        seed: 4,
    };
    // Map output = input (sorted runs), kept node-local for shuffle.
    let spec = JobBuilder::new("sortish")
        .input_file("/sh")
        .record_bytes(4 * MB)
        .kernel(FixedCostKernel {
            per_record: SimDuration::from_millis(50),
            output_ratio_percent: 100,
            ..FixedCostKernel::default()
        })
        .map_tasks(6)
        .digest_output()
        .shuffle(
            3,
            SumReducer {
                cycles_per_byte: 2.0,
            },
            true,
        )
        .build();
    let result = run_one(&mut c, vec![preload], spec);
    assert!(result.succeeded);
    assert_eq!(result.map_tasks, 6);
    assert_eq!(result.reduce_tasks, 3);
    // Reducers fetched (roughly) all map output and wrote it back.
    assert!(result.bytes_output >= 24 * MB, "{}", result.bytes_output);
    assert!(c.sim.stats().counter("dfs.blocks_allocated") > 0);
    assert!(c.sim.stats().counter("mr.shuffles_started") == 1);
}

#[test]
fn deterministic_runs_from_same_seed() {
    let run_fp = || {
        let mut c = cluster(42, 3, MrConfig::default(), false);
        c.sim.enable_trace(1 << 12);
        let preload = PreloadSpec {
            path: "/det".into(),
            len: 16 * MB,
            block_size: Some(4 * MB),
            replication: None,
            seed: 5,
        };
        let spec = JobBuilder::new("det")
            .input_file("/det")
            .record_bytes(4 * MB)
            .kernel(FixedCostKernel::default())
            .map_tasks(4)
            .build();
        let result = run_one(&mut c, vec![preload], spec);
        (result.elapsed, c.sim.trace().fingerprint())
    };
    let (e1, f1) = run_fp();
    let (e2, f2) = run_fp();
    assert_eq!(e1, e2);
    assert_eq!(f1, f2);
}

#[test]
fn missing_input_fails_gracefully() {
    let mut c = cluster(10, 2, MrConfig::default(), false);
    let spec = JobBuilder::new("missing")
        .input_file("/does-not-exist")
        .kernel(FixedCostKernel::default())
        .build();
    let result = run_one(&mut c, vec![], spec);
    assert!(!result.succeeded);
    assert_eq!(result.map_tasks, 0);
}

#[test]
fn heartbeat_pacing_sets_minimum_job_time() {
    // A trivial job cannot beat the init + dispatch + finalize floor.
    let mut c = cluster(11, 2, MrConfig::default(), false);
    let kernel = Arc::new(FixedCostKernel {
        per_unit_ns: 0,
        ..FixedCostKernel::default()
    });
    let result = run_one(&mut c, vec![], synthetic_spec(kernel, 1, Some(1)));
    let cfg = MrConfig::default();
    let hard_floor = cfg.job_init_time
        + cfg.task_start_overhead
        + cfg.task_cleanup_overhead
        + cfg.job_finalize_time;
    assert!(
        result.elapsed > hard_floor,
        "elapsed {} vs floor {}",
        result.elapsed,
        hard_floor
    );
    // And the sim clock actually advanced past t=0.
    assert!(c.sim.now() > SimTime::ZERO);
}
