//! Cluster assembly and synchronous job-driving helpers.
//!
//! The preferred deployment surface is [`ClusterBuilder`](crate::ClusterBuilder)
//! and the preferred driving surface is [`Session`]; the
//! positional [`deploy_cluster`] / blocking [`run_job`] helpers remain as
//! deprecated wrappers over them.

use std::sync::{Arc, Mutex};

use accelmr_des::prelude::*;
use accelmr_dfs::DfsHandle;
use accelmr_net::{NetHandle, NodeId, NodeRegistry};

use crate::config::MrConfig;
use crate::job::{JobResult, JobSpec};
use crate::jobtracker::{JobTracker, RegisterTaskTracker};
use crate::kernel::NodeEnvFactory;
use crate::msgs::SubmitJob;
use crate::session::{ElasticCtx, JobRequest, Session};
use crate::tasktracker::TaskTracker;

/// Handle to a deployed MapReduce runtime.
#[derive(Clone)]
pub struct MrHandle {
    /// The JobTracker actor.
    pub jobtracker: ActorId,
    /// Node the JobTracker runs on.
    pub head_node: NodeId,
    /// Live `node → TaskTracker actor` registry. Shared (not a snapshot):
    /// joins and departures are visible to every handle clone immediately.
    pub tasktrackers: NodeRegistry,
    /// The network fabric.
    pub net: NetHandle,
}

impl MrHandle {
    /// TaskTracker actor on `node`, if any.
    pub fn tasktracker_on(&self, node: NodeId) -> Option<ActorId> {
        self.tasktrackers.get(node)
    }

    /// Submits a job; the calling actor receives
    /// [`JobComplete`](crate::msgs::JobComplete).
    pub fn submit(&self, ctx: &mut Ctx<'_>, my_node: NodeId, spec: JobSpec) {
        let submit = SubmitJob {
            spec,
            reply: ctx.self_id(),
            reply_node: my_node,
        };
        self.net
            .unicast(ctx, my_node, self.head_node, self.jobtracker, 4096, submit);
    }
}

/// Spawns the JobTracker (head node) and one TaskTracker per worker, wired
/// to an existing DFS deployment. `env_factory` builds each node's
/// accelerator environment (the hybrid crate supplies Cell machines here).
pub fn deploy_mr(
    sim: &mut Sim,
    net: NetHandle,
    dfs: &DfsHandle,
    cfg: &MrConfig,
    head_node: NodeId,
    workers: &[NodeId],
    env_factory: &dyn NodeEnvFactory,
) -> MrHandle {
    // Guard the low-level assembly path too, not just ClusterBuilder:
    // these configs hang jobs or mis-detect dead trackers.
    if let Err(e) = cfg.validate() {
        panic!("invalid MrConfig: {e}");
    }
    let jobtracker = sim.spawn(Box::new(JobTracker::new(
        cfg.clone(),
        net,
        dfs.clone(),
        head_node,
    )));
    let mut tts = Vec::with_capacity(workers.len());
    for (i, &w) in workers.iter().enumerate() {
        let tt = TaskTracker::new(
            cfg.clone(),
            net,
            dfs.clone(),
            w,
            head_node,
            jobtracker,
            env_factory.build(i),
        );
        let id = sim.spawn(Box::new(tt));
        tts.push((w, id));
        sim.post(
            jobtracker,
            Box::new(RegisterTaskTracker { node: w, actor: id }),
        );
    }
    MrHandle {
        jobtracker,
        head_node,
        tasktrackers: NodeRegistry::new(tts),
        net,
    }
}

/// A file to preload before running a job.
#[derive(Clone, Debug)]
pub struct PreloadSpec {
    /// DFS path.
    pub path: String,
    /// Length in bytes.
    pub len: u64,
    /// Block size override.
    pub block_size: Option<u64>,
    /// Replication override.
    pub replication: Option<usize>,
    /// Content seed.
    pub seed: u64,
}

/// Preloads `preloads`, submits `spec` from the head node, runs the
/// simulation to completion, and returns the job result.
#[deprecated(
    since = "0.1.0",
    note = "use `Session`: `let mut s = cluster.session(); s.submit(job); s.run()`"
)]
pub fn run_job(
    sim: &mut Sim,
    mr: &MrHandle,
    dfs: &DfsHandle,
    preloads: Vec<PreloadSpec>,
    spec: JobSpec,
) -> JobResult {
    let mut session = Session::new(sim, mr.clone(), dfs.clone());
    session.submit(JobRequest { spec, preloads });
    session.run()
}

/// Everything a deployed simulation needs in one bundle.
pub struct MrCluster {
    /// The simulation world.
    pub sim: Sim,
    /// Network handle.
    pub net: NetHandle,
    /// DFS handle.
    pub dfs: DfsHandle,
    /// MapReduce handle.
    pub mr: MrHandle,
    /// Worker node ids present at deploy (joins are not appended here;
    /// consult `mr.tasktrackers` / `dfs.datanodes` for the live set).
    pub workers: Vec<NodeId>,
    /// Elasticity context retained for mid-session joins: the configs and
    /// environment factory new nodes are built from. `None` on the
    /// deprecated positional deployment path, where `Session::add_node_at`
    /// is unavailable.
    pub(crate) elastic: Option<ElasticCtx>,
}

/// One-call positional deployment: fabric + DFS + MapReduce over
/// `n_workers` nodes.
#[deprecated(
    since = "0.1.0",
    note = "use `ClusterBuilder` (named setters with defaults) instead"
)]
pub fn deploy_cluster(
    seed: u64,
    n_workers: usize,
    net_cfg: accelmr_net::NetConfig,
    dfs_cfg: accelmr_dfs::DfsConfig,
    mr_cfg: MrConfig,
    env_factory: &dyn NodeEnvFactory,
    materialized: bool,
) -> MrCluster {
    deploy_cluster_impl(
        seed,
        n_workers,
        net_cfg,
        dfs_cfg,
        mr_cfg,
        env_factory,
        None,
        materialized,
    )
}

/// Deployment shared by [`ClusterBuilder`](crate::ClusterBuilder) and the
/// deprecated [`deploy_cluster`]: both paths spawn the same actors in the
/// same order, so they are event-for-event identical. `retained_env` is
/// the same factory as `env_factory`, kept (builder path only) so joined
/// nodes can build their environments mid-session.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deploy_cluster_impl(
    seed: u64,
    n_workers: usize,
    net_cfg: accelmr_net::NetConfig,
    dfs_cfg: accelmr_dfs::DfsConfig,
    mr_cfg: MrConfig,
    env_factory: &dyn NodeEnvFactory,
    retained_env: Option<Arc<dyn NodeEnvFactory>>,
    materialized: bool,
) -> MrCluster {
    // A workerless cluster can never complete a job: the JobTracker would
    // wait forever for TaskTrackers that don't exist.
    assert!(n_workers > 0, "cluster needs at least one worker node");
    // Reject configs that would hang or mis-detect dead trackers (zero
    // slots, zero heartbeat, dead-timeout within one heartbeat). Call
    // `MrConfig::validate` directly for the typed error.
    if let Err(e) = mr_cfg.validate() {
        panic!("invalid MrConfig: {e}");
    }
    let mut sim = Sim::new(seed);
    let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
    let fabric = sim.spawn(Box::new(accelmr_net::Fabric::new(net_cfg, n_workers + 1)));
    let net = NetHandle { fabric };
    let dfs = accelmr_dfs::deploy_dfs(
        &mut sim,
        net,
        &dfs_cfg,
        NodeId::HEAD,
        &workers,
        materialized,
    );
    let mr = deploy_mr(
        &mut sim,
        net,
        &dfs,
        &mr_cfg,
        NodeId::HEAD,
        &workers,
        env_factory,
    );
    let elastic = retained_env.map(|env| ElasticCtx {
        dfs_cfg,
        mr_cfg,
        materialized,
        env,
        // Worker ids are 1..=n_workers; the next join gets the next id.
        next_node: Arc::new(Mutex::new(n_workers as u32 + 1)),
    });
    MrCluster {
        sim,
        net,
        dfs,
        mr,
        workers,
        elastic,
    }
}
