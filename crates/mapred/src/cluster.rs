//! Cluster assembly and synchronous job-driving helpers.

use std::sync::{Arc, Mutex};

use accelmr_des::prelude::*;
use accelmr_dfs::msgs::{PreloadDone, PreloadFile};
use accelmr_dfs::DfsHandle;
use accelmr_net::{NetHandle, NodeId};

use crate::config::MrConfig;
use crate::job::{JobResult, JobSpec};
use crate::jobtracker::{JobTracker, RegisterTaskTracker};
use crate::kernel::NodeEnvFactory;
use crate::msgs::{JobComplete, SubmitJob};
use crate::tasktracker::TaskTracker;

/// Handle to a deployed MapReduce runtime.
#[derive(Clone)]
pub struct MrHandle {
    /// The JobTracker actor.
    pub jobtracker: ActorId,
    /// Node the JobTracker runs on.
    pub head_node: NodeId,
    /// `(node, actor)` of every TaskTracker.
    pub tasktrackers: Arc<Vec<(NodeId, ActorId)>>,
    /// The network fabric.
    pub net: NetHandle,
}

impl MrHandle {
    /// TaskTracker actor on `node`, if any.
    pub fn tasktracker_on(&self, node: NodeId) -> Option<ActorId> {
        self.tasktrackers
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, a)| a)
    }

    /// Submits a job; the calling actor receives [`JobComplete`].
    pub fn submit(&self, ctx: &mut Ctx<'_>, my_node: NodeId, spec: JobSpec) {
        let submit = SubmitJob {
            spec,
            reply: ctx.self_id(),
            reply_node: my_node,
        };
        self.net
            .unicast(ctx, my_node, self.head_node, self.jobtracker, 4096, submit);
    }
}

/// Spawns the JobTracker (head node) and one TaskTracker per worker, wired
/// to an existing DFS deployment. `env_factory` builds each node's
/// accelerator environment (the hybrid crate supplies Cell machines here).
pub fn deploy_mr(
    sim: &mut Sim,
    net: NetHandle,
    dfs: &DfsHandle,
    cfg: &MrConfig,
    head_node: NodeId,
    workers: &[NodeId],
    env_factory: &dyn NodeEnvFactory,
) -> MrHandle {
    let jobtracker = sim.spawn(Box::new(JobTracker::new(
        cfg.clone(),
        net,
        dfs.clone(),
        head_node,
    )));
    let mut tts = Vec::with_capacity(workers.len());
    for (i, &w) in workers.iter().enumerate() {
        let tt = TaskTracker::new(
            cfg.clone(),
            net,
            dfs.clone(),
            w,
            head_node,
            jobtracker,
            env_factory.build(i),
        );
        let id = sim.spawn(Box::new(tt));
        tts.push((w, id));
        sim.post(jobtracker, Box::new(RegisterTaskTracker { node: w, actor: id }));
    }
    MrHandle {
        jobtracker,
        head_node,
        tasktrackers: Arc::new(tts),
        net,
    }
}

/// A file to preload before running a job.
#[derive(Clone, Debug)]
pub struct PreloadSpec {
    /// DFS path.
    pub path: String,
    /// Length in bytes.
    pub len: u64,
    /// Block size override.
    pub block_size: Option<u64>,
    /// Replication override.
    pub replication: Option<usize>,
    /// Content seed.
    pub seed: u64,
}

/// Driver actor: preloads files, submits one job, captures the result.
struct JobDriver {
    mr: MrHandle,
    dfs: DfsHandle,
    node: NodeId,
    preloads: Vec<PreloadSpec>,
    preloads_left: usize,
    spec: Option<JobSpec>,
    out: Arc<Mutex<Option<JobResult>>>,
    stop_when_done: bool,
}

impl Actor for JobDriver {
    fn name(&self) -> String {
        "mr.jobdriver".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                if self.preloads.is_empty() {
                    let spec = self.spec.take().expect("spec present");
                    let node = self.node;
                    self.mr.submit(ctx, node, spec);
                } else {
                    let me = ctx.self_id();
                    for p in &self.preloads {
                        ctx.send(
                            self.dfs.namenode,
                            PreloadFile {
                                path: p.path.clone(),
                                len: p.len,
                                block_size: p.block_size,
                                replication: p.replication,
                                seed: p.seed,
                                reply: me,
                            },
                        );
                    }
                }
            }
            Event::Msg { msg, .. } => {
                if msg.is::<PreloadDone>() {
                    self.preloads_left -= 1;
                    if self.preloads_left == 0 {
                        if let Some(spec) = self.spec.take() {
                            let node = self.node;
                            self.mr.submit(ctx, node, spec);
                        }
                    }
                } else if msg.is::<JobComplete>() {
                    let done = msg.downcast::<JobComplete>().expect("checked");
                    *self.out.lock().unwrap() = Some(done.result);
                    if self.stop_when_done {
                        ctx.stop();
                    }
                }
            }
            _ => {}
        }
    }
}

/// Preloads `preloads`, submits `spec` from the head node, runs the
/// simulation to completion, and returns the job result.
pub fn run_job(
    sim: &mut Sim,
    mr: &MrHandle,
    dfs: &DfsHandle,
    preloads: Vec<PreloadSpec>,
    spec: JobSpec,
) -> JobResult {
    let out = Arc::new(Mutex::new(None));
    let preloads_left = preloads.len();
    sim.spawn(Box::new(JobDriver {
        mr: mr.clone(),
        dfs: dfs.clone(),
        node: mr.head_node,
        preloads,
        preloads_left,
        spec: Some(spec),
        out: out.clone(),
        stop_when_done: true,
    }));
    sim.run();
    let result = out.lock().unwrap().take();
    result.expect("job did not complete — simulation drained without a JobComplete")
}

/// Everything a deployed simulation needs in one bundle.
pub struct MrCluster {
    /// The simulation world.
    pub sim: Sim,
    /// Network handle.
    pub net: NetHandle,
    /// DFS handle.
    pub dfs: DfsHandle,
    /// MapReduce handle.
    pub mr: MrHandle,
    /// Worker node ids.
    pub workers: Vec<NodeId>,
}

/// One-call deployment: fabric + DFS + MapReduce over `n_workers` nodes.
pub fn deploy_cluster(
    seed: u64,
    n_workers: usize,
    net_cfg: accelmr_net::NetConfig,
    dfs_cfg: accelmr_dfs::DfsConfig,
    mr_cfg: MrConfig,
    env_factory: &dyn NodeEnvFactory,
    materialized: bool,
) -> MrCluster {
    let mut sim = Sim::new(seed);
    let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
    let fabric = sim.spawn(Box::new(accelmr_net::Fabric::new(net_cfg, n_workers + 1)));
    let net = NetHandle { fabric };
    let dfs = accelmr_dfs::deploy_dfs(&mut sim, net, &dfs_cfg, NodeId::HEAD, &workers, materialized);
    let mr = deploy_mr(&mut sim, net, &dfs, &mr_cfg, NodeId::HEAD, &workers, env_factory);
    MrCluster {
        sim,
        net,
        dfs,
        mr,
        workers,
    }
}
