//! MapReduce runtime configuration and identifiers.

use accelmr_des::SimDuration;

/// Job identifier, assigned by the JobTracker.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

/// Task identifier, unique within a job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task_{:05}", self.0)
    }
}

/// Task scheduling policy. Each arm names a [`Scheduler`](crate::sched::Scheduler)
/// implementation the JobTracker instantiates at deploy time (or per job,
/// via [`JobBuilder::scheduler`](crate::JobBuilder::scheduler)).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SchedulerPolicy {
    /// Prefer tasks whose input blocks live on the requesting node — the
    /// Hadoop default the paper relies on ("it tries to minimize the number
    /// of remote blocks accesses").
    LocalityFirst,
    /// Plain FIFO, ignoring placement (ablation baseline).
    Fifo,
    /// Heterogeneity-aware adaptive dispatch: learns per-node, per-kernel
    /// throughput online (EWMA over completed attempts) and weights
    /// dispatch, split sizing, and speculative-copy placement toward
    /// faster nodes — the remedy for the mixed-cluster straggler effect
    /// the paper anticipated in §V.
    Adaptive(AdaptiveTuning),
    /// Multi-tenant weighted fair sharing at the *job* level: every free
    /// slot goes to the tenant with the smallest weighted running-slot
    /// share (weighted max-min, starvation-free by construction), FIFO
    /// within a tenant, locality-preferring within a job. See
    /// [`FairShare`](crate::sched::FairShare).
    FairShare,
    /// Deadline-aware dispatch: jobs carrying a deadline
    /// ([`JobBuilder::deadline_at`](crate::JobBuilder::deadline_at)) are
    /// served earliest-slack-first (EDF refined by remaining-work
    /// estimates from learned task durations); deadline-less jobs share
    /// the remaining slots fair-share. See
    /// [`DeadlineSlack`](crate::sched::DeadlineSlack).
    DeadlineSlack,
}

impl SchedulerPolicy {
    /// The adaptive policy with default tuning.
    pub fn adaptive() -> Self {
        SchedulerPolicy::Adaptive(AdaptiveTuning::default())
    }
}

/// Tuning knobs of the [`SchedulerPolicy::Adaptive`] scheduler.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AdaptiveTuning {
    /// EWMA smoothing factor for per-node throughput observations
    /// (`rate ← alpha·obs + (1-alpha)·rate`).
    pub ewma_alpha: f64,
    /// Before any throughput is learned, synthetic/file inputs are split
    /// into `oversplit × total slots` tasks (instead of one per slot), so
    /// demand-driven dispatch lets fast nodes pull proportionally more
    /// work — the paper's per-node-slots knob generalized.
    pub oversplit: f64,
    /// A node whose learned throughput is below `tail_fraction × best` is
    /// held back from the queue tail (it would turn the last tasks into
    /// stragglers); the guard engages once the pending queue fits into the
    /// fast nodes' slots.
    pub tail_fraction: f64,
    /// Minimum max/min learned-throughput ratio before split sizing
    /// switches from uniform to throughput-weighted.
    pub spread_threshold: f64,
}

impl Default for AdaptiveTuning {
    fn default() -> Self {
        AdaptiveTuning {
            ewma_alpha: 0.4,
            oversplit: 3.0,
            tail_fraction: 0.5,
            spread_threshold: 1.5,
        }
    }
}

/// Wasted-work budget for preemptive slot reclamation
/// ([`Scheduler::reclaim`](crate::sched::Scheduler::reclaim)).
///
/// Preemption kills running map attempts to hand their slots to
/// under-served tenants or negative-slack deadline jobs; every kill
/// discards the victim's partial progress. These knobs bound that waste
/// and the kill/requeue thrash it could otherwise spiral into. The
/// default is **disabled** (`max_kills_per_job == 0`), which keeps every
/// event trace byte-identical to the non-preemptive runtime.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PreemptionTuning {
    /// Lifetime cap on preemption kills a single victim job may suffer.
    /// `0` disables preemption entirely (the default).
    pub max_kills_per_job: u32,
    /// Attempts younger than this are never named as victims — killing an
    /// attempt that has barely started saves little wall-clock for the
    /// beneficiary but still pays full kill/requeue/restart overhead.
    pub min_attempt_age: SimDuration,
    /// After a task's attempt is preempted, the *task* may not be
    /// re-victimized within this window, so a requeued task that lands on
    /// another node is not immediately killed again (kill-same-work
    /// thrash). One beneficiary may still claim slots on several nodes in
    /// one heartbeat round — the cooldown is per-task, not global.
    pub cooldown: SimDuration,
    /// [`DeadlineSlack`](crate::sched::DeadlineSlack) preempts once a
    /// deadline job's slack falls below this margin (not only when it
    /// goes negative): the kill only frees a slot at the victim node's
    /// *next* heartbeat, so waiting for slack zero would reclaim too
    /// late to matter.
    pub slack_margin: SimDuration,
}

impl PreemptionTuning {
    /// Whether this tuning enables preemption at all.
    pub fn enabled(&self) -> bool {
        self.max_kills_per_job > 0
    }

    /// An enabled preset with the budget the `sched_ablation` fairness
    /// scenario runs under: up to 64 kills per victim job, 5 s minimum
    /// victim age, 15 s per-task cooldown, 90 s of deadline slack margin.
    /// The generous margin is deliberate: preempting *early* picks
    /// victims that have invested little runtime yet (youngest-first),
    /// which is what keeps the wasted work under the fairness bench's
    /// 10%-of-slot-seconds bar — a tight margin reclaims late from old,
    /// expensive attempts. The kill cap is sized as a backstop against
    /// runaway thrash, not as the steady-state governor: with long batch
    /// attempts the freshly requeued restarts are always the youngest
    /// candidates, so sustained interactive arrivals concentrate kills on
    /// one victim job, and a tight cap would cut that job's (cheap)
    /// restarts off mid-burst and strand late deadline jobs instead.
    pub fn balanced() -> Self {
        PreemptionTuning {
            max_kills_per_job: 64,
            min_attempt_age: SimDuration::from_secs(5),
            cooldown: SimDuration::from_secs(15),
            slack_margin: SimDuration::from_secs(90),
        }
    }
}

impl Default for PreemptionTuning {
    fn default() -> Self {
        PreemptionTuning {
            max_kills_per_job: 0,
            min_attempt_age: SimDuration::from_secs(5),
            cooldown: SimDuration::from_secs(15),
            slack_margin: SimDuration::from_secs(30),
        }
    }
}

/// A rejected [`MrConfig`], detected at deploy time ([`MrConfig::validate`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MrConfigError {
    /// `map_slots_per_node == 0`: no TaskTracker could ever run a task, so
    /// every job would hang forever.
    ZeroMapSlots,
    /// `heartbeat_interval` is zero: heartbeats (and with them dispatch and
    /// liveness checking) would never be paced.
    ZeroHeartbeatInterval,
    /// `tt_dead_after <= heartbeat_interval`: a healthy TaskTracker would
    /// be declared dead between two of its own heartbeats.
    DeadTimeoutTooShort {
        /// Configured heartbeat period.
        heartbeat_interval: SimDuration,
        /// Configured death timeout.
        tt_dead_after: SimDuration,
    },
    /// A chaos-hardening knob is set to a value that disables the very
    /// machinery it configures (zero timeout/threshold, or a retry
    /// backoff below 1.0 that would *shrink* timeouts under pressure).
    InvalidHardening {
        /// The offending knob.
        what: &'static str,
    },
}

impl std::fmt::Display for MrConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrConfigError::ZeroMapSlots => {
                write!(f, "map_slots_per_node must be at least 1")
            }
            MrConfigError::ZeroHeartbeatInterval => {
                write!(f, "heartbeat_interval must be non-zero")
            }
            MrConfigError::DeadTimeoutTooShort {
                heartbeat_interval,
                tt_dead_after,
            } => write!(
                f,
                "tt_dead_after ({tt_dead_after}) must exceed heartbeat_interval \
                 ({heartbeat_interval}); healthy trackers would be declared dead"
            ),
            MrConfigError::InvalidHardening { what } => {
                write!(
                    f,
                    "hardening knob {what} must be positive (or None to disable)"
                )
            }
        }
    }
}

impl std::error::Error for MrConfigError {}

/// Runtime parameters. Defaults model Hadoop 0.19 as deployed in the paper:
/// two Mappers per node, 3-second heartbeats, task dispatch paced by
/// heartbeats, pipelined record feed capped at the measured per-stream
/// RecordReader rate.
#[derive(Clone, Debug)]
pub struct MrConfig {
    /// Concurrent map tasks per TaskTracker (paper: 2).
    pub map_slots_per_node: usize,
    /// TaskTracker heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// A TaskTracker missing heartbeats this long is declared dead and its
    /// tasks re-executed.
    pub tt_dead_after: SimDuration,
    /// Job initialization (staging, split computation, queue population).
    pub job_init_time: SimDuration,
    /// Job finalization (output commit, client notification path).
    pub job_finalize_time: SimDuration,
    /// Task launch overhead (task JVM start on the TaskTracker).
    pub task_start_overhead: SimDuration,
    /// Task teardown overhead.
    pub task_cleanup_overhead: SimDuration,
    /// Per-stream ceiling of the DataNode→RecordReader feed path,
    /// bytes/second. The paper measured "several seconds" per 64 MB record
    /// over loopback — about 8.5 MB/s per stream.
    pub record_feed_cap: Option<f64>,
    /// Overlap record reads with map computation (Hadoop's streaming
    /// RecordReader). `false` is the stop-and-wait ablation.
    pub pipelined_reads: bool,
    /// Dispatch new tasks only on heartbeats (Hadoop 0.19) rather than
    /// immediately on completion.
    pub assign_on_heartbeat_only: bool,
    /// Enable speculative re-execution of stragglers.
    pub speculative: bool,
    /// A running task is a straggler candidate once its elapsed time
    /// exceeds this multiple of the mean completed-task time.
    pub speculative_slowdown: f64,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: u32,
    /// Per-stream ceiling of shuffle fetches, bytes/second.
    pub shuffle_stream_cap: Option<f64>,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Preemptive slot-reclamation budget. Disabled by default
    /// ([`PreemptionTuning::enabled`] is `false`), which preserves every
    /// historical event trace byte-for-byte; policies that implement
    /// [`Scheduler::reclaim`](crate::sched::Scheduler::reclaim) engage it
    /// once `max_kills_per_job > 0`.
    pub preemption: PreemptionTuning,
    // --- chaos-hardening knobs -----------------------------------------
    // All default to *off*, preserving the stock Hadoop-0.19 protocol
    // behavior (and every historical event trace) byte-for-byte; the
    // chaos plane enables them via `MrConfig::hardened()`. Hadoop 0.19
    // had none of this machinery, which is exactly why a partitioned
    // shuffle hangs it — these knobs are the PR-8 hardening layer.
    /// Shuffle fetch timeout: a reduce-side fetch with no completion
    /// within this window is abandoned and re-issued (the stalled stream
    /// is left to drain; a late arrival for it is dropped). Grows by
    /// [`io_retry_backoff`](MrConfig::io_retry_backoff) per retry. Must
    /// exceed the worst-case *legitimate* fetch time under full shuffle
    /// congestion, or healthy transfers get duplicated. `None` = fetches
    /// wait forever (stock behavior).
    pub shuffle_fetch_timeout: Option<SimDuration>,
    /// DFS record-read timeout: a segment read not served within this
    /// window fails over to the next replica (same backoff rule). `None`
    /// = reads wait forever (stock behavior).
    pub read_timeout: Option<SimDuration>,
    /// Timeout multiplier applied per retry of the same fetch/read
    /// (exponential backoff; >= 1.0).
    pub io_retry_backoff: f64,
    /// Retries per fetch/read before the attempt is failed (re-queued by
    /// the JobTracker under its `max_attempts` budget).
    pub io_max_retries: u32,
    /// Progressive TaskTracker blacklisting: a node accumulating this
    /// many failed attempts (decayed over
    /// [`blacklist_probation`](MrConfig::blacklist_probation)) stops
    /// receiving work until its score decays below the bar again. `None`
    /// = never blacklist (stock behavior).
    pub blacklist_threshold: Option<u32>,
    /// Probation half-life of the blacklist failure score: every such
    /// window, a node's accumulated score halves, so a gray node that
    /// recovers re-enters the dispatch rotation.
    pub blacklist_probation: SimDuration,
    /// Job-level liveness watchdog: a job making no forward progress
    /// (no dispatch, no attempt completion) for this long is failed with
    /// a typed [`JobError`](crate::JobError) instead of hanging the
    /// session — the backstop for unservable inputs (every replica of a
    /// block gone) and unhealable partitions. `None` = jobs may hang
    /// (stock behavior).
    pub job_stall_timeout: Option<SimDuration>,
}

impl MrConfig {
    /// Validates deploy-time invariants. Called by
    /// [`ClusterBuilder::deploy`](crate::ClusterBuilder::deploy); call it
    /// directly to surface a typed error instead of a panic.
    pub fn validate(&self) -> Result<(), MrConfigError> {
        if self.map_slots_per_node == 0 {
            return Err(MrConfigError::ZeroMapSlots);
        }
        if self.heartbeat_interval == SimDuration::ZERO {
            return Err(MrConfigError::ZeroHeartbeatInterval);
        }
        if self.tt_dead_after <= self.heartbeat_interval {
            return Err(MrConfigError::DeadTimeoutTooShort {
                heartbeat_interval: self.heartbeat_interval,
                tt_dead_after: self.tt_dead_after,
            });
        }
        if self.shuffle_fetch_timeout == Some(SimDuration::ZERO) {
            return Err(MrConfigError::InvalidHardening {
                what: "shuffle_fetch_timeout",
            });
        }
        if self.read_timeout == Some(SimDuration::ZERO) {
            return Err(MrConfigError::InvalidHardening {
                what: "read_timeout",
            });
        }
        if !(self.io_retry_backoff.is_finite() && self.io_retry_backoff >= 1.0) {
            return Err(MrConfigError::InvalidHardening {
                what: "io_retry_backoff",
            });
        }
        if self.blacklist_threshold == Some(0) {
            return Err(MrConfigError::InvalidHardening {
                what: "blacklist_threshold",
            });
        }
        if self.job_stall_timeout == Some(SimDuration::ZERO) {
            return Err(MrConfigError::InvalidHardening {
                what: "job_stall_timeout",
            });
        }
        Ok(())
    }

    /// The default config with every chaos-hardening knob engaged at the
    /// values the `fault_matrix` bench runs under: generous I/O timeouts
    /// (above worst-case congested transfer times) with 2x backoff,
    /// 3-strike blacklisting with a one-minute probation half-life, and a
    /// job watchdog well past the death-detection window. Fault-free runs
    /// behave identically *in outcome* but not in event trace (timeout
    /// timers arm and lazily expire), which is why hardening is opt-in.
    pub fn hardened() -> Self {
        MrConfig {
            shuffle_fetch_timeout: Some(SimDuration::from_secs(45)),
            read_timeout: Some(SimDuration::from_secs(30)),
            io_retry_backoff: 2.0,
            io_max_retries: 5,
            blacklist_threshold: Some(3),
            blacklist_probation: SimDuration::from_secs(60),
            job_stall_timeout: Some(SimDuration::from_secs(120)),
            ..MrConfig::default()
        }
    }
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            map_slots_per_node: 2,
            heartbeat_interval: SimDuration::from_secs(3),
            tt_dead_after: SimDuration::from_secs(30),
            job_init_time: SimDuration::from_secs(8),
            job_finalize_time: SimDuration::from_secs(2),
            task_start_overhead: SimDuration::from_millis(1_800),
            task_cleanup_overhead: SimDuration::from_millis(400),
            record_feed_cap: Some(8.5e6),
            pipelined_reads: true,
            assign_on_heartbeat_only: true,
            speculative: false,
            speculative_slowdown: 1.5,
            max_attempts: 4,
            shuffle_stream_cap: Some(20.0e6),
            scheduler: SchedulerPolicy::LocalityFirst,
            preemption: PreemptionTuning::default(),
            shuffle_fetch_timeout: None,
            read_timeout: None,
            io_retry_backoff: 2.0,
            io_max_retries: 4,
            blacklist_threshold: None,
            blacklist_probation: SimDuration::from_secs(60),
            job_stall_timeout: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = MrConfig::default();
        assert_eq!(c.map_slots_per_node, 2);
        assert_eq!(c.heartbeat_interval, SimDuration::from_secs(3));
        assert!(c.pipelined_reads);
        assert_eq!(c.scheduler, SchedulerPolicy::LocalityFirst);
        let cap = c.record_feed_cap.unwrap();
        // ~7.5 s per 64 MB record, the paper's "several seconds".
        let per_record = (64 << 20) as f64 / cap;
        assert!((6.0..10.0).contains(&per_record), "{per_record}");
    }

    #[test]
    fn hardening_defaults_off_and_validated() {
        let c = MrConfig::default();
        assert!(c.shuffle_fetch_timeout.is_none());
        assert!(c.read_timeout.is_none());
        assert!(c.blacklist_threshold.is_none());
        assert!(c.job_stall_timeout.is_none());
        c.validate().unwrap();

        let h = MrConfig::hardened();
        h.validate().unwrap();
        assert!(h.shuffle_fetch_timeout.is_some());
        assert!(h.blacklist_threshold.is_some());
        assert!(h.job_stall_timeout.is_some());

        let bad = MrConfig {
            shuffle_fetch_timeout: Some(SimDuration::ZERO),
            ..MrConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(MrConfigError::InvalidHardening {
                what: "shuffle_fetch_timeout"
            })
        ));
        let bad = MrConfig {
            io_retry_backoff: 0.5,
            ..MrConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(MrConfigError::InvalidHardening { .. })
        ));
        let bad = MrConfig {
            blacklist_threshold: Some(0),
            ..MrConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(MrConfigError::InvalidHardening { .. })
        ));
    }

    #[test]
    fn id_display() {
        assert_eq!(JobId(3).to_string(), "job_0003");
        assert_eq!(TaskId(12).to_string(), "task_00012");
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(MrConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_map_slots() {
        let c = MrConfig {
            map_slots_per_node: 0,
            ..MrConfig::default()
        };
        assert_eq!(c.validate(), Err(MrConfigError::ZeroMapSlots));
    }

    #[test]
    fn validate_rejects_zero_heartbeat() {
        let c = MrConfig {
            heartbeat_interval: SimDuration::ZERO,
            ..MrConfig::default()
        };
        assert_eq!(c.validate(), Err(MrConfigError::ZeroHeartbeatInterval));
        // A zero heartbeat is caught before the (then vacuous) dead-timeout
        // comparison.
        assert!(c.validate().unwrap_err().to_string().contains("heartbeat"));
    }

    #[test]
    fn validate_rejects_dead_timeout_at_or_below_heartbeat() {
        for dead_secs in [1u64, 3] {
            let c = MrConfig {
                heartbeat_interval: SimDuration::from_secs(3),
                tt_dead_after: SimDuration::from_secs(dead_secs),
                ..MrConfig::default()
            };
            match c.validate() {
                Err(MrConfigError::DeadTimeoutTooShort { .. }) => {}
                other => panic!("expected DeadTimeoutTooShort, got {other:?}"),
            }
        }
        // Strictly above the heartbeat is fine.
        let ok = MrConfig {
            heartbeat_interval: SimDuration::from_secs(3),
            tt_dead_after: SimDuration::from_secs(4),
            ..MrConfig::default()
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn preemption_defaults_off_and_balanced_preset_enabled() {
        let c = MrConfig::default();
        assert!(!c.preemption.enabled());
        assert_eq!(c.preemption.max_kills_per_job, 0);
        c.validate().unwrap();

        let t = PreemptionTuning::balanced();
        assert!(t.enabled());
        assert!(t.min_attempt_age > SimDuration::ZERO);
        assert!(t.cooldown > SimDuration::ZERO);
        assert!(t.slack_margin > SimDuration::ZERO);
        let enabled = MrConfig {
            preemption: t,
            ..MrConfig::default()
        };
        enabled.validate().unwrap();
    }

    #[test]
    fn adaptive_policy_defaults() {
        let SchedulerPolicy::Adaptive(t) = SchedulerPolicy::adaptive() else {
            panic!("adaptive() must build the Adaptive arm");
        };
        assert!(t.ewma_alpha > 0.0 && t.ewma_alpha <= 1.0);
        assert!(t.oversplit >= 1.0);
        assert!((0.0..=1.0).contains(&t.tail_fraction));
        assert!(t.spread_threshold >= 1.0);
    }
}
