//! MapReduce runtime configuration and identifiers.

use accelmr_des::SimDuration;

/// Job identifier, assigned by the JobTracker.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

/// Task identifier, unique within a job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task_{:05}", self.0)
    }
}

/// Task scheduling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerPolicy {
    /// Prefer tasks whose input blocks live on the requesting node — the
    /// Hadoop default the paper relies on ("it tries to minimize the number
    /// of remote blocks accesses").
    LocalityFirst,
    /// Plain FIFO, ignoring placement (ablation baseline).
    Fifo,
}

/// Runtime parameters. Defaults model Hadoop 0.19 as deployed in the paper:
/// two Mappers per node, 3-second heartbeats, task dispatch paced by
/// heartbeats, pipelined record feed capped at the measured per-stream
/// RecordReader rate.
#[derive(Clone, Debug)]
pub struct MrConfig {
    /// Concurrent map tasks per TaskTracker (paper: 2).
    pub map_slots_per_node: usize,
    /// TaskTracker heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// A TaskTracker missing heartbeats this long is declared dead and its
    /// tasks re-executed.
    pub tt_dead_after: SimDuration,
    /// Job initialization (staging, split computation, queue population).
    pub job_init_time: SimDuration,
    /// Job finalization (output commit, client notification path).
    pub job_finalize_time: SimDuration,
    /// Task launch overhead (task JVM start on the TaskTracker).
    pub task_start_overhead: SimDuration,
    /// Task teardown overhead.
    pub task_cleanup_overhead: SimDuration,
    /// Per-stream ceiling of the DataNode→RecordReader feed path,
    /// bytes/second. The paper measured "several seconds" per 64 MB record
    /// over loopback — about 8.5 MB/s per stream.
    pub record_feed_cap: Option<f64>,
    /// Overlap record reads with map computation (Hadoop's streaming
    /// RecordReader). `false` is the stop-and-wait ablation.
    pub pipelined_reads: bool,
    /// Dispatch new tasks only on heartbeats (Hadoop 0.19) rather than
    /// immediately on completion.
    pub assign_on_heartbeat_only: bool,
    /// Enable speculative re-execution of stragglers.
    pub speculative: bool,
    /// A running task is a straggler candidate once its elapsed time
    /// exceeds this multiple of the mean completed-task time.
    pub speculative_slowdown: f64,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: u32,
    /// Per-stream ceiling of shuffle fetches, bytes/second.
    pub shuffle_stream_cap: Option<f64>,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            map_slots_per_node: 2,
            heartbeat_interval: SimDuration::from_secs(3),
            tt_dead_after: SimDuration::from_secs(30),
            job_init_time: SimDuration::from_secs(8),
            job_finalize_time: SimDuration::from_secs(2),
            task_start_overhead: SimDuration::from_millis(1_800),
            task_cleanup_overhead: SimDuration::from_millis(400),
            record_feed_cap: Some(8.5e6),
            pipelined_reads: true,
            assign_on_heartbeat_only: true,
            speculative: false,
            speculative_slowdown: 1.5,
            max_attempts: 4,
            shuffle_stream_cap: Some(20.0e6),
            scheduler: SchedulerPolicy::LocalityFirst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = MrConfig::default();
        assert_eq!(c.map_slots_per_node, 2);
        assert_eq!(c.heartbeat_interval, SimDuration::from_secs(3));
        assert!(c.pipelined_reads);
        assert_eq!(c.scheduler, SchedulerPolicy::LocalityFirst);
        let cap = c.record_feed_cap.unwrap();
        // ~7.5 s per 64 MB record, the paper's "several seconds".
        let per_record = (64 << 20) as f64 / cap;
        assert!((6.0..10.0).contains(&per_record), "{per_record}");
    }

    #[test]
    fn id_display() {
        assert_eq!(JobId(3).to_string(), "job_0003");
        assert_eq!(TaskId(12).to_string(), "task_00012");
    }
}
