//! Kernel interfaces: what a map task executes.
//!
//! The paper's key architectural move is that the Hadoop-level `map()`
//! invokes a *native* node-level runtime (Figure 1). We mirror that with
//! [`TaskKernel`]: the MapReduce runtime drives records/units through it
//! without knowing whether the kernel runs a scalar loop or offloads to a
//! simulated Cell BE. Node-resident accelerator state (SPU contexts stay
//! warm across tasks on the same node) lives in a per-node [`NodeEnv`] the
//! TaskTracker owns; kernels downcast it to their concrete type.

use std::any::Any;

use accelmr_des::SimDuration;

/// Node-resident execution environment (accelerator state). One per
/// TaskTracker, shared by every task that runs on the node.
pub trait NodeEnv: Send {
    /// Downcast hook for kernels.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A [`NodeEnv`] for kernels with no node state (pure scalar kernels).
#[derive(Debug, Default)]
pub struct NullEnv;

impl NodeEnv for NullEnv {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds the per-node environment at TaskTracker construction.
pub trait NodeEnvFactory: Send + Sync {
    /// Creates the environment for one node.
    fn build(&self, node_index: usize) -> Box<dyn NodeEnv>;
}

/// Factory producing [`NullEnv`]s.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnvFactory;

impl NodeEnvFactory for NullEnvFactory {
    fn build(&self, _node_index: usize) -> Box<dyn NodeEnv> {
        Box::new(NullEnv)
    }
}

/// One record handed to a map kernel.
#[derive(Debug)]
pub struct RecordCtx<'a> {
    /// Absolute byte offset of the record in the input file.
    pub abs_offset: u64,
    /// Record length, bytes.
    pub len: u64,
    /// Materialized content (functional runs only).
    pub bytes: Option<&'a [u8]>,
    /// The input file's content seed.
    pub file_seed: u64,
}

/// Result of mapping one record.
#[derive(Debug, Default)]
pub struct RecordOutcome {
    /// Simulated compute time charged for the record.
    pub compute: SimDuration,
    /// Bytes of output produced (drives output-write traffic).
    pub output_bytes: u64,
    /// Materialized output (functional runs; verified end to end).
    pub output: Option<Vec<u8>>,
    /// Checksum of the record's output (0 when not computed).
    pub digest: u64,
    /// Key/value pairs emitted toward the reduce phase.
    pub kv: Vec<(u64, u64)>,
}

/// Result of mapping a synthetic unit batch (CPU-intensive tasks).
#[derive(Debug, Default)]
pub struct UnitsOutcome {
    /// Simulated compute time.
    pub compute: SimDuration,
    /// Key/value pairs emitted toward the reduce phase.
    pub kv: Vec<(u64, u64)>,
}

/// The map-side kernel a job executes. Implementations live in the hybrid
/// crate (Java scalar, Cell-accelerated, empty); simple test kernels live
/// here.
pub trait TaskKernel: Send + Sync {
    /// Kernel name (metrics, traces, per-node setup dedup).
    fn name(&self) -> &'static str;

    /// One-time per-node initialization cost, paid the first time this
    /// kernel runs on a node (e.g. SPU context creation through JNI).
    fn node_setup(&self, env: &mut dyn NodeEnv) -> SimDuration {
        let _ = env;
        SimDuration::ZERO
    }

    /// Maps one record of a data-intensive job.
    fn map_record(&self, env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome;

    /// Maps `units` synthetic units of a CPU-intensive job. `stream`
    /// decorrelates RNG streams across tasks.
    fn map_units(&self, env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        let _ = (env, units, stream);
        UnitsOutcome::default()
    }
}

/// Reduce-side kernel.
pub trait ReduceKernel: Send + Sync {
    /// Kernel name.
    fn name(&self) -> &'static str;

    /// Simulated time to reduce `bytes` of fetched map output containing
    /// `pairs` pairs.
    fn reduce_time(&self, bytes: u64, pairs: u64) -> SimDuration;

    /// Folds all map-side pairs into the final pairs.
    fn aggregate(&self, pairs: &[(u64, u64)]) -> Vec<(u64, u64)>;
}

/// Sums values per key — the classic counting reducer (and exactly what the
/// Pi estimator's single reduce does with its `(inside, total)` pairs).
#[derive(Debug, Default, Clone, Copy)]
pub struct SumReducer {
    /// Cycles charged per reduced byte at 3.2 GHz-equivalent.
    pub cycles_per_byte: f64,
}

impl ReduceKernel for SumReducer {
    fn name(&self) -> &'static str {
        "sum"
    }

    fn reduce_time(&self, bytes: u64, pairs: u64) -> SimDuration {
        let cycles = self.cycles_per_byte * bytes as f64 + 50.0 * pairs as f64;
        SimDuration::from_secs_f64(cycles / 3.2e9)
    }

    fn aggregate(&self, pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for &(k, v) in pairs {
            *map.entry(k).or_insert(0u64) += v;
        }
        map.into_iter().collect()
    }
}

/// Test kernel: charges a fixed duration per record/unit batch and digests
/// record content when materialized. Lets the runtime be tested without
/// the hybrid layer.
#[derive(Debug, Clone, Copy)]
pub struct FixedCostKernel {
    /// Time per record.
    pub per_record: SimDuration,
    /// Time per unit.
    pub per_unit_ns: u64,
    /// Output bytes per input byte (0 = no output).
    pub output_ratio_percent: u32,
    /// Per-node setup cost.
    pub setup: SimDuration,
}

impl Default for FixedCostKernel {
    fn default() -> Self {
        FixedCostKernel {
            per_record: SimDuration::from_millis(10),
            per_unit_ns: 100,
            output_ratio_percent: 0,
            setup: SimDuration::ZERO,
        }
    }
}

impl TaskKernel for FixedCostKernel {
    fn name(&self) -> &'static str {
        "fixed-cost"
    }

    fn node_setup(&self, _env: &mut dyn NodeEnv) -> SimDuration {
        self.setup
    }

    fn map_record(&self, _env: &mut dyn NodeEnv, rec: &RecordCtx<'_>) -> RecordOutcome {
        let output_bytes = rec.len * self.output_ratio_percent as u64 / 100;
        RecordOutcome {
            compute: self.per_record,
            output_bytes,
            output: None,
            digest: rec.bytes.map(accelmr_kernels::checksum).unwrap_or(0),
            kv: vec![(rec.abs_offset / rec.len.max(1), 1)],
        }
    }

    fn map_units(&self, _env: &mut dyn NodeEnv, units: u64, stream: u64) -> UnitsOutcome {
        UnitsOutcome {
            compute: SimDuration::from_nanos(self.per_unit_ns * units),
            kv: vec![(stream, units)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_env_downcasts() {
        let mut env: Box<dyn NodeEnv> = NullEnvFactory.build(0);
        assert!(env.as_any_mut().downcast_mut::<NullEnv>().is_some());
    }

    #[test]
    fn fixed_kernel_charges_time_and_digests() {
        let k = FixedCostKernel::default();
        let mut env = NullEnv;
        let data = vec![7u8; 64];
        let out = k.map_record(
            &mut env,
            &RecordCtx {
                abs_offset: 128,
                len: 64,
                bytes: Some(&data),
                file_seed: 0,
            },
        );
        assert_eq!(out.compute, SimDuration::from_millis(10));
        assert_eq!(out.digest, accelmr_kernels::checksum(&data));
        assert_eq!(out.kv, vec![(2, 1)]);

        let units = k.map_units(&mut env, 1000, 5);
        assert_eq!(units.compute, SimDuration::from_micros(100));
    }

    #[test]
    fn sum_reducer_aggregates_per_key() {
        let r = SumReducer {
            cycles_per_byte: 1.0,
        };
        let out = r.aggregate(&[(1, 2), (2, 5), (1, 3)]);
        assert_eq!(out, vec![(1, 5), (2, 5)]);
        assert!(r.reduce_time(1 << 20, 100) > SimDuration::ZERO);
    }
}
