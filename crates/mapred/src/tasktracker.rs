//! The TaskTracker: per-node task execution.
//!
//! One TaskTracker runs on every worker node, owning `map_slots_per_node`
//! slots (2 in the paper). For data tasks it drives the RecordReader
//! pipeline: records stream from the (usually local) DataNode through the
//! per-stream-capped feed path, with read-ahead of one record overlapping
//! the map computation — the overlap that lets the feed ceiling hide the
//! accelerator speedup in the paper's Figures 4 and 5. The map computation
//! itself is delegated to the job's
//! [`TaskKernel`](crate::kernel::TaskKernel), which may offload to
//! node-resident accelerator state ([`NodeEnv`]).
//!
//! Correctness around asynchrony relies on per-slot *generations*: every
//! task occupying a slot gets a fresh generation, every timer and
//! outstanding I/O is tagged with it, and stale events (from killed,
//! failed, or finished attempts) are dropped on arrival.

use std::collections::VecDeque;

use accelmr_des::prelude::*;
use accelmr_des::FxHashMap;
use accelmr_dfs::msgs::{BlockAllocated, BlockLoc, CreateAck, RangeData, ReadError, WriteAck};
use accelmr_dfs::DfsHandle;
use accelmr_kernels::UnorderedDigest;
use accelmr_net::{FlowAborted, FlowDone, NetHandle, NodeId};

use crate::config::{JobId, MrConfig, TaskId};
use crate::job::{OutputSink, TaskDescriptor, TaskMetrics, TaskWork};
use crate::kernel::{NodeEnv, RecordCtx};
use crate::msgs::{
    AssignTask, CrashTaskTracker, InjectGray, KillTask, SetHeartbeatLoss, TaskReport, TtHeartbeat,
};

const TIMER_HEARTBEAT: u64 = 0;
const KIND_START: u64 = 1;
const KIND_COMPUTE: u64 = 2;
const KIND_CLEANUP: u64 = 3;
const KIND_MERGE: u64 = 4;
// I/O watchdog timers carry the outstanding I/O tag (next_tag counter, far
// below 2^56) in the low bits instead of a slot/gen pair: staleness is
// decided by whether the tag is still in `reads`/`fetches`, not by slot
// liveness, so a timeout whose I/O already completed is a silent no-op.
const KIND_FETCH_TIMEOUT: u64 = 5;
const KIND_READ_TIMEOUT: u64 = 6;
const IO_TAG_MASK: u64 = (1 << 56) - 1;

#[inline]
fn slot_timer_tag(kind: u64, slot: usize, gen: u32) -> u64 {
    (kind << 56) | ((slot as u64) << 40) | gen as u64
}

#[inline]
fn unpack_timer_tag(tag: u64) -> (u64, usize, u32) {
    (tag >> 56, ((tag >> 40) & 0xffff) as usize, tag as u32)
}

#[inline]
fn io_timer_tag(kind: u64, io_tag: u64) -> u64 {
    debug_assert!(io_tag <= IO_TAG_MASK);
    (kind << 56) | io_tag
}

/// `base * factor^n`, the exponential-backoff schedule for I/O watchdogs.
#[inline]
fn backoff(base: SimDuration, factor: f64, n: u32) -> SimDuration {
    if n == 0 {
        return base;
    }
    SimDuration::from_nanos((base.as_nanos() as f64 * factor.powi(n as i32)) as u64)
}

/// Stretches a compute duration by the node's gray-failure factor. The
/// `factor == 1.0` path must return `d` untouched (no f64 round trip) so
/// fault-free runs arm bit-identical timers and golden traces hold.
#[inline]
fn degrade(d: SimDuration, factor: f64) -> SimDuration {
    if factor >= 1.0 {
        return d;
    }
    SimDuration::from_nanos((d.as_nanos() as f64 / factor) as u64)
}

/// One read segment in flight (a record may span DFS blocks).
#[derive(Debug)]
struct ReadCtx {
    slot: usize,
    gen: u32,
    record: u64,
    offset_in_record: u64,
    seg: usize,
    replica_tried: usize,
}

#[derive(Debug, Clone)]
struct Segment {
    block: accelmr_dfs::BlockId,
    offset_in_block: u64,
    len: u64,
    offset_in_record: u64,
    replicas: Vec<NodeId>,
}

struct ReadyRecord {
    record: u64,
    bytes: Option<Vec<u8>>,
}

/// One shuffle fetch in flight, with enough context to re-issue it after a
/// timeout (the map-output source and size survive retries; `retries`
/// drives the exponential backoff and the give-up threshold).
#[derive(Debug, Clone, Copy)]
struct FetchCtx {
    slot: usize,
    gen: u32,
    from: NodeId,
    bytes: u64,
    retries: u32,
}

struct TaskRun {
    desc: TaskDescriptor,
    gen: u32,
    started: SimTime,
    setup_charged: bool,
    // Data-task state.
    n_records: u64,
    next_record: u64,
    /// `(record, segments outstanding, assembly buffer)`.
    inflight: Option<(u64, usize, Option<Vec<u8>>)>,
    ready: Option<ReadyRecord>,
    computing: bool,
    records_done: u64,
    waiting_since: Option<SimTime>,
    // Output-write state.
    out_created: bool,
    out_create_requested: bool,
    out_queue: VecDeque<u64>,
    outstanding_writes: u32,
    next_out_offset: u64,
    // Reduce state.
    fetches_left: usize,
    merge_started: bool,
    merge_done: bool,
    // Accounting.
    metrics: TaskMetrics,
    kv: Vec<(u64, u64)>,
    digest: UnorderedDigest,
    finished: bool,
}

impl TaskRun {
    fn out_path(&self) -> String {
        match &self.desc.output {
            OutputSink::Dfs { path, .. } => format!("{}/part-{:05}", path, self.desc.task.0),
            _ => String::new(),
        }
    }

    fn writes_dfs(&self) -> bool {
        matches!(self.desc.output, OutputSink::Dfs { .. })
    }
}

enum Slot {
    Idle,
    Busy(Box<TaskRun>),
}

/// Per-node execution daemon.
pub struct TaskTracker {
    cfg: MrConfig,
    net: NetHandle,
    dfs: DfsHandle,
    node: NodeId,
    head_node: NodeId,
    jobtracker: ActorId,
    slots: Vec<Slot>,
    gen_counter: u32,
    env: Box<dyn NodeEnv>,
    kernels_setup: Vec<&'static str>,
    pending_reports: Vec<TaskReport>,
    reads: FxHashMap<u64, ReadCtx>,
    /// write tag → `(slot, gen, block length)`.
    writes: FxHashMap<u64, (usize, u32, u64)>,
    fetches: FxHashMap<u64, FetchCtx>,
    create_waiters: VecDeque<usize>,
    next_tag: u64,
    /// Gray-failure throughput multiplier; `1.0` = healthy.
    gray_factor: f64,
    /// Chaos-injected heartbeat loss: while set, heartbeats are dropped
    /// (reports accumulate) but tasks keep running.
    hb_suppressed: bool,
}

impl TaskTracker {
    /// Builds a TaskTracker on `node` reporting to `jobtracker`.
    pub fn new(
        cfg: MrConfig,
        net: NetHandle,
        dfs: DfsHandle,
        node: NodeId,
        head_node: NodeId,
        jobtracker: ActorId,
        env: Box<dyn NodeEnv>,
    ) -> Self {
        let slots = (0..cfg.map_slots_per_node).map(|_| Slot::Idle).collect();
        TaskTracker {
            cfg,
            net,
            dfs,
            node,
            head_node,
            jobtracker,
            slots,
            gen_counter: 0,
            env,
            kernels_setup: Vec::new(),
            pending_reports: Vec::new(),
            reads: FxHashMap::default(),
            writes: FxHashMap::default(),
            fetches: FxHashMap::default(),
            create_waiters: VecDeque::new(),
            next_tag: 1,
            gray_factor: 1.0,
            hb_suppressed: false,
        }
    }

    fn free_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Idle))
            .count()
    }

    fn tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn slot_live(&self, slot: usize, gen: u32) -> bool {
        matches!(self.slots.get(slot), Some(Slot::Busy(run)) if run.gen == gen && !run.finished)
    }

    fn send_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        if self.hb_suppressed {
            // Heartbeat-loss window: the message is dropped, not deferred.
            // Completed-task reports stay queued and ride the first
            // heartbeat after the window — the JobTracker must fence them.
            ctx.stats().incr("mr.heartbeats_suppressed");
            return;
        }
        let hb = TtHeartbeat {
            node: self.node,
            free_slots: self.free_slots(),
            completed: std::mem::take(&mut self.pending_reports),
        };
        let bytes = 256 + 512 * hb.completed.len() as u64;
        let (net, node, head, jt) = (self.net, self.node, self.head_node, self.jobtracker);
        net.unicast(ctx, node, head, jt, bytes, hb);
    }

    fn segments_of(blocks: &[BlockLoc], rec_start: u64, rec_len: u64) -> Vec<Segment> {
        let rec_end = rec_start + rec_len;
        let mut segs = Vec::new();
        for b in blocks {
            let lo = rec_start.max(b.offset);
            let hi = rec_end.min(b.offset + b.len);
            if lo < hi {
                segs.push(Segment {
                    block: b.id,
                    offset_in_block: lo - b.offset,
                    len: hi - lo,
                    offset_in_record: lo - rec_start,
                    replicas: b.replicas.clone(),
                });
            }
        }
        segs
    }

    fn record_bounds(work: &TaskWork, rec: u64) -> (u64, u64) {
        match work {
            TaskWork::MapRange {
                start,
                end,
                record_bytes,
                ..
            } => {
                let rs = start + rec * record_bytes;
                let rl = (*end - rs).min(*record_bytes);
                (rs, rl)
            }
            _ => (0, 0),
        }
    }

    /// Issues all segment reads of the next record of `slot`, if any.
    fn issue_record_read(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let (gen, rec, segs) = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            if !matches!(run.desc.work, TaskWork::MapRange { .. }) {
                return;
            }
            if run.next_record >= run.n_records || run.inflight.is_some() {
                return;
            }
            let rec = run.next_record;
            run.next_record += 1;
            let (rs, rl) = Self::record_bounds(&run.desc.work, rec);
            let TaskWork::MapRange { blocks, .. } = &run.desc.work else {
                unreachable!()
            };
            let segs = Self::segments_of(blocks, rs, rl);
            debug_assert_eq!(
                segs.iter().map(|s| s.len).sum::<u64>(),
                rl,
                "split blocks must cover every record byte"
            );
            run.inflight = Some((rec, segs.len(), None));
            (run.gen, rec, segs)
        };
        // A record spanning several blocks fans out all its segment reads
        // in one instant; the resulting DataNode flows start together and
        // are coalesced into one fabric re-solve.
        for (i, seg) in segs.iter().enumerate() {
            self.issue_segment(ctx, slot, gen, rec, seg, i, 0);
        }
    }

    fn replica_order(&self, replicas: &[NodeId]) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(replicas.len());
        if replicas.contains(&self.node) {
            order.push(self.node);
        }
        for &r in replicas {
            if r != self.node {
                order.push(r);
            }
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_segment(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: usize,
        gen: u32,
        record: u64,
        seg: &Segment,
        seg_idx: usize,
        replica_tried: usize,
    ) {
        let order = self.replica_order(&seg.replicas);
        if replica_tried >= order.len() {
            self.fail_task(ctx, slot, gen);
            return;
        }
        let dn_node = order[replica_tried];
        let tag = self.tag();
        self.reads.insert(
            tag,
            ReadCtx {
                slot,
                gen,
                record,
                offset_in_record: seg.offset_in_record,
                seg: seg_idx,
                replica_tried,
            },
        );
        let ok = self.dfs.read_range(
            ctx,
            self.node,
            dn_node,
            seg.block,
            seg.offset_in_block,
            seg.len,
            self.cfg.record_feed_cap,
            tag,
        );
        if !ok {
            // The replica's DataNode has left the cluster (dynamic
            // membership removes it from the registry): fall through to
            // the next replica instead of failing the attempt outright.
            self.reads.remove(&tag);
            ctx.stats().incr("mr.read_reroutes");
            self.issue_segment(ctx, slot, gen, record, seg, seg_idx, replica_tried + 1);
            return;
        }
        if let Slot::Busy(run) = &mut self.slots[slot] {
            if dn_node == self.node {
                run.metrics.local_reads += 1;
            } else {
                run.metrics.remote_reads += 1;
            }
        }
        if let Some(t) = self.cfg.read_timeout {
            // Each replica attempt waits longer than the last, so a
            // congested-but-alive source is not hammered in a tight loop.
            let t = backoff(t, self.cfg.io_retry_backoff, replica_tried as u32);
            ctx.after(t, io_timer_tag(KIND_READ_TIMEOUT, tag));
        }
    }

    /// A read watchdog fired. If the segment is still outstanding the
    /// source is stalled (partitioned or gray): abandon the tag — the
    /// late [`RangeData`], if it ever lands, is dropped by the tag lookup
    /// — and fail over to the next replica via [`Self::retry_read`].
    fn read_timed_out(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if !self.reads.contains_key(&tag) {
            return; // completed (or already rerouted) before the deadline
        }
        ctx.stats().incr("dfs.read_retries");
        self.retry_read(ctx, tag);
    }

    /// A shuffle-fetch watchdog fired while the flow was still in flight:
    /// re-issue the fetch from the same source under a fresh tag with
    /// exponentially backed-off patience, up to `io_max_retries`. The
    /// stalled flow is left to drain; its eventual [`FlowDone`] misses the
    /// tag lookup and is ignored.
    fn fetch_timed_out(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(f) = self.fetches.remove(&tag) else {
            return; // fetch completed before the deadline
        };
        if !self.slot_live(f.slot, f.gen) {
            return;
        }
        if f.retries >= self.cfg.io_max_retries {
            ctx.stats().incr("mr.fetch_failures");
            self.fail_task(ctx, f.slot, f.gen);
            return;
        }
        ctx.stats().incr("mr.attempt_retries");
        let retries = f.retries + 1;
        let new_tag = self.tag();
        self.fetches.insert(new_tag, FetchCtx { retries, ..f });
        let (net, node) = (self.net, self.node);
        net.start_flow(
            ctx,
            f.from,
            node,
            f.bytes,
            self.cfg.shuffle_stream_cap,
            new_tag,
        );
        if let Some(t) = self.cfg.shuffle_fetch_timeout {
            let t = backoff(t, self.cfg.io_retry_backoff, retries);
            ctx.after(t, io_timer_tag(KIND_FETCH_TIMEOUT, new_tag));
        }
    }

    /// A read segment failed: retry on the next replica.
    fn retry_read(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(rctx) = self.reads.remove(&tag) else {
            return;
        };
        if !self.slot_live(rctx.slot, rctx.gen) {
            return;
        }
        ctx.stats().incr("mr.read_retries");
        let seg = {
            let Slot::Busy(run) = &self.slots[rctx.slot] else {
                return;
            };
            let (rs, rl) = Self::record_bounds(&run.desc.work, rctx.record);
            let TaskWork::MapRange { blocks, .. } = &run.desc.work else {
                return;
            };
            Self::segments_of(blocks, rs, rl).get(rctx.seg).cloned()
        };
        let Some(seg) = seg else {
            self.fail_task(ctx, rctx.slot, rctx.gen);
            return;
        };
        self.issue_segment(
            ctx,
            rctx.slot,
            rctx.gen,
            rctx.record,
            &seg,
            rctx.seg,
            rctx.replica_tried + 1,
        );
    }

    fn record_arrived(&mut self, ctx: &mut Ctx<'_>, slot: usize, rec: u64, bytes: Option<Vec<u8>>) {
        let start_compute = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            run.inflight = None;
            run.ready = Some(ReadyRecord { record: rec, bytes });
            !run.computing
        };
        if start_compute {
            self.start_compute(ctx, slot);
        }
        if self.cfg.pipelined_reads {
            self.issue_record_read(ctx, slot);
        }
    }

    fn start_compute(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let now = ctx.now();
        let gray = self.gray_factor;
        let (compute, gen) = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            let Some(ready) = run.ready.take() else {
                return;
            };
            if let Some(since) = run.waiting_since.take() {
                run.metrics.feed_stall += now - since;
            }
            let (rs, rl) = Self::record_bounds(&run.desc.work, ready.record);
            let file_seed = match &run.desc.work {
                TaskWork::MapRange { file_seed, .. } => *file_seed,
                _ => 0,
            };
            let rec_ctx = RecordCtx {
                abs_offset: rs,
                len: rl,
                bytes: ready.bytes.as_deref(),
                file_seed,
            };
            let outcome = run.desc.kernel.map_record(self.env.as_mut(), &rec_ctx);
            run.computing = true;
            // A gray node computes slower; metrics record the observed
            // (degraded) time so elapsed and compute stay consistent.
            let compute = degrade(outcome.compute, gray);
            run.metrics.compute += compute;
            run.metrics.bytes_read += rl;
            run.metrics.records += 1;
            if outcome.digest != 0 {
                run.digest.add(outcome.digest);
            }
            run.kv.extend(outcome.kv);
            if outcome.output_bytes > 0 {
                run.metrics.bytes_output += outcome.output_bytes;
                if run.writes_dfs() {
                    run.out_queue.push_back(outcome.output_bytes);
                }
            }
            (compute, run.gen)
        };
        self.ensure_output_file(ctx, slot);
        self.drain_output_queue(ctx, slot);
        ctx.after(compute, slot_timer_tag(KIND_COMPUTE, slot, gen));
    }

    fn ensure_output_file(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let req = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            if run.out_create_requested || !run.writes_dfs() || run.out_queue.is_empty() {
                None
            } else {
                run.out_create_requested = true;
                let OutputSink::Dfs { replication, .. } = run.desc.output else {
                    unreachable!()
                };
                Some((run.out_path(), replication))
            }
        };
        if let Some((path, replication)) = req {
            self.dfs.create_file(ctx, self.node, &path, replication);
            self.create_waiters.push_back(slot);
        }
    }

    fn drain_output_queue(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let reqs = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            if !run.out_created {
                return;
            }
            let path = run.out_path();
            let mut reqs = Vec::new();
            while let Some(len) = run.out_queue.pop_front() {
                run.outstanding_writes += 1;
                reqs.push((path.clone(), len, run.gen));
            }
            reqs
        };
        for (path, len, gen) in reqs {
            let tag = self.tag();
            self.writes.insert(tag, (slot, gen, len));
            self.dfs.alloc_block(ctx, self.node, &path, len, tag);
        }
    }

    fn compute_done(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let now = ctx.now();
        {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            run.computing = false;
            run.records_done += 1;
            let still_to_come = match run.desc.work {
                TaskWork::MapRange { .. } => run.records_done < run.n_records,
                _ => false,
            };
            if run.ready.is_none() && still_to_come {
                run.waiting_since = Some(now);
            }
        }
        if !self.cfg.pipelined_reads {
            self.issue_record_read(ctx, slot);
        }
        self.start_compute(ctx, slot);
        self.maybe_finish(ctx, slot);
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let finish = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            if run.finished {
                return;
            }
            let done = match &run.desc.work {
                TaskWork::MapRange { .. } => {
                    run.records_done == run.n_records
                        && !run.computing
                        && run.outstanding_writes == 0
                        && run.out_queue.is_empty()
                }
                TaskWork::MapUnits { .. } => !run.computing && run.records_done > 0,
                TaskWork::Reduce { .. } => {
                    run.fetches_left == 0
                        && run.merge_done
                        && run.outstanding_writes == 0
                        && run.out_queue.is_empty()
                }
            };
            if done {
                run.finished = true;
                Some(run.gen)
            } else {
                None
            }
        };
        if let Some(gen) = finish {
            ctx.after(
                self.cfg.task_cleanup_overhead,
                slot_timer_tag(KIND_CLEANUP, slot, gen),
            );
        }
    }

    fn finish_task(&mut self, ctx: &mut Ctx<'_>, slot: usize, ok: bool) {
        let now = ctx.now();
        let run = match std::mem::replace(&mut self.slots[slot], Slot::Idle) {
            Slot::Busy(run) => run,
            Slot::Idle => return,
        };
        let mut metrics = run.metrics;
        metrics.elapsed = now - run.started;
        self.pending_reports.push(TaskReport {
            job: run.desc.job,
            task: run.desc.task,
            attempt: run.desc.attempt,
            ok,
            metrics,
            kv: run.kv,
            digest: run.digest.finish(),
            node: self.node,
        });
        ctx.stats()
            .incr(if ok { "mr.tasks_ok" } else { "mr.tasks_failed" });
        if !self.cfg.assign_on_heartbeat_only {
            self.send_heartbeat(ctx);
        }
    }

    fn fail_task(&mut self, ctx: &mut Ctx<'_>, slot: usize, gen: u32) {
        if !self.slot_live(slot, gen) {
            return;
        }
        if let Slot::Busy(run) = &mut self.slots[slot] {
            run.gen = run.gen.wrapping_add(0x1000_0000); // invalidate stale events
        }
        self.finish_task(ctx, slot, false);
    }

    fn start_task(&mut self, ctx: &mut Ctx<'_>, descriptor: TaskDescriptor) {
        let Some(slot) = self.slots.iter().position(|s| matches!(s, Slot::Idle)) else {
            self.pending_reports.push(TaskReport {
                job: descriptor.job,
                task: descriptor.task,
                attempt: descriptor.attempt,
                ok: false,
                metrics: TaskMetrics::default(),
                kv: Vec::new(),
                digest: (0, 0),
                node: self.node,
            });
            return;
        };
        self.gen_counter = self.gen_counter.wrapping_add(1);
        let gen = self.gen_counter;
        let n_records = match &descriptor.work {
            TaskWork::MapRange {
                start,
                end,
                record_bytes,
                ..
            } => (end - start).div_ceil(*record_bytes),
            _ => 0,
        };
        let run = TaskRun {
            desc: descriptor,
            gen,
            started: ctx.now(),
            setup_charged: false,
            n_records,
            next_record: 0,
            inflight: None,
            ready: None,
            computing: false,
            records_done: 0,
            waiting_since: None,
            out_created: false,
            out_create_requested: false,
            out_queue: VecDeque::new(),
            outstanding_writes: 0,
            next_out_offset: 0,
            fetches_left: 0,
            merge_started: false,
            merge_done: false,
            metrics: TaskMetrics::default(),
            kv: Vec::new(),
            digest: UnorderedDigest::new(),
            finished: false,
        };
        self.slots[slot] = Slot::Busy(Box::new(run));
        ctx.stats().incr("mr.tasks_started");
        ctx.after(
            self.cfg.task_start_overhead,
            slot_timer_tag(KIND_START, slot, gen),
        );
    }

    fn begin_work(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        // One-time per-node kernel setup (e.g. SPU context creation via the
        // JNI bridge): charged as an extension of the first task's start.
        let setup = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            let name = run.desc.kernel.name();
            if run.setup_charged || self.kernels_setup.contains(&name) {
                SimDuration::ZERO
            } else {
                run.setup_charged = true;
                self.kernels_setup.push(name);
                run.desc.kernel.node_setup(self.env.as_mut())
            }
        };
        if setup > SimDuration::ZERO {
            let gen = match &self.slots[slot] {
                Slot::Busy(run) => run.gen,
                Slot::Idle => return,
            };
            ctx.after(setup, slot_timer_tag(KIND_START, slot, gen));
            return;
        }
        let work = {
            let Slot::Busy(run) = &self.slots[slot] else {
                return;
            };
            run.desc.work.clone()
        };
        match work {
            TaskWork::MapRange { .. } => {
                if let Slot::Busy(run) = &mut self.slots[slot] {
                    run.waiting_since = Some(ctx.now());
                }
                self.issue_record_read(ctx, slot);
                // Zero-record splits complete immediately.
                if let Slot::Busy(run) = &self.slots[slot] {
                    if run.n_records == 0 {
                        self.maybe_finish(ctx, slot);
                    }
                }
            }
            TaskWork::MapUnits { units, index } => {
                let gray = self.gray_factor;
                let (compute, gen) = {
                    let Slot::Busy(run) = &mut self.slots[slot] else {
                        return;
                    };
                    let outcome = run.desc.kernel.map_units(self.env.as_mut(), units, index);
                    run.kv.extend(outcome.kv);
                    let compute = degrade(outcome.compute, gray);
                    run.metrics.compute += compute;
                    run.computing = true;
                    (compute, run.gen)
                };
                ctx.after(compute, slot_timer_tag(KIND_COMPUTE, slot, gen));
            }
            TaskWork::Reduce { fetches, .. } => {
                let gen = match &mut self.slots[slot] {
                    Slot::Busy(run) => {
                        run.fetches_left = fetches.iter().filter(|&&(_, b)| b > 0).count();
                        run.gen
                    }
                    Slot::Idle => return,
                };
                // All fetches issue at this one instant: the fabric
                // coalesces the whole shuffle wave into a single max-min
                // re-solve (see `accelmr_net::fabric`), so keep this a
                // straight burst — do not stagger or serialize starts.
                let mut any = false;
                for &(from, bytes) in &fetches {
                    if bytes == 0 {
                        continue;
                    }
                    any = true;
                    let tag = self.tag();
                    self.fetches.insert(
                        tag,
                        FetchCtx {
                            slot,
                            gen,
                            from,
                            bytes,
                            retries: 0,
                        },
                    );
                    if let Slot::Busy(run) = &mut self.slots[slot] {
                        run.metrics.bytes_read += bytes;
                    }
                    let (net, node) = (self.net, self.node);
                    net.start_flow(ctx, from, node, bytes, self.cfg.shuffle_stream_cap, tag);
                    if let Some(t) = self.cfg.shuffle_fetch_timeout {
                        ctx.after(t, io_timer_tag(KIND_FETCH_TIMEOUT, tag));
                    }
                }
                if !any {
                    self.start_merge(ctx, slot);
                }
            }
        }
    }

    fn start_merge(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let gray = self.gray_factor;
        let (merge_time, gen) = {
            let Slot::Busy(run) = &mut self.slots[slot] else {
                return;
            };
            if run.merge_started {
                return;
            }
            run.merge_started = true;
            let merge_time = degrade(
                run.desc
                    .reduce_merge_time
                    .unwrap_or(SimDuration::from_millis(1)),
                gray,
            );
            run.metrics.compute += merge_time;
            let out_bytes = run.metrics.bytes_read;
            if run.writes_dfs() && out_bytes > 0 {
                run.metrics.bytes_output += out_bytes;
                run.out_queue.push_back(out_bytes);
            }
            (merge_time, run.gen)
        };
        self.ensure_output_file(ctx, slot);
        self.drain_output_queue(ctx, slot);
        ctx.after(merge_time, slot_timer_tag(KIND_MERGE, slot, gen));
    }

    fn kill_attempt(&mut self, job: JobId, task: TaskId, attempt: u32) {
        for slot in &mut self.slots {
            if let Slot::Busy(run) = slot {
                if run.desc.job == job && run.desc.task == task && run.desc.attempt == attempt {
                    *slot = Slot::Idle;
                    return;
                }
            }
        }
    }
}

impl Actor for TaskTracker {
    fn name(&self) -> String {
        format!("mr.tasktracker@{}", self.node)
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                let interval = self.cfg.heartbeat_interval.as_nanos();
                let jitter = SimDuration::from_nanos(ctx.rng().next_below(interval.max(1)));
                ctx.after(jitter, TIMER_HEARTBEAT);
            }
            Event::Timer {
                tag: TIMER_HEARTBEAT,
                ..
            } => {
                self.send_heartbeat(ctx);
                // In-place rearm: one timer slot per tracker, forever.
                ctx.rearm_after(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
            }
            Event::Timer { tag, .. } => {
                // I/O watchdogs carry an I/O tag, not a slot/gen pair:
                // route them before the slot-liveness check.
                match tag >> 56 {
                    KIND_FETCH_TIMEOUT => {
                        self.fetch_timed_out(ctx, tag & IO_TAG_MASK);
                        return;
                    }
                    KIND_READ_TIMEOUT => {
                        self.read_timed_out(ctx, tag & IO_TAG_MASK);
                        return;
                    }
                    _ => {}
                }
                let (kind, slot, gen) = unpack_timer_tag(tag);
                let live = matches!(
                    self.slots.get(slot),
                    Some(Slot::Busy(run)) if run.gen == gen
                );
                if !live {
                    return;
                }
                match kind {
                    KIND_START => self.begin_work(ctx, slot),
                    KIND_COMPUTE => self.compute_done(ctx, slot),
                    KIND_MERGE => {
                        if let Slot::Busy(run) = &mut self.slots[slot] {
                            run.merge_done = true;
                        }
                        self.maybe_finish(ctx, slot);
                    }
                    KIND_CLEANUP => self.finish_task(ctx, slot, true),
                    _ => {}
                }
            }
            Event::Msg { msg, .. } => {
                if msg.is::<AssignTask>() {
                    let assign = msg.downcast::<AssignTask>().expect("checked");
                    self.start_task(ctx, assign.descriptor);
                } else if let Some(kill) = msg.peek::<KillTask>() {
                    self.kill_attempt(kill.job, kill.task, kill.attempt);
                } else if msg.is::<CrashTaskTracker>() {
                    ctx.stats().incr("mr.tasktrackers_crashed");
                    let me = ctx.self_id();
                    ctx.kill(me);
                } else if let Some(gray) = msg.peek::<InjectGray>() {
                    let f = gray.factor;
                    // Clamp to (0, 1]: zero/negative would freeze compute
                    // forever, which is a stall, not a gray failure.
                    self.gray_factor = if f > 0.0 { f.min(1.0) } else { 1.0e-9 };
                    ctx.stats().incr(if self.gray_factor < 1.0 {
                        "mr.gray_injected"
                    } else {
                        "mr.gray_healed"
                    });
                } else if let Some(loss) = msg.peek::<SetHeartbeatLoss>() {
                    self.hb_suppressed = loss.suppress;
                } else if msg.is::<RangeData>() {
                    let data = msg.downcast::<RangeData>().expect("checked");
                    let Some(rctx) = self.reads.remove(&data.tag) else {
                        return;
                    };
                    if !self.slot_live(rctx.slot, rctx.gen) {
                        return;
                    }
                    let finished_record = {
                        let Slot::Busy(run) = &mut self.slots[rctx.slot] else {
                            return;
                        };
                        let Some((rec, segs_left, buf)) = &mut run.inflight else {
                            return;
                        };
                        debug_assert_eq!(*rec, rctx.record);
                        if let Some(seg_bytes) = data.bytes {
                            let (_, rl) = Self::record_bounds(&run.desc.work, *rec);
                            let buf = buf.get_or_insert_with(|| vec![0u8; rl as usize]);
                            let at = rctx.offset_in_record as usize;
                            buf[at..at + seg_bytes.len()].copy_from_slice(&seg_bytes);
                        }
                        *segs_left -= 1;
                        *segs_left == 0
                    };
                    if finished_record {
                        let (rec, bytes) = {
                            let Slot::Busy(run) = &mut self.slots[rctx.slot] else {
                                return;
                            };
                            let (rec, _, buf) = run.inflight.take().expect("inflight present");
                            (rec, buf)
                        };
                        self.record_arrived(ctx, rctx.slot, rec, bytes);
                    }
                } else if let Some(err) = msg.peek::<ReadError>() {
                    let tag = err.tag;
                    self.retry_read(ctx, tag);
                } else if let Some(ab) = msg.peek::<FlowAborted>() {
                    let tag = ab.tag;
                    if self.reads.contains_key(&tag) {
                        self.retry_read(ctx, tag);
                    } else if let Some(f) = self.fetches.remove(&tag) {
                        // An aborted fetch means the source node crashed,
                        // taking its map output with it: re-fetching is
                        // futile, fail fast so the maps get re-executed.
                        self.fail_task(ctx, f.slot, f.gen);
                    }
                } else if let Some(done) = msg.peek::<FlowDone>() {
                    if let Some(f) = self.fetches.remove(&done.tag) {
                        if !self.slot_live(f.slot, f.gen) {
                            return;
                        }
                        let all_in = {
                            let Slot::Busy(run) = &mut self.slots[f.slot] else {
                                return;
                            };
                            run.fetches_left -= 1;
                            run.fetches_left == 0
                        };
                        if all_in {
                            self.start_merge(ctx, f.slot);
                        }
                    }
                } else if msg.is::<CreateAck>() {
                    if let Some(slot) = self.create_waiters.pop_front() {
                        if let Slot::Busy(run) = &mut self.slots[slot] {
                            run.out_created = true;
                        }
                        self.drain_output_queue(ctx, slot);
                    }
                } else if msg.is::<BlockAllocated>() {
                    let alloc = msg.downcast::<BlockAllocated>().expect("checked");
                    let Some(&(slot, gen, len)) = self.writes.get(&alloc.tag) else {
                        return;
                    };
                    if !self.slot_live(slot, gen) {
                        self.writes.remove(&alloc.tag);
                        return;
                    }
                    let base_offset = {
                        let Slot::Busy(run) = &mut self.slots[slot] else {
                            return;
                        };
                        let off = run.next_out_offset;
                        run.next_out_offset += len;
                        off
                    };
                    // Output content is not synthetic-derived; seed 0. The
                    // verification path uses map-side digests instead.
                    let ok = self.dfs.write_block(
                        ctx,
                        self.node,
                        alloc.block,
                        len,
                        0,
                        base_offset,
                        &alloc.pipeline,
                        alloc.tag,
                    );
                    if !ok {
                        self.writes.remove(&alloc.tag);
                        self.fail_task(ctx, slot, gen);
                    }
                } else if let Some(ack) = msg.peek::<WriteAck>() {
                    if let Some((slot, gen, _len)) = self.writes.remove(&ack.tag) {
                        if !self.slot_live(slot, gen) {
                            return;
                        }
                        if let Slot::Busy(run) = &mut self.slots[slot] {
                            run.outstanding_writes -= 1;
                        }
                        self.maybe_finish(ctx, slot);
                    }
                }
            }
        }
    }
}
