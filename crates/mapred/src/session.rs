//! Multi-job session driver.
//!
//! A [`Session`] generalizes the old single-job driver actor: any number of
//! jobs can be queued — immediately or after a simulated delay — and the
//! whole batch is driven to completion with deterministic discrete-event
//! interleaving. Concurrent jobs share the cluster's slots exactly as they
//! would under Hadoop's FIFO scheduler.
//!
//! ```
//! use accelmr_mapred::{ClusterBuilder, JobBuilder, FixedCostKernel, SumReducer};
//! use accelmr_des::SimDuration;
//!
//! let mut cluster = ClusterBuilder::new().workers(2).seed(3).deploy();
//! let mut session = cluster.session();
//! let a = session.submit(
//!     JobBuilder::new("a").synthetic(100_000).kernel(FixedCostKernel::default())
//!         .rpc_aggregate(SumReducer { cycles_per_byte: 1.0 }),
//! );
//! let b = session.submit_after(
//!     SimDuration::from_secs(5),
//!     JobBuilder::new("b").synthetic(100_000).kernel(FixedCostKernel::default())
//!         .rpc_aggregate(SumReducer { cycles_per_byte: 1.0 }),
//! );
//! let results = session.run_until_complete();
//! assert_eq!(results.len(), 2);
//! assert!(a.result().succeeded && b.result().succeeded);
//! ```

use std::sync::{Arc, Mutex};

use accelmr_des::prelude::*;
use accelmr_des::FxHashMap;
use accelmr_dfs::msgs::{AddDataNode, AddPeer, PreloadDone, PreloadFile};
use accelmr_dfs::{DataNode, DfsConfig, DfsHandle};
use accelmr_net::NodeId;

use crate::builder::JobBuilder;
use crate::cluster::{MrCluster, MrHandle, PreloadSpec};
use crate::config::MrConfig;
use crate::job::{JobResult, JobSpec};
use crate::jobtracker::RegisterTaskTracker;
use crate::kernel::NodeEnvFactory;
use crate::msgs::{CrashTaskTracker, InjectGray, JobComplete, SetHeartbeatLoss};
use crate::tasktracker::TaskTracker;

/// A job plus the driver-side work it needs before submission (DFS
/// preloads). What [`Session::submit`] accepts; [`JobSpec`] and
/// [`JobBuilder`] both convert into it.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The job description handed to the JobTracker.
    pub spec: JobSpec,
    /// Files preloaded into the DFS before the job is submitted.
    pub preloads: Vec<PreloadSpec>,
}

impl From<JobSpec> for JobRequest {
    fn from(spec: JobSpec) -> Self {
        JobRequest {
            spec,
            preloads: Vec::new(),
        }
    }
}

impl From<JobBuilder> for JobRequest {
    fn from(builder: JobBuilder) -> Self {
        builder.request()
    }
}

/// Shared slot a job's result lands in when its `JobComplete` arrives.
type ResultSlot = Arc<Mutex<Option<JobResult>>>;

/// Handle to a job submitted through a [`Session`]. Cheap to clone; the
/// result becomes observable after
/// [`run_until_complete`](Session::run_until_complete).
#[derive(Clone)]
pub struct JobHandle {
    index: usize,
    name: String,
    slot: ResultSlot,
}

impl JobHandle {
    /// Position of this job within its batch's submission order — its
    /// index into the result vector of the
    /// [`run_until_complete`](Session::run_until_complete) call that
    /// drives it. Resets for each new batch on a reused session.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the job has completed.
    pub fn is_complete(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }

    /// The result, if the job has completed.
    pub fn try_result(&self) -> Option<JobResult> {
        self.slot.lock().unwrap().clone()
    }

    /// The result. Panics when the job has not completed yet (call
    /// [`Session::run_until_complete`] first).
    pub fn result(&self) -> JobResult {
        self.try_result()
            .unwrap_or_else(|| panic!("job '{}' has not completed yet", self.name))
    }
}

struct PendingJob {
    delay: SimDuration,
    request: JobRequest,
    slot: ResultSlot,
}

/// Everything a mid-session join needs to build a node: the configs and
/// environment factory the cluster was deployed with, plus the shared
/// fresh-node-id counter. Retained by `ClusterBuilder::deploy`.
#[derive(Clone)]
pub(crate) struct ElasticCtx {
    pub(crate) dfs_cfg: DfsConfig,
    pub(crate) mr_cfg: MrConfig,
    pub(crate) materialized: bool,
    pub(crate) env: Arc<dyn NodeEnvFactory>,
    /// Next fresh `NodeId` — shared across sessions over one cluster so
    /// ids are never recycled.
    pub(crate) next_node: Arc<Mutex<u32>>,
}

/// One scheduled membership change.
#[derive(Clone, Copy, Debug)]
enum ChurnChange {
    Join(NodeId),
    Leave(NodeId),
}

/// A membership operation inside a [`ChurnSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnOp {
    /// A fresh node joins (the session assigns its id).
    Join,
    /// The given worker leaves (crash semantics: TaskTracker and DataNode
    /// die, in-flight transfers abort).
    Leave(NodeId),
}

/// A declarative churn plan: membership operations at simulated offsets,
/// applied with [`Session::churn`]. Offsets are relative to the start of
/// the next [`Session::run_until_complete`] call, like
/// [`Session::submit_after`] delays.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<(SimDuration, ChurnOp)>,
}

impl ChurnSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a join at `at`.
    pub fn join_at(mut self, at: SimDuration) -> Self {
        self.events.push((at, ChurnOp::Join));
        self
    }

    /// Adds a departure of `node` at `at`.
    pub fn leave_at(mut self, at: SimDuration, node: NodeId) -> Self {
        self.events.push((at, ChurnOp::Leave(node)));
        self
    }

    /// A churn wave: `joins` fresh nodes and the listed `leaves`,
    /// interleaved (join, leave, join, …) and spread evenly across
    /// `[start, start + window]` — the "≥ N% of the cluster in motion
    /// mid-job" shape the elasticity benchmarks drive.
    pub fn wave(joins: usize, leaves: &[NodeId], start: SimDuration, window: SimDuration) -> Self {
        let mut ops = Vec::with_capacity(joins + leaves.len());
        let mut j = 0;
        let mut l = 0;
        while j < joins || l < leaves.len() {
            if j < joins {
                ops.push(ChurnOp::Join);
                j += 1;
            }
            if l < leaves.len() {
                ops.push(ChurnOp::Leave(leaves[l]));
                l += 1;
            }
        }
        let n = ops.len();
        let events = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| {
                let frac = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                (
                    start + SimDuration::from_secs_f64(window.as_secs_f64() * frac),
                    op,
                )
            })
            .collect();
        ChurnSchedule { events }
    }

    /// The scheduled operations, in insertion order.
    pub fn events(&self) -> &[(SimDuration, ChurnOp)] {
        &self.events
    }
}

/// One fault class inside a [`FaultPlan`]. Every op names its victim and
/// a window after which the fault heals — chaos here is always transient;
/// permanent crash-shaped departures are [`ChurnSchedule`]'s job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultOp {
    /// Full network partition of `node`'s NIC for `window`: bulk flows
    /// (shuffle fetches, DFS streams) through it stall at rate zero — they
    /// do *not* abort — and resume where they left off at heal. Control
    /// RPCs (heartbeats, assignments) are modeled off the fluid fabric and
    /// keep flowing: this is a pure data-plane fault, detectable only by
    /// I/O watchdogs, never by heartbeat silence.
    Partition {
        /// The partitioned node.
        node: NodeId,
        /// Time until the partition heals.
        window: SimDuration,
    },
    /// `node`'s NIC bandwidth silently drops to `factor` of nominal for
    /// `window` (a flapping link, a saturated ToR port).
    Degrade {
        /// The degraded node.
        node: NodeId,
        /// Bandwidth multiplier in `(0, 1)`.
        factor: f64,
        /// Time until full bandwidth returns.
        window: SimDuration,
    },
    /// Gray failure: `node`'s *compute* throughput silently drops to
    /// `factor` of nominal for `window`. The node heartbeats normally the
    /// whole time — only straggler speculation and blacklisting can see it.
    Gray {
        /// The gray node.
        node: NodeId,
        /// Compute-throughput multiplier in `(0, 1)`.
        factor: f64,
        /// Time until nominal speed returns.
        window: SimDuration,
    },
    /// `node` sends no heartbeats for `window` while its tasks keep
    /// running: the JobTracker falsely declares it dead, requeues its
    /// work, and must *fence* the zombie attempts' late reports when the
    /// node comes back.
    HeartbeatLoss {
        /// The silenced node.
        node: NodeId,
        /// Duration of the loss window.
        window: SimDuration,
    },
    /// Transient stall — a process-freeze approximation: for `window` the
    /// node goes heartbeat-silent *and* computes at 1/16 speed (a true
    /// freeze would pin in-flight compute timers astronomically far out;
    /// a severe slowdown exercises the same recovery paths — false death,
    /// fencing, re-execution — while keeping every timer bounded).
    Stall {
        /// The stalled node.
        node: NodeId,
        /// Duration of the stall.
        window: SimDuration,
    },
}

/// The primitive state changes a [`FaultOp`] expands into (one at fault
/// start, one at heal).
#[derive(Clone, Copy, Debug)]
enum FaultAction {
    /// Set the node's NIC bandwidth factor (`0.0` = partition, `1.0` = heal).
    NicFactor(NodeId, f64),
    /// Set the node's compute-throughput factor (`1.0` = heal).
    Gray(NodeId, f64),
    /// Set heartbeat suppression on or off.
    HbLoss(NodeId, bool),
}

/// Compute-slowdown factor for [`FaultOp::Stall`].
const STALL_GRAY_FACTOR: f64 = 1.0 / 16.0;

/// A declarative fault-injection plan: fault classes at simulated offsets,
/// applied with [`Session::faults`]. Sibling to [`ChurnSchedule`] — same
/// driver-actor pattern, same offset anchoring (relative to the start of
/// the next [`Session::run_until_complete`] call) — but every fault heals
/// after its window instead of removing the node.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(SimDuration, FaultOp)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault op at `at`.
    pub fn op_at(mut self, at: SimDuration, op: FaultOp) -> Self {
        self.events.push((at, op));
        self
    }

    /// Adds a network partition of `node` over `[at, at + window]`.
    pub fn partition_at(self, at: SimDuration, node: NodeId, window: SimDuration) -> Self {
        self.op_at(at, FaultOp::Partition { node, window })
    }

    /// Adds a gray failure (compute at `factor` of nominal) on `node`
    /// over `[at, at + window]`.
    pub fn gray_at(self, at: SimDuration, node: NodeId, factor: f64, window: SimDuration) -> Self {
        self.op_at(
            at,
            FaultOp::Gray {
                node,
                factor,
                window,
            },
        )
    }

    /// Adds a NIC-bandwidth degradation (to `factor` of nominal) on `node`
    /// over `[at, at + window]`.
    pub fn degrade_at(
        self,
        at: SimDuration,
        node: NodeId,
        factor: f64,
        window: SimDuration,
    ) -> Self {
        self.op_at(
            at,
            FaultOp::Degrade {
                node,
                factor,
                window,
            },
        )
    }

    /// Adds a heartbeat-loss window on `node` over `[at, at + window]`.
    pub fn heartbeat_loss_at(self, at: SimDuration, node: NodeId, window: SimDuration) -> Self {
        self.op_at(at, FaultOp::HeartbeatLoss { node, window })
    }

    /// Adds a transient stall of `node` over `[at, at + window]`.
    pub fn stall_at(self, at: SimDuration, node: NodeId, window: SimDuration) -> Self {
        self.op_at(at, FaultOp::Stall { node, window })
    }

    /// A seeded fault storm: `count` faults drawn with the in-tree RNG —
    /// victims uniform over `nodes`, classes round-robin over the full
    /// fault taxonomy, start offsets uniform over `[start, start + spread]`
    /// — each healing after `window`. The deterministic bulk generator the
    /// `fault_matrix` bench sweeps intensity with: same seed, same storm.
    pub fn storm(
        seed: u64,
        nodes: &[NodeId],
        count: usize,
        start: SimDuration,
        spread: SimDuration,
        window: SimDuration,
    ) -> Self {
        assert!(!nodes.is_empty(), "fault storm needs victim candidates");
        let mut rng = accelmr_des::Xoshiro256::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let node = nodes[rng.next_below(nodes.len() as u64) as usize];
            let at = start + SimDuration::from_nanos(rng.next_below(spread.as_nanos().max(1)));
            let op = match i % 5 {
                0 => FaultOp::Partition { node, window },
                1 => FaultOp::Degrade {
                    node,
                    factor: 0.1,
                    window,
                },
                2 => FaultOp::Gray {
                    node,
                    factor: 0.25,
                    window,
                },
                3 => FaultOp::HeartbeatLoss { node, window },
                _ => FaultOp::Stall { node, window },
            };
            plan.events.push((at, op));
        }
        plan
    }

    /// The scheduled ops, in insertion order.
    pub fn events(&self) -> &[(SimDuration, FaultOp)] {
        &self.events
    }

    /// Expands every op into its primitive apply/heal actions, sorted by
    /// time (stable: same-instant actions keep plan order, applies before
    /// their own heals even at window zero).
    fn actions(&self) -> Vec<(SimDuration, FaultAction)> {
        let mut out: Vec<(SimDuration, FaultAction)> = Vec::new();
        for &(at, op) in &self.events {
            match op {
                FaultOp::Partition { node, window } => {
                    out.push((at, FaultAction::NicFactor(node, 0.0)));
                    out.push((at + window, FaultAction::NicFactor(node, 1.0)));
                }
                FaultOp::Degrade {
                    node,
                    factor,
                    window,
                } => {
                    out.push((at, FaultAction::NicFactor(node, factor)));
                    out.push((at + window, FaultAction::NicFactor(node, 1.0)));
                }
                FaultOp::Gray {
                    node,
                    factor,
                    window,
                } => {
                    out.push((at, FaultAction::Gray(node, factor)));
                    out.push((at + window, FaultAction::Gray(node, 1.0)));
                }
                FaultOp::HeartbeatLoss { node, window } => {
                    out.push((at, FaultAction::HbLoss(node, true)));
                    out.push((at + window, FaultAction::HbLoss(node, false)));
                }
                FaultOp::Stall { node, window } => {
                    out.push((at, FaultAction::Gray(node, STALL_GRAY_FACTOR)));
                    out.push((at, FaultAction::HbLoss(node, true)));
                    out.push((at + window, FaultAction::Gray(node, 1.0)));
                    out.push((at + window, FaultAction::HbLoss(node, false)));
                }
            }
        }
        out.sort_by_key(|&(at, _)| at);
        out
    }
}

/// Drives N jobs through one deployed cluster. Jobs queued with
/// [`submit`](Session::submit) /
/// [`submit_after`](Session::submit_after) all run concurrently (subject to
/// the JobTracker's scheduling) once
/// [`run_until_complete`](Session::run_until_complete) is called; the
/// session can then queue and run further batches against the same,
/// still-warm cluster.
pub struct Session<'a> {
    sim: &'a mut Sim,
    mr: MrHandle,
    dfs: DfsHandle,
    pending: Vec<PendingJob>,
    /// Membership changes queued for the next run (requires `elastic`).
    churn: Vec<(SimDuration, ChurnChange)>,
    /// Fault-injection primitives queued for the next run.
    faults: Vec<(SimDuration, FaultAction)>,
    elastic: Option<ElasticCtx>,
}

impl<'a> Session<'a> {
    /// Opens a session over an already-deployed runtime. Sessions opened
    /// this way drive jobs only; dynamic membership
    /// ([`add_node_at`](Session::add_node_at) /
    /// [`remove_node_at`](Session::remove_node_at)) needs the deployment
    /// context a [`ClusterBuilder`](crate::ClusterBuilder)-deployed
    /// [`MrCluster::session`] carries.
    pub fn new(sim: &'a mut Sim, mr: MrHandle, dfs: DfsHandle) -> Self {
        Session {
            sim,
            mr,
            dfs,
            pending: Vec::new(),
            churn: Vec::new(),
            faults: Vec::new(),
            elastic: None,
        }
    }

    pub(crate) fn with_elastic(mut self, elastic: Option<ElasticCtx>) -> Self {
        self.elastic = elastic;
        self
    }

    /// The underlying simulation (e.g. to inject faults before running).
    pub fn sim_mut(&mut self) -> &mut Sim {
        self.sim
    }

    /// Queues a job for submission at the current simulated instant.
    pub fn submit(&mut self, request: impl Into<JobRequest>) -> JobHandle {
        self.submit_after(SimDuration::ZERO, request)
    }

    /// Queues a job whose submission is staggered by `delay` relative to
    /// the start of the next [`run_until_complete`](Session::run_until_complete)
    /// call (preloads run after the delay, immediately before submission).
    ///
    /// Panics on an invalid spec ([`JobSpec::validate`]): a non-positive
    /// fair-share weight, or a deadline at or before the submission
    /// instant (`now + delay`).
    pub fn submit_after(
        &mut self,
        delay: SimDuration,
        request: impl Into<JobRequest>,
    ) -> JobHandle {
        let request = request.into();
        let submit_at = self.sim.now() + delay;
        if let Err(e) = request.spec.validate(submit_at) {
            panic!("invalid JobSpec '{}': {e}", request.spec.name);
        }
        let slot: ResultSlot = Arc::new(Mutex::new(None));
        let handle = JobHandle {
            index: self.pending.len(),
            name: request.spec.name.clone(),
            slot: slot.clone(),
        };
        self.pending.push(PendingJob {
            delay,
            request,
            slot,
        });
        handle
    }

    /// Schedules a fresh worker node to join the cluster `at` after the
    /// start of the next [`run_until_complete`](Session::run_until_complete)
    /// call, returning the id it will join under. The join is end-to-end:
    /// the fabric grows links, a DataNode spawns and enters the NameNode's
    /// placement rotation (absorbing pending replication repairs), and a
    /// TaskTracker spawns, registers, and starts pulling work on its
    /// heartbeats — schedulers observe the join via
    /// [`Scheduler::on_node_join`](crate::sched::Scheduler::on_node_join).
    ///
    /// Panics when the cluster was deployed through the deprecated
    /// positional path, which retains no deployment context to build new
    /// nodes from.
    pub fn add_node_at(&mut self, at: SimDuration) -> NodeId {
        let elastic = self
            .elastic
            .as_ref()
            .expect("dynamic membership requires a ClusterBuilder-deployed cluster");
        let mut next = elastic.next_node.lock().unwrap();
        let node = NodeId(*next);
        *next += 1;
        drop(next);
        self.churn.push((at, ChurnChange::Join(node)));
        node
    }

    /// Schedules `node` to leave the cluster `at` after the start of the
    /// next [`run_until_complete`](Session::run_until_complete) call, with
    /// crash semantics: its TaskTracker and DataNode die, in-flight
    /// transfers abort, and the runtime recovers through its existing
    /// fault paths (replica-retrying reads, task re-execution, DFS
    /// re-replication once heartbeat silence is detected).
    pub fn remove_node_at(&mut self, at: SimDuration, node: NodeId) {
        assert_ne!(node, NodeId::HEAD, "cannot remove the head node");
        assert!(
            self.elastic.is_some(),
            "dynamic membership requires a ClusterBuilder-deployed cluster"
        );
        self.churn.push((at, ChurnChange::Leave(node)));
    }

    /// Applies a whole [`ChurnSchedule`], returning the ids assigned to
    /// its joins in schedule order.
    pub fn churn(&mut self, schedule: ChurnSchedule) -> Vec<NodeId> {
        let mut joined = Vec::new();
        for &(at, op) in schedule.events() {
            match op {
                ChurnOp::Join => joined.push(self.add_node_at(at)),
                ChurnOp::Leave(node) => self.remove_node_at(at, node),
            }
        }
        joined
    }

    /// Queues a whole [`FaultPlan`] for the next
    /// [`run_until_complete`](Session::run_until_complete) call. Offsets are
    /// anchored at the start of that call, exactly like churn. The chaos
    /// driver actor is spawned only when a plan was queued, so fault-free
    /// runs keep their historical actor layout and event traces.
    ///
    /// Unlike churn, fault injection needs no deployment context: faults
    /// mutate already-running actors (NIC bandwidth in the fabric, compute
    /// throughput and heartbeat emission in TaskTrackers), so plans work on
    /// any deployment, including the deprecated positional path.
    pub fn faults(&mut self, plan: FaultPlan) {
        self.faults.extend(plan.actions());
    }

    /// Runs the simulation until every queued job has completed, and
    /// returns their results in submission order. Queued membership
    /// changes ([`add_node_at`](Session::add_node_at) /
    /// [`remove_node_at`](Session::remove_node_at)) are applied while the
    /// batch runs; changes scheduled past the last job completion carry
    /// over into the next batch. With no jobs queued, an empty vector is
    /// returned — after driving the simulation just far enough to apply
    /// any queued membership changes. Panics if the simulation drains without
    /// completing every job (a runtime bug, not a job failure — failed jobs
    /// complete with `succeeded == false`).
    pub fn run_until_complete(&mut self) -> Vec<JobResult> {
        let churn = std::mem::take(&mut self.churn);
        let faults = std::mem::take(&mut self.faults);
        let last_churn_at = churn
            .iter()
            .map(|&(at, _)| at)
            .chain(faults.iter().map(|&(at, _)| at))
            .max();
        if !churn.is_empty() {
            let elastic = self
                .elastic
                .clone()
                .expect("churn queued without elastic context");
            self.sim.spawn(Box::new(ChurnDriver::new(
                elastic,
                self.mr.clone(),
                self.dfs.clone(),
                churn,
            )));
        }
        if !faults.is_empty() {
            self.sim
                .spawn(Box::new(FaultDriver::new(self.mr.clone(), faults)));
        }
        if self.pending.is_empty() {
            // A job-less batch still applies queued membership changes and
            // fault actions: drive the simulation just past the last
            // scheduled one (it would otherwise be silently deferred — and
            // re-anchored — to the next batch's start).
            if let Some(at) = last_churn_at {
                let deadline = self.sim.now() + at;
                self.sim.run_until(deadline);
            }
            return Vec::new();
        }
        let outstanding = Arc::new(Mutex::new(self.pending.len()));
        let batch: Vec<(String, ResultSlot)> = self
            .pending
            .iter()
            .map(|p| (p.request.spec.name.clone(), p.slot.clone()))
            .collect();
        for job in self.pending.drain(..) {
            self.sim.spawn(Box::new(JobDriver {
                mr: self.mr.clone(),
                dfs: self.dfs.clone(),
                delay: job.delay,
                preloads: job.request.preloads,
                preloads_left: 0,
                spec: Some(job.request.spec),
                slot: job.slot,
                outstanding: outstanding.clone(),
            }));
        }
        self.sim.run();
        batch
            .into_iter()
            .map(|(name, slot)| {
                let result = slot.lock().unwrap().clone();
                result.unwrap_or_else(|| {
                    panic!("job '{name}' did not complete — simulation drained without its JobComplete")
                })
            })
            .collect()
    }

    /// Convenience for the single-job case: queues nothing new, drives the
    /// batch, and returns the one result. Panics unless exactly one job is
    /// queued.
    pub fn run(&mut self) -> JobResult {
        assert_eq!(
            self.pending.len(),
            1,
            "Session::run expects exactly one queued job; use run_until_complete"
        );
        self.run_until_complete().pop().expect("one result")
    }
}

impl MrCluster {
    /// Opens a [`Session`] over this cluster. Clusters deployed through
    /// [`ClusterBuilder`](crate::ClusterBuilder) get dynamic-membership
    /// support ([`Session::add_node_at`] / [`Session::remove_node_at`]).
    pub fn session(&mut self) -> Session<'_> {
        let elastic = self.elastic.clone();
        Session::new(&mut self.sim, self.mr.clone(), self.dfs.clone()).with_elastic(elastic)
    }
}

const SUBMIT_TIMER_TAG: u64 = 1;

/// Applies scheduled membership changes from inside the simulation: at
/// each event's instant it either assembles and wires a whole new node
/// (fabric links, DataNode, TaskTracker, registries, NameNode/JobTracker
/// admission) or crashes a departing one. Spawned by
/// [`Session::run_until_complete`] only when churn is queued, so static
/// deployments keep their historical actor layout and event traces.
struct ChurnDriver {
    elastic: ElasticCtx,
    mr: MrHandle,
    dfs: DfsHandle,
    /// Events sorted by time (stable: same-instant events keep schedule
    /// order), drained front to back.
    events: Vec<(SimDuration, ChurnChange)>,
    next: usize,
    start: SimTime,
}

impl ChurnDriver {
    fn new(
        elastic: ElasticCtx,
        mr: MrHandle,
        dfs: DfsHandle,
        mut events: Vec<(SimDuration, ChurnChange)>,
    ) -> Self {
        events.sort_by_key(|&(at, _)| at);
        ChurnDriver {
            elastic,
            mr,
            dfs,
            events,
            next: 0,
            start: SimTime::ZERO,
        }
    }

    fn arm_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(&(at, _)) = self.events.get(self.next) {
            ctx.after_at(self.start + at, 0);
        }
    }

    fn run_due(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        while let Some(&(at, change)) = self.events.get(self.next) {
            if self.start + at > now {
                break;
            }
            self.next += 1;
            match change {
                ChurnChange::Join(node) => self.join(ctx, node),
                ChurnChange::Leave(node) => self.leave(ctx, node),
            }
        }
        self.arm_next(ctx);
    }

    /// Assembles one joining node. Ordering within the instant matters:
    /// the fabric grows first (same-instant FIFO guarantees links exist
    /// before any traffic), then the DataNode spawns fully wired, peers
    /// learn it, registries expose it, and finally the NameNode and
    /// JobTracker admit it.
    fn join(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        self.mr.net.ensure_node(ctx, node);

        // DataNode, wired before spawn (namenode + current peer set).
        let mut dn = DataNode::new(
            self.elastic.dfs_cfg.clone(),
            self.mr.net,
            node,
            self.dfs.head_node,
            self.elastic.materialized,
        );
        let peers: FxHashMap<NodeId, ActorId> = self.dfs.datanodes.snapshot().into_iter().collect();
        dn.rewire(self.dfs.namenode, peers);
        let dn_id = ctx.spawn(Box::new(dn));
        for (_, peer) in self.dfs.datanodes.snapshot() {
            ctx.send(peer, AddPeer { node, actor: dn_id });
        }
        self.dfs.datanodes.insert(node, dn_id);
        ctx.send(self.dfs.namenode, AddDataNode { node, actor: dn_id });

        // TaskTracker with an environment from the deployment's factory
        // (worker indices are node ids shifted past the head node).
        let env = self.elastic.env.build(node.index() - 1);
        let tt = TaskTracker::new(
            self.elastic.mr_cfg.clone(),
            self.mr.net,
            self.dfs.clone(),
            node,
            self.mr.head_node,
            self.mr.jobtracker,
            env,
        );
        let tt_id = ctx.spawn(Box::new(tt));
        self.mr.tasktrackers.insert(node, tt_id);
        ctx.send(
            self.mr.jobtracker,
            RegisterTaskTracker { node, actor: tt_id },
        );
        ctx.stats().incr("cluster.nodes_joined");
    }

    /// Crashes one departing node: both daemons die, the registries stop
    /// routing to it (reads fail fast onto other replicas), and its
    /// in-flight transfers abort. Heartbeat silence then drives task
    /// re-execution and DFS re-replication.
    fn leave(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        if let Some(tt) = self.mr.tasktrackers.remove(node) {
            ctx.send(tt, CrashTaskTracker);
        }
        if let Some(dn) = self.dfs.datanodes.remove(node) {
            ctx.send(dn, accelmr_dfs::Shutdown);
        }
        self.mr.net.abort_node(ctx, node);
        ctx.stats().incr("cluster.nodes_left");
    }
}

impl Actor for ChurnDriver {
    fn name(&self) -> String {
        "mr.session.churn".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                self.start = ctx.now();
                self.run_due(ctx);
            }
            Event::Timer { .. } => self.run_due(ctx),
            _ => {}
        }
    }
}

/// Applies a [`FaultPlan`]'s primitive actions from inside the simulation,
/// mirroring [`ChurnDriver`]'s timeline mechanics exactly: events sorted
/// stable by offset, anchored at the driver's `Start` instant, one timer
/// armed per pending event. NIC-factor actions go through the fabric's
/// node-bandwidth control; gray and heartbeat-loss actions are routed to
/// the victim's TaskTracker actor. Actions on nodes that have since left
/// the cluster are silently dropped — chaos composes with churn.
struct FaultDriver {
    mr: MrHandle,
    /// Actions sorted by time (stable: same-instant actions keep expansion
    /// order, so applies precede their own heals), drained front to back.
    events: Vec<(SimDuration, FaultAction)>,
    next: usize,
    start: SimTime,
}

impl FaultDriver {
    fn new(mr: MrHandle, mut events: Vec<(SimDuration, FaultAction)>) -> Self {
        events.sort_by_key(|&(at, _)| at);
        FaultDriver {
            mr,
            events,
            next: 0,
            start: SimTime::ZERO,
        }
    }

    fn arm_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(&(at, _)) = self.events.get(self.next) {
            ctx.after_at(self.start + at, 0);
        }
    }

    fn run_due(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        while let Some(&(at, action)) = self.events.get(self.next) {
            if self.start + at > now {
                break;
            }
            self.next += 1;
            self.apply(ctx, action);
        }
        self.arm_next(ctx);
    }

    fn apply(&mut self, ctx: &mut Ctx<'_>, action: FaultAction) {
        ctx.stats().incr("chaos.actions_applied");
        match action {
            FaultAction::NicFactor(node, factor) => {
                self.mr.net.set_node_bandwidth(ctx, node, factor);
            }
            FaultAction::Gray(node, factor) => {
                if let Some(tt) = self.mr.tasktrackers.get(node) {
                    ctx.send(tt, InjectGray { factor });
                }
            }
            FaultAction::HbLoss(node, suppress) => {
                if let Some(tt) = self.mr.tasktrackers.get(node) {
                    ctx.send(tt, SetHeartbeatLoss { suppress });
                }
            }
        }
    }
}

impl Actor for FaultDriver {
    fn name(&self) -> String {
        "mr.session.chaos".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                self.start = ctx.now();
                self.run_due(ctx);
            }
            Event::Timer { .. } => self.run_due(ctx),
            _ => {}
        }
    }
}

/// Per-job driver actor: waits out the submission delay, preloads input
/// files, submits the job, captures the result, and stops the world once
/// the whole batch is done.
struct JobDriver {
    mr: MrHandle,
    dfs: DfsHandle,
    delay: SimDuration,
    preloads: Vec<PreloadSpec>,
    preloads_left: usize,
    spec: Option<JobSpec>,
    slot: ResultSlot,
    outstanding: Arc<Mutex<usize>>,
}

impl JobDriver {
    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        if self.preloads.is_empty() {
            self.submit(ctx);
        } else {
            self.preloads_left = self.preloads.len();
            let me = ctx.self_id();
            for p in self.preloads.drain(..) {
                ctx.send(
                    self.dfs.namenode,
                    PreloadFile {
                        path: p.path,
                        len: p.len,
                        block_size: p.block_size,
                        replication: p.replication,
                        seed: p.seed,
                        reply: me,
                    },
                );
            }
        }
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>) {
        let spec = self.spec.take().expect("spec present");
        let node = self.mr.head_node;
        self.mr.submit(ctx, node, spec);
    }
}

impl Actor for JobDriver {
    fn name(&self) -> String {
        "mr.session.job".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                if self.delay == SimDuration::ZERO {
                    self.begin(ctx);
                } else {
                    ctx.after(self.delay, SUBMIT_TIMER_TAG);
                }
            }
            Event::Timer {
                tag: SUBMIT_TIMER_TAG,
                ..
            } => {
                self.begin(ctx);
            }
            Event::Msg { msg, .. } => {
                if msg.is::<PreloadDone>() {
                    self.preloads_left -= 1;
                    if self.preloads_left == 0 {
                        self.submit(ctx);
                    }
                } else if msg.is::<JobComplete>() {
                    let done = msg.downcast::<JobComplete>().expect("checked");
                    *self.slot.lock().unwrap() = Some(done.result);
                    let mut left = self.outstanding.lock().unwrap();
                    *left -= 1;
                    if *left == 0 {
                        ctx.stop();
                    }
                }
            }
            _ => {}
        }
    }
}
