//! Multi-job session driver.
//!
//! A [`Session`] generalizes the old single-job driver actor: any number of
//! jobs can be queued — immediately or after a simulated delay — and the
//! whole batch is driven to completion with deterministic discrete-event
//! interleaving. Concurrent jobs share the cluster's slots exactly as they
//! would under Hadoop's FIFO scheduler.
//!
//! ```
//! use accelmr_mapred::{ClusterBuilder, JobBuilder, FixedCostKernel, SumReducer};
//! use accelmr_des::SimDuration;
//!
//! let mut cluster = ClusterBuilder::new().workers(2).seed(3).deploy();
//! let mut session = cluster.session();
//! let a = session.submit(
//!     JobBuilder::new("a").synthetic(100_000).kernel(FixedCostKernel::default())
//!         .rpc_aggregate(SumReducer { cycles_per_byte: 1.0 }),
//! );
//! let b = session.submit_after(
//!     SimDuration::from_secs(5),
//!     JobBuilder::new("b").synthetic(100_000).kernel(FixedCostKernel::default())
//!         .rpc_aggregate(SumReducer { cycles_per_byte: 1.0 }),
//! );
//! let results = session.run_until_complete();
//! assert_eq!(results.len(), 2);
//! assert!(a.result().succeeded && b.result().succeeded);
//! ```

use std::sync::{Arc, Mutex};

use accelmr_des::prelude::*;
use accelmr_dfs::msgs::{PreloadDone, PreloadFile};
use accelmr_dfs::DfsHandle;

use crate::builder::JobBuilder;
use crate::cluster::{MrCluster, MrHandle, PreloadSpec};
use crate::job::{JobResult, JobSpec};
use crate::msgs::JobComplete;

/// A job plus the driver-side work it needs before submission (DFS
/// preloads). What [`Session::submit`] accepts; [`JobSpec`] and
/// [`JobBuilder`] both convert into it.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The job description handed to the JobTracker.
    pub spec: JobSpec,
    /// Files preloaded into the DFS before the job is submitted.
    pub preloads: Vec<PreloadSpec>,
}

impl From<JobSpec> for JobRequest {
    fn from(spec: JobSpec) -> Self {
        JobRequest {
            spec,
            preloads: Vec::new(),
        }
    }
}

impl From<JobBuilder> for JobRequest {
    fn from(builder: JobBuilder) -> Self {
        builder.request()
    }
}

/// Shared slot a job's result lands in when its `JobComplete` arrives.
type ResultSlot = Arc<Mutex<Option<JobResult>>>;

/// Handle to a job submitted through a [`Session`]. Cheap to clone; the
/// result becomes observable after
/// [`run_until_complete`](Session::run_until_complete).
#[derive(Clone)]
pub struct JobHandle {
    index: usize,
    name: String,
    slot: ResultSlot,
}

impl JobHandle {
    /// Position of this job within its batch's submission order — its
    /// index into the result vector of the
    /// [`run_until_complete`](Session::run_until_complete) call that
    /// drives it. Resets for each new batch on a reused session.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the job has completed.
    pub fn is_complete(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }

    /// The result, if the job has completed.
    pub fn try_result(&self) -> Option<JobResult> {
        self.slot.lock().unwrap().clone()
    }

    /// The result. Panics when the job has not completed yet (call
    /// [`Session::run_until_complete`] first).
    pub fn result(&self) -> JobResult {
        self.try_result()
            .unwrap_or_else(|| panic!("job '{}' has not completed yet", self.name))
    }
}

struct PendingJob {
    delay: SimDuration,
    request: JobRequest,
    slot: ResultSlot,
}

/// Drives N jobs through one deployed cluster. Jobs queued with
/// [`submit`](Session::submit) /
/// [`submit_after`](Session::submit_after) all run concurrently (subject to
/// the JobTracker's scheduling) once
/// [`run_until_complete`](Session::run_until_complete) is called; the
/// session can then queue and run further batches against the same,
/// still-warm cluster.
pub struct Session<'a> {
    sim: &'a mut Sim,
    mr: MrHandle,
    dfs: DfsHandle,
    pending: Vec<PendingJob>,
}

impl<'a> Session<'a> {
    /// Opens a session over an already-deployed runtime.
    pub fn new(sim: &'a mut Sim, mr: MrHandle, dfs: DfsHandle) -> Self {
        Session {
            sim,
            mr,
            dfs,
            pending: Vec::new(),
        }
    }

    /// The underlying simulation (e.g. to inject faults before running).
    pub fn sim_mut(&mut self) -> &mut Sim {
        self.sim
    }

    /// Queues a job for submission at the current simulated instant.
    pub fn submit(&mut self, request: impl Into<JobRequest>) -> JobHandle {
        self.submit_after(SimDuration::ZERO, request)
    }

    /// Queues a job whose submission is staggered by `delay` relative to
    /// the start of the next [`run_until_complete`](Session::run_until_complete)
    /// call (preloads run after the delay, immediately before submission).
    pub fn submit_after(
        &mut self,
        delay: SimDuration,
        request: impl Into<JobRequest>,
    ) -> JobHandle {
        let request = request.into();
        let slot: ResultSlot = Arc::new(Mutex::new(None));
        let handle = JobHandle {
            index: self.pending.len(),
            name: request.spec.name.clone(),
            slot: slot.clone(),
        };
        self.pending.push(PendingJob {
            delay,
            request,
            slot,
        });
        handle
    }

    /// Runs the simulation until every queued job has completed, and
    /// returns their results in submission order. Returns an empty vector
    /// when nothing is queued. Panics if the simulation drains without
    /// completing every job (a runtime bug, not a job failure — failed jobs
    /// complete with `succeeded == false`).
    pub fn run_until_complete(&mut self) -> Vec<JobResult> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let outstanding = Arc::new(Mutex::new(self.pending.len()));
        let batch: Vec<(String, ResultSlot)> = self
            .pending
            .iter()
            .map(|p| (p.request.spec.name.clone(), p.slot.clone()))
            .collect();
        for job in self.pending.drain(..) {
            self.sim.spawn(Box::new(JobDriver {
                mr: self.mr.clone(),
                dfs: self.dfs.clone(),
                delay: job.delay,
                preloads: job.request.preloads,
                preloads_left: 0,
                spec: Some(job.request.spec),
                slot: job.slot,
                outstanding: outstanding.clone(),
            }));
        }
        self.sim.run();
        batch
            .into_iter()
            .map(|(name, slot)| {
                let result = slot.lock().unwrap().clone();
                result.unwrap_or_else(|| {
                    panic!("job '{name}' did not complete — simulation drained without its JobComplete")
                })
            })
            .collect()
    }

    /// Convenience for the single-job case: queues nothing new, drives the
    /// batch, and returns the one result. Panics unless exactly one job is
    /// queued.
    pub fn run(&mut self) -> JobResult {
        assert_eq!(
            self.pending.len(),
            1,
            "Session::run expects exactly one queued job; use run_until_complete"
        );
        self.run_until_complete().pop().expect("one result")
    }
}

impl MrCluster {
    /// Opens a [`Session`] over this cluster.
    pub fn session(&mut self) -> Session<'_> {
        Session::new(&mut self.sim, self.mr.clone(), self.dfs.clone())
    }
}

const SUBMIT_TIMER_TAG: u64 = 1;

/// Per-job driver actor: waits out the submission delay, preloads input
/// files, submits the job, captures the result, and stops the world once
/// the whole batch is done.
struct JobDriver {
    mr: MrHandle,
    dfs: DfsHandle,
    delay: SimDuration,
    preloads: Vec<PreloadSpec>,
    preloads_left: usize,
    spec: Option<JobSpec>,
    slot: ResultSlot,
    outstanding: Arc<Mutex<usize>>,
}

impl JobDriver {
    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        if self.preloads.is_empty() {
            self.submit(ctx);
        } else {
            self.preloads_left = self.preloads.len();
            let me = ctx.self_id();
            for p in self.preloads.drain(..) {
                ctx.send(
                    self.dfs.namenode,
                    PreloadFile {
                        path: p.path,
                        len: p.len,
                        block_size: p.block_size,
                        replication: p.replication,
                        seed: p.seed,
                        reply: me,
                    },
                );
            }
        }
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>) {
        let spec = self.spec.take().expect("spec present");
        let node = self.mr.head_node;
        self.mr.submit(ctx, node, spec);
    }
}

impl Actor for JobDriver {
    fn name(&self) -> String {
        "mr.session.job".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                if self.delay == SimDuration::ZERO {
                    self.begin(ctx);
                } else {
                    ctx.after(self.delay, SUBMIT_TIMER_TAG);
                }
            }
            Event::Timer {
                tag: SUBMIT_TIMER_TAG,
                ..
            } => {
                self.begin(ctx);
            }
            Event::Msg { msg, .. } => {
                if msg.is::<PreloadDone>() {
                    self.preloads_left -= 1;
                    if self.preloads_left == 0 {
                        self.submit(ctx);
                    }
                } else if msg.is::<JobComplete>() {
                    let done = msg.downcast::<JobComplete>().expect("checked");
                    *self.slot.lock().unwrap() = Some(done.result);
                    let mut left = self.outstanding.lock().unwrap();
                    *left -= 1;
                    if *left == 0 {
                        ctx.stop();
                    }
                }
            }
            _ => {}
        }
    }
}
