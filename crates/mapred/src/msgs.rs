//! JobTracker ↔ TaskTracker ↔ client protocol.

use accelmr_des::ActorId;
use accelmr_net::NodeId;

use crate::config::{JobId, TaskId};
use crate::job::{JobResult, JobSpec, TaskDescriptor, TaskMetrics};

/// Client → JobTracker: run a job.
#[derive(Debug)]
pub struct SubmitJob {
    /// The job.
    pub spec: JobSpec,
    /// Actor receiving [`JobComplete`].
    pub reply: ActorId,
    /// Node the reply travels to.
    pub reply_node: NodeId,
}

/// JobTracker → client: the job finished.
#[derive(Debug, Clone)]
pub struct JobComplete {
    /// Outcome and metrics.
    pub result: JobResult,
}

/// TaskTracker → JobTracker: periodic liveness + status + slot report.
/// Completed-task reports ride the heartbeat, as in Hadoop 0.19 — this is
/// part of the scheduling pacing the paper's runtime floor comes from.
#[derive(Debug)]
pub struct TtHeartbeat {
    /// Reporting TaskTracker's node.
    pub node: NodeId,
    /// Free map slots right now.
    pub free_slots: usize,
    /// Tasks finished since the last heartbeat.
    pub completed: Vec<TaskReport>,
}

/// One finished task attempt.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Owning job.
    pub job: JobId,
    /// Task id.
    pub task: TaskId,
    /// Attempt number.
    pub attempt: u32,
    /// Success flag (`false` = attempt failed; JobTracker may retry).
    pub ok: bool,
    /// Execution metrics.
    pub metrics: TaskMetrics,
    /// Key/value pairs the task emitted (map partials or reduce output).
    pub kv: Vec<(u64, u64)>,
    /// Order-independent digest `(acc, count)` over record output checksums.
    pub digest: (u64, u64),
    /// Node the attempt ran on.
    pub node: NodeId,
}

/// JobTracker → TaskTracker: run this task.
#[derive(Debug)]
pub struct AssignTask {
    /// The assignment.
    pub descriptor: TaskDescriptor,
}

/// JobTracker → TaskTracker: abandon an attempt (speculative loser or
/// zombie after re-execution).
#[derive(Debug, Clone, Copy)]
pub struct KillTask {
    /// Owning job.
    pub job: JobId,
    /// Task to kill.
    pub task: TaskId,
    /// Attempt to kill (other attempts unaffected).
    pub attempt: u32,
}

/// Crash injection: the TaskTracker process dies immediately (no more
/// heartbeats; running tasks vanish). Pair with
/// [`accelmr_net::AbortNode`] to kill in-flight transfers.
#[derive(Debug, Clone, Copy)]
pub struct CrashTaskTracker;

/// Gray-failure injection: the TaskTracker's *compute* throughput silently
/// degrades to `factor` of nominal (`0.25` = four times slower) until a
/// follow-up message with `factor == 1.0` heals it. Only timers armed
/// after injection are affected; already-running computations finish at
/// their original speed, like a machine that starts thermal-throttling
/// mid-task. The node never stops heartbeating — that is the point: gray
/// failures are invisible to crash detection and must be caught by
/// straggler speculation and blacklisting instead.
#[derive(Debug, Clone, Copy)]
pub struct InjectGray {
    /// Throughput multiplier in `(0, 1]`; `1.0` restores nominal speed.
    pub factor: f64,
}

/// Heartbeat-loss injection: while `suppress` is set the TaskTracker
/// keeps running tasks but sends no heartbeats, so the JobTracker's
/// liveness sweep will falsely declare it dead. Completed-task reports
/// accumulate locally and all ride the first heartbeat after the loss
/// window ends — exactly the stale-report burst the epoch fencing in the
/// JobTracker exists to reject.
#[derive(Debug, Clone, Copy)]
pub struct SetHeartbeatLoss {
    /// `true` drops every outgoing heartbeat; `false` resumes them.
    pub suppress: bool,
}
